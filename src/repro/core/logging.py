"""Shared CLI logging: run-id-tagged structured logs behind ``-v``/``-q``.

Every ``repro`` subcommand accepts ``-v/--verbose`` (repeatable) and
``-q/--quiet``; :func:`setup_cli_logging` maps the net verbosity onto the
``repro`` logger hierarchy exactly once per invocation, so verbosity
handling is one shared code path instead of per-command ad-hockery.

Log lines are *structured-ish*: a fixed prefix carrying the level and the
current run id (``-`` until a run starts), then ``event key=value ...``
bodies built by :func:`kv`. The run id is injected by a logging filter
from module state (:func:`set_run_id`) so call sites never thread it —
the pipeline sets it when a traced/journaled run opens and any later log
line from any module is tagged with it.

Levels: default ``WARNING``; ``-v`` → ``INFO``; ``-vv`` → ``DEBUG``;
``-q`` → ``ERROR``. Handlers write to stderr so command output (reports,
traces, benchmarks) on stdout stays machine-consumable.
"""

from __future__ import annotations

import logging
import sys
from typing import Any

__all__ = ["LOGGER_NAME", "get_logger", "setup_cli_logging", "set_run_id", "kv"]

LOGGER_NAME = "repro"

# Library default: a NullHandler so importing repro never spams stderr via
# logging's last-resort handler — output only appears once an application
# (the CLI via setup_cli_logging, or a test harness) configures handlers.
logging.getLogger(LOGGER_NAME).addHandler(logging.NullHandler())

_FORMAT = "%(asctime)s %(levelname)s [%(run_id)s] %(name)s: %(message)s"
_DATE_FORMAT = "%H:%M:%S"

#: Run id stamped onto every record; "-" outside a run.
_current_run_id = "-"


def set_run_id(run_id: str | None) -> None:
    """Tag subsequent log records with ``run_id`` (None resets to ``-``)."""
    global _current_run_id
    _current_run_id = run_id if run_id else "-"


class _RunIdFilter(logging.Filter):
    def filter(self, record: logging.LogRecord) -> bool:
        record.run_id = _current_run_id
        return True


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the shared ``repro`` hierarchy.

    Pass a module's ``__name__``; anything outside the package is nested
    under ``repro.`` so one :func:`setup_cli_logging` call governs it.
    """
    if name is None or name == LOGGER_NAME:
        return logging.getLogger(LOGGER_NAME)
    if not name.startswith(LOGGER_NAME + "."):
        name = f"{LOGGER_NAME}.{name}"
    return logging.getLogger(name)


def kv(event: str, **fields: Any) -> str:
    """Render ``event key=value ...`` with deterministic field order."""
    parts = [event]
    for key in sorted(fields):
        value = fields[key]
        if isinstance(value, float):
            value = f"{value:.6g}"
        parts.append(f"{key}={value}")
    return " ".join(parts)


def verbosity_to_level(verbosity: int) -> int:
    """Map net ``-v`` minus ``-q`` counts onto a logging level."""
    if verbosity <= -1:
        return logging.ERROR
    if verbosity == 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def setup_cli_logging(verbosity: int = 0, stream: Any | None = None) -> logging.Logger:
    """Configure the shared CLI logger; idempotent across invocations.

    Parameters
    ----------
    verbosity:
        Net count: ``args.verbose - args.quiet``.
    stream:
        Destination (defaults to ``sys.stderr``). Passing an explicit
        stream replaces the previous handler — tests capture logs by
        handing in a ``StringIO``.
    """
    logger = logging.getLogger(LOGGER_NAME)
    logger.setLevel(verbosity_to_level(verbosity))
    # One handler, replaced on reconfiguration: repeated main() calls (the
    # test-suite pattern) must not multiply output.
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT, datefmt=_DATE_FORMAT))
    handler.addFilter(_RunIdFilter())
    logger.addHandler(handler)
    logger.propagate = False
    return logger
