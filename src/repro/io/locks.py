"""Cross-process advisory file locks for shared artifact caches.

Multiple ``repro`` processes pointed at one cache directory (a shared
scratch filesystem, a CI matrix, two terminals) must not compute or write
the same entry concurrently. The in-process per-key single-flight lock in
:class:`~repro.core.pipeline.ArtifactCache` cannot see other processes, so
this module supplies the cross-process half: one advisory lock file per
cache entry.

Two backends:

* ``"fcntl"`` (default wherever :mod:`fcntl` exists) — ``flock`` on the
  lock file. The kernel releases the lock when the holding process dies,
  *however* it dies (including ``kill -9``), so a crashed holder can never
  wedge later runs. The holder's pid is written into the file purely as
  diagnostic metadata.
* ``"pidfile"`` (fallback, and directly testable) — ``O_CREAT|O_EXCL``
  creation of a file containing the holder's pid. Because nothing releases
  it on a crash, waiters perform *stale-lock detection by pid liveness*:
  a lock file naming a dead pid is reclaimed (unlinked and re-raced), and
  an unreadable/torn lock file is reclaimed after ``stale_grace`` seconds
  without change.

Lock metadata is a fixed-width **pid + hostname** record
(:func:`owner_record`). The hostname matters on shared filesystems: pid
liveness can only be probed on the *local* host, and pid namespaces are
per-host, so a lock recorded by another machine must never be reclaimed by
signal-0 probing — the same pid number there may belong to a live holder
here-invisible process. Waiters therefore treat remote-host locks as held
until their owner releases them (or an operator removes the file).

Both backends are advisory: they only exclude other ``FileLock`` users,
which is exactly the contract the cache needs.
"""

from __future__ import annotations

import os
import socket
import time
from pathlib import Path

try:  # pragma: no cover - import guard exercised implicitly everywhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "FileLock",
    "LockTimeout",
    "OWNER_RECORD_WIDTH",
    "local_host",
    "owner_record",
    "parse_owner_record",
    "pid_alive",
]

_BACKENDS = ("auto", "fcntl", "pidfile")

#: Fixed byte width of an :func:`owner_record`, pread/pwrite-friendly so a
#: record overwrite never leaves a longer stale tail behind it.
OWNER_RECORD_WIDTH = 64

_HOST_WIDTH = OWNER_RECORD_WIDTH - 21  # pid(19) + space + trailing newline

_local_host: str | None = None


def local_host() -> str:
    """This machine's hostname, truncated to the record's host field width.

    Cached after the first call: the hostname is effectively immutable for
    the life of a run, and lock acquisition sits on hot paths.
    """
    global _local_host
    if _local_host is None:
        host = socket.gethostname() or "localhost"
        _local_host = host[:_HOST_WIDTH]
    return _local_host


def owner_record(pid: int | None = None, host: str | None = None) -> bytes:
    """Fixed-width ``pid host`` metadata record (:data:`OWNER_RECORD_WIDTH`).

    Shared by lock files and the dist backend's heartbeat files so every
    on-disk ownership claim carries enough identity to be judged safely
    from any host. Defaults to the calling process on this host.
    """
    if pid is None:
        pid = os.getpid()
    if host is None:
        host = local_host()
    body = f"{pid:>19} {host[:_HOST_WIDTH]}"
    return body.ljust(OWNER_RECORD_WIDTH - 1).encode() + b"\n"


def parse_owner_record(data: bytes) -> tuple[int, str] | None:
    """Parse an :func:`owner_record` → ``(pid, host)``, or None when torn.

    Accepts the pre-hostname legacy format (a bare pid line) for locks
    written by older builds; those report an empty host, which callers
    treat as "this host" — exactly the assumption the legacy code baked in.
    """
    fields = data.split(b"\n")[0].split(None, 1)
    if not fields or not fields[0].isdigit():
        return None
    host = fields[1].decode("utf-8", "replace").strip() if len(fields) > 1 else ""
    return int(fields[0]), host


def _same_host(host: str) -> bool:
    """Whether a recorded host names this machine (legacy "" counts)."""
    return host == "" or host == local_host()

#: Lazily-bound ``repro.core.trace.instant`` (set on first use). A
#: module-top import would be circular — ``repro.io`` can be imported
#: before ``repro.core`` finishes initializing, and ``repro.core.pipeline``
#: imports :class:`FileLock` from here.
_trace_instant = None


def _emit_acquire(path: Path, wait: float, reclaimed: bool) -> None:
    global _trace_instant
    if _trace_instant is None:
        from repro.core.trace import instant as _trace_instant
    _trace_instant(
        "lock.acquire", "lock",
        path=path.name, wait=round(wait, 6), reclaimed=reclaimed,
    )


class LockTimeout(TimeoutError):
    """Raised when a lock could not be acquired within ``timeout`` seconds."""


def pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (signal-0 probe).

    ``EPERM`` counts as alive (the process exists, we just may not signal
    it); any other failure counts as dead. Non-positive pids are never
    alive — they would address process groups, not a holder.
    """
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


class FileLock:
    """One advisory cross-process lock, addressed by file path.

    Usable as a context manager::

        with FileLock(cache_dir / f"{key}.lock"):
            ...compute and publish the entry...

    Parameters
    ----------
    path:
        Lock file location. Parent directory must exist (the cache creates
        it before locking).
    backend:
        ``"auto"`` (fcntl where available, else pidfile), ``"fcntl"``, or
        ``"pidfile"``.
    timeout:
        Default acquisition budget in seconds for :meth:`acquire` /
        ``with``; ``None`` waits indefinitely.
    poll_interval:
        Sleep between acquisition attempts while contended.
    stale_grace:
        Pidfile backend only: how long an *unreadable* lock file (torn
        write from a killed creator) may persist before being reclaimed.
        Files naming a dead pid are reclaimed immediately.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        backend: str = "auto",
        timeout: float | None = None,
        poll_interval: float = 0.01,
        stale_grace: float = 2.0,
    ) -> None:
        if backend not in _BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {_BACKENDS}")
        if backend == "auto":
            backend = "fcntl" if fcntl is not None else "pidfile"
        if backend == "fcntl" and fcntl is None:
            raise ValueError("fcntl backend requested but fcntl is unavailable")
        if poll_interval <= 0:
            raise ValueError(f"poll_interval must be positive, got {poll_interval}")
        self.path = Path(path)
        self.backend = backend
        self.timeout = timeout
        self.poll_interval = poll_interval
        self.stale_grace = stale_grace
        self.reclaimed_stale = 0  # stale locks this instance reclaimed
        self._fd: int | None = None

    @property
    def locked(self) -> bool:
        """Whether *this instance* currently holds the lock."""
        return self._fd is not None

    # -- acquisition ----------------------------------------------------------

    def _try_fcntl(self) -> bool:
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            return False
        # Held. Record our pid+host as diagnostic metadata (never unlinked
        # on release: an unlinked-but-flocked inode would be invisible to
        # the next waiter, silently breaking mutual exclusion). The record
        # is fixed-width so a plain pwrite fully overwrites the previous
        # holder — no ftruncate, which is painfully slow on some
        # filesystems — and re-acquisitions by the same process skip the
        # write entirely (the metadata is already correct).
        try:
            mine = owner_record()
            previous = os.pread(fd, OWNER_RECORD_WIDTH, 0)
            owner = parse_owner_record(previous)
            # Stale accounting is local-host only: a remote pid cannot be
            # probed, so a record from another host never counts as stale.
            if owner is not None and _same_host(owner[1]) and not pid_alive(owner[0]):
                self.reclaimed_stale += 1
            if previous != mine:
                os.pwrite(fd, mine, 0)
        except OSError:
            pass  # metadata only; the flock itself is what excludes
        self._fd = fd
        return True

    def _read_holder(self) -> tuple[int, str] | None:
        """(pid, host) recorded in the lock file, or None when torn."""
        try:
            data = self.path.read_bytes()
        except OSError:
            return None
        return parse_owner_record(data)

    def _try_pidfile(self, first_unreadable: list[float]) -> bool:
        try:
            fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            holder = self._read_holder()
            if holder is None:
                # Torn/empty lock file: its creator may still be mid-write,
                # so only reclaim once it has stayed unreadable past the
                # grace period.
                now = time.monotonic()
                if not first_unreadable:
                    first_unreadable.append(now)
                elif now - first_unreadable[0] >= self.stale_grace:
                    self._reclaim(expected=None)
                return False
            first_unreadable.clear()
            pid, host = holder
            # Pid-liveness reclaim is only sound for locks recorded on this
            # host: pid numbers are per-host, so "dead here" says nothing
            # about a holder on another machine — a pid collision across
            # hosts must never free a live remote holder's lock.
            if _same_host(host) and pid != os.getpid() and not pid_alive(pid):
                self._reclaim(expected=holder)
            return False
        os.write(fd, owner_record())
        os.close(fd)
        self._fd = -1  # pidfile backend holds by existence, not by fd
        return True

    def _reclaim(self, expected: tuple[int, str] | None) -> None:
        """Unlink a stale lock file so the next attempt can race for it.

        Guarded re-read: only unlink while the content still names the dead
        owner we observed (or is still unreadable, for ``expected=None``).
        A new holder appearing between the re-read and the unlink is a
        race this protocol cannot close without ``flock``; the window is
        microseconds and the consequence is one duplicated (deterministic,
        atomically republished) compute, never a corrupt artifact.
        """
        if self._read_holder() != expected:
            return
        try:
            self.path.unlink()
        except OSError:
            return
        self.reclaimed_stale += 1

    def acquire(self, timeout: float | None = None) -> "FileLock":
        """Block until held (or raise :class:`LockTimeout`); returns self."""
        if self.locked:
            raise RuntimeError(f"lock {self.path} is already held by this instance")
        budget = timeout if timeout is not None else self.timeout
        started = time.monotonic()
        reclaimed_before = self.reclaimed_stale
        deadline = None if budget is None else started + budget
        first_unreadable: list[float] = []
        while True:
            acquired = (
                self._try_fcntl()
                if self.backend == "fcntl"
                else self._try_pidfile(first_unreadable)
            )
            if acquired:
                _emit_acquire(
                    self.path,
                    time.monotonic() - started,
                    self.reclaimed_stale > reclaimed_before,
                )
                return self
            if deadline is not None and time.monotonic() >= deadline:
                holder = self._read_holder()
                described = (
                    f"pid {holder[0]} on {holder[1] or local_host()}"
                    if holder
                    else "unreadable"
                )
                raise LockTimeout(
                    f"could not acquire {self.path} within {budget:.3f}s "
                    f"(holder: {described})"
                )
            time.sleep(self.poll_interval)

    def release(self) -> None:
        """Release the lock; a no-op when not held."""
        if self._fd is None:
            return
        fd, self._fd = self._fd, None
        if self.backend == "fcntl":
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)
        else:
            try:
                self.path.unlink()
            except OSError:
                pass

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "held" if self.locked else "free"
        return f"FileLock({str(self.path)!r}, backend={self.backend!r}, {state})"
