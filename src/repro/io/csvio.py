"""CSV response serialization (the spreadsheet-facing format).

Layout: ``respondent_id,cohort,<question keys in instrument order>``.
Missing answers are empty cells; multi-selects are semicolon-joined (no
instrument option contains a semicolon — enforced on write).
"""

from __future__ import annotations

import csv
import gzip
import io
from pathlib import Path
from typing import TextIO


def _open_text(path: str | Path, mode: str):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8", newline="")
    return open(path, mode, encoding="utf-8", newline="")

from repro.io.errors import ResponseIOError
from repro.survey.questions import QuestionKind
from repro.survey.responses import Response, ResponseSet
from repro.survey.schema import Questionnaire

__all__ = ["write_responses_csv", "read_responses_csv"]

_SEP = ";"


def write_responses_csv(
    response_set: ResponseSet, destination: str | Path | TextIO
) -> None:
    """Write responses as a wide CSV with one column per question."""
    if isinstance(destination, (str, Path)):
        with _open_text(destination, "w") as fh:
            write_responses_csv(response_set, fh)
        return
    questionnaire = response_set.questionnaire
    writer = csv.writer(destination)
    writer.writerow(["respondent_id", "cohort", *questionnaire.keys])
    for r in response_set:
        row = [r.respondent_id, r.cohort]
        for key in questionnaire.keys:
            value = r.get(key, None)
            if value is None:
                row.append("")
            elif isinstance(value, (list, tuple, set, frozenset)):
                items = sorted(str(v) for v in value)
                bad = [v for v in items if _SEP in v]
                if bad:
                    raise ResponseIOError(
                        f"multi-select value contains separator {_SEP!r}: {bad[0]!r}"
                    )
                row.append(_SEP.join(items))
            else:
                row.append(str(value))
        writer.writerow(row)


def _coerce_cell(questionnaire: Questionnaire, key: str, cell: str, rownum: int):
    kind = questionnaire[key].kind
    if kind == QuestionKind.MULTI_CHOICE:
        return cell.split(_SEP) if cell else []
    if kind == QuestionKind.LIKERT:
        try:
            return int(cell)
        except ValueError:
            raise ResponseIOError(f"row {rownum}: {key!r} must be an integer, got {cell!r}") from None
    if kind == QuestionKind.NUMERIC:
        try:
            as_float = float(cell)
        except ValueError:
            raise ResponseIOError(f"row {rownum}: {key!r} must be numeric, got {cell!r}") from None
        if questionnaire[key].integer_only and as_float == int(as_float):
            return int(as_float)
        return as_float
    return cell


def read_responses_csv(
    questionnaire: Questionnaire, source: str | Path | TextIO
) -> ResponseSet:
    """Read a CSV export back into a :class:`ResponseSet`.

    Empty cells become missing answers. An empty multi-select cell is
    *missing*, not "selected nothing": the CSV format cannot distinguish
    the two, and the study treats both as non-response.
    """
    if isinstance(source, Path):
        with _open_text(source, "r") as fh:
            return read_responses_csv(questionnaire, fh)
    if isinstance(source, str):
        if "\n" in source:
            return read_responses_csv(questionnaire, io.StringIO(source))
        with _open_text(source, "r") as fh:
            return read_responses_csv(questionnaire, fh)

    reader = csv.reader(source)
    try:
        header = next(reader)
    except StopIteration:
        raise ResponseIOError("empty CSV input") from None
    expected = ["respondent_id", "cohort", *questionnaire.keys]
    if header != expected:
        raise ResponseIOError(
            f"CSV header mismatch: got {header[:4]}..., expected {expected[:4]}..."
        )
    responses: list[Response] = []
    for rownum, row in enumerate(reader, start=2):
        if not row:
            continue
        if len(row) != len(expected):
            raise ResponseIOError(
                f"row {rownum}: expected {len(expected)} cells, got {len(row)}"
            )
        answers = {}
        for key, cell in zip(questionnaire.keys, row[2:]):
            if cell == "":
                continue
            answers[key] = _coerce_cell(questionnaire, key, cell, rownum)
        responses.append(
            Response(respondent_id=row[0], cohort=row[1], answers=answers)
        )
    return ResponseSet(questionnaire, responses)
