"""Serialization for survey responses.

Two interchange formats:

* JSONL (:func:`write_responses_jsonl` / :func:`read_responses_jsonl`) —
  the archival format: one JSON object per respondent, types preserved.
* CSV (:func:`write_responses_csv` / :func:`read_responses_csv`) — the
  spreadsheet-facing format: one column per question, multi-selects
  semicolon-joined, with type coercion on read driven by the instrument.

Both readers validate against the questionnaire and raise
:class:`ResponseIOError` with row context on malformed input. The JSONL
reader also offers a tolerant mode (``on_bad_rows="skip"``) that drops
malformed rows into a :class:`SkippedRow` tally instead of aborting.

Beyond serialization, :mod:`repro.io.locks` provides the cross-process
advisory :class:`FileLock` that makes a shared artifact cache safe for
concurrent ``repro`` processes.
"""

from repro.io.jsonl import read_responses_jsonl, write_responses_jsonl
from repro.io.csvio import read_responses_csv, write_responses_csv
from repro.io.errors import ResponseIOError, SkippedRow
from repro.io.locks import FileLock, LockTimeout, pid_alive

__all__ = [
    "ResponseIOError",
    "SkippedRow",
    "FileLock",
    "LockTimeout",
    "pid_alive",
    "write_responses_jsonl",
    "read_responses_jsonl",
    "write_responses_csv",
    "read_responses_csv",
]
