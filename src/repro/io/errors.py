"""Shared I/O error type."""

__all__ = ["ResponseIOError"]


class ResponseIOError(ValueError):
    """Raised on malformed response input, with row/line context."""
