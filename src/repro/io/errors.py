"""Shared I/O error and skipped-row types."""

from dataclasses import dataclass

__all__ = ["ResponseIOError", "SkippedRow"]


class ResponseIOError(ValueError):
    """Raised on malformed response input, with row/line context."""


@dataclass(frozen=True)
class SkippedRow:
    """One malformed input row tolerated by a reader in ``skip`` mode.

    Both tolerant readers (:func:`repro.io.read_responses_jsonl`,
    :func:`repro.cluster.parse_sacct`) collect these into the caller's
    ``skipped`` list and log a tally, so dirty operational data degrades
    into an auditable skip count instead of an aborted multi-month ingest.
    ``lineno`` is 1-based; ``-1`` marks an unreadable stream tail (e.g. a
    truncated gzip member) where no further line numbers exist.
    """

    lineno: int
    reason: str
