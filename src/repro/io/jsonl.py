"""JSONL response serialization (the archival format)."""

from __future__ import annotations

import gzip
import io
import json
import logging
from pathlib import Path
from typing import TextIO


def _open_text(path: str | Path, mode: str):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")

from repro.io.errors import ResponseIOError, SkippedRow

logger = logging.getLogger(__name__)
from repro.survey.questions import QuestionKind
from repro.survey.responses import Response, ResponseSet
from repro.survey.schema import Questionnaire

__all__ = ["write_responses_jsonl", "read_responses_jsonl"]

#: Lazily-bound ``repro.core.trace.instant`` (set on first use); a
#: module-top import would be circular — ``repro.io`` initializes before
#: ``repro.core`` (see the same pattern in ``repro.io.locks``).
_trace_instant = None


def _emit_skips(reader: str, count: int) -> None:
    """Surface a skipped-row tally on the trace bus.

    Bad rows used to be visible only in logs and the optional ``skipped``
    out-param; monitoring (``repro serve --status``, the Prometheus
    snapshot's ``repro_skipped_rows_total``) watches this instant instead.
    """
    global _trace_instant
    if _trace_instant is None:
        from repro.core.trace import instant as _trace_instant
    _trace_instant("ingest.skipped_rows", "ingest", reader=reader, count=count)


def write_responses_jsonl(
    response_set: ResponseSet, destination: str | Path | TextIO
) -> None:
    """Write one JSON object per respondent.

    Multi-select answers are serialized as sorted lists so output is stable
    regardless of selection order.
    """
    if isinstance(destination, (str, Path)):
        with _open_text(destination, "w") as fh:
            write_responses_jsonl(response_set, fh)
        return
    for r in response_set:
        answers = {}
        for key, value in r.answers.items():
            if isinstance(value, (list, tuple, set, frozenset)):
                answers[key] = sorted(value)
            else:
                answers[key] = value
        obj = {
            "respondent_id": r.respondent_id,
            "cohort": r.cohort,
            "answers": answers,
        }
        destination.write(json.dumps(obj, sort_keys=True) + "\n")


def _coerce(questionnaire: Questionnaire, key: str, value, lineno: int):
    """Coerce a JSON value to the type the question expects."""
    if key not in questionnaire:
        raise ResponseIOError(f"line {lineno}: unknown question key {key!r}")
    kind = questionnaire[key].kind
    if kind == QuestionKind.MULTI_CHOICE:
        if not isinstance(value, list):
            raise ResponseIOError(
                f"line {lineno}: {key!r} must be a list, got {type(value).__name__}"
            )
        return list(value)
    if kind == QuestionKind.LIKERT:
        if not isinstance(value, int) or isinstance(value, bool):
            raise ResponseIOError(f"line {lineno}: {key!r} must be an integer")
        return value
    if kind == QuestionKind.NUMERIC:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ResponseIOError(f"line {lineno}: {key!r} must be numeric")
        return value
    if not isinstance(value, str):
        raise ResponseIOError(f"line {lineno}: {key!r} must be a string")
    return value


def _parse_response_line(
    questionnaire: Questionnaire, line: str, lineno: int
) -> Response:
    """Parse one JSONL row, raising :class:`ResponseIOError` with context."""
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ResponseIOError(f"line {lineno}: invalid JSON ({exc})") from exc
    if not isinstance(obj, dict):
        raise ResponseIOError(f"line {lineno}: expected an object")
    for required in ("respondent_id", "cohort", "answers"):
        if required not in obj:
            raise ResponseIOError(f"line {lineno}: missing {required!r}")
    if not isinstance(obj["answers"], dict):
        raise ResponseIOError(f"line {lineno}: 'answers' must be an object")
    answers = {
        key: _coerce(questionnaire, key, value, lineno)
        for key, value in obj["answers"].items()
    }
    return Response(
        respondent_id=str(obj["respondent_id"]),
        cohort=str(obj["cohort"]),
        answers=answers,
    )


def read_responses_jsonl(
    questionnaire: Questionnaire,
    source: str | Path | TextIO,
    *,
    on_bad_rows: str = "raise",
    skipped: list[SkippedRow] | None = None,
) -> ResponseSet:
    """Read a JSONL export back into a :class:`ResponseSet`.

    A literal string containing newlines is treated as data, anything else
    as a path.

    ``on_bad_rows="skip"`` tolerates dirty operational exports: malformed
    rows (bad JSON, missing keys, wrong answer types) and an unreadable
    stream tail (truncated gzip) are skipped rather than fatal. Each skip
    is appended to ``skipped`` (when given) as a
    :class:`~repro.io.errors.SkippedRow` with its line number, and the
    tally is logged. Strict (``"raise"``) remains the default.
    """
    if on_bad_rows not in ("raise", "skip"):
        raise ValueError(f"unknown on_bad_rows {on_bad_rows!r}")
    if isinstance(source, Path):
        with _open_text(source, "r") as fh:
            return read_responses_jsonl(
                questionnaire, fh, on_bad_rows=on_bad_rows, skipped=skipped
            )
    if isinstance(source, str):
        if "\n" in source or source.lstrip("\ufeff").lstrip().startswith("{"):
            return read_responses_jsonl(
                questionnaire, io.StringIO(source),
                on_bad_rows=on_bad_rows, skipped=skipped,
            )
        with _open_text(source, "r") as fh:
            return read_responses_jsonl(
                questionnaire, fh, on_bad_rows=on_bad_rows, skipped=skipped
            )

    skips: list[SkippedRow] = []
    responses: list[Response] = []
    lines = enumerate(source, start=1)
    lineno = 0
    while True:
        try:
            lineno, line = next(lines)
        except StopIteration:
            break
        except (EOFError, OSError) as exc:
            # Truncated/corrupt gzip member: no further lines exist.
            if on_bad_rows == "skip":
                skips.append(SkippedRow(-1, f"unreadable stream tail: {exc!r}"))
                break
            raise ResponseIOError(f"unreadable response stream: {exc}") from exc
        if lineno == 1:
            # Tolerate a UTF-8 BOM from Windows-origin exports; it is
            # encoding noise, not a malformed (skippable) row.
            line = line.lstrip("\ufeff")
        line = line.strip()  # also eats the \r of CRLF line endings
        if not line:
            continue
        try:
            responses.append(_parse_response_line(questionnaire, line, lineno))
        except ResponseIOError as exc:
            if on_bad_rows == "raise":
                raise
            skips.append(SkippedRow(lineno, str(exc)))
    if skips:
        logger.warning(
            "read_responses_jsonl: skipped %d malformed row(s) at line(s) %s",
            len(skips),
            ", ".join(str(s.lineno) for s in skips[:10])
            + (", ..." if len(skips) > 10 else ""),
        )
        _emit_skips("read_responses_jsonl", len(skips))
        if skipped is not None:
            skipped.extend(skips)
    return ResponseSet(questionnaire, responses)
