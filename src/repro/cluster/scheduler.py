"""FCFS / fairshare + EASY-backfill scheduler simulator.

Turns a submission stream into accounting records with realistic queue-wait
structure: wide jobs wait for drain windows, small jobs backfill around
them, and the contended GPU partition develops long waits as its arrival
rate grows. Partitions schedule independently (as Slurm partitions with
disjoint node sets do).

The simulator is event-driven per partition: events are job submissions and
job completions; at each event the scheduler starts the queue head if it
fits, otherwise reserves the head's start (the "shadow time") and backfills
later jobs that cannot delay that reservation — the EASY discipline.

Options mirror the ablations the study runs:

* ``backfill`` — EASY backfill on/off;
* ``node_granular`` — per-node placement (multi-node jobs need whole free
  nodes) vs pooled partition-wide counters;
* ``priority`` — ``"fifo"`` or ``"fairshare"`` (queue ordered by decayed
  per-user usage, lightest users first).

With node-granular allocation the EASY shadow time is computed on pooled
counts (the standard optimistic approximation); reservations therefore may
start slightly later than estimated, never earlier.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass
from operator import attrgetter, itemgetter
from typing import Sequence

import numpy as np

from repro.cluster.allocation import NodeGranularAllocator, PooledAllocator
from repro.cluster.partitions import ClusterConfig, DEFAULT_CLUSTER, Partition
from repro.cluster.records import Categorical, JobState, JobTable
from repro.cluster.workload import SubmittedJob

__all__ = ["SchedulerResult", "simulate_schedule"]

_PRIORITIES = ("fifo", "fairshare")

_END_TIME = itemgetter(0)  # bisect key for running-list entries


@dataclass(frozen=True, slots=True)
class SchedulerResult:
    """Outcome of a scheduling simulation.

    Attributes
    ----------
    table:
        Accounting records for every submitted job.
    backfilled:
        Number of jobs started out of queue order by backfill.
    """

    table: JobTable
    backfilled: int


# Queued jobs are flat tuples: everything the event loop touches, resolved
# once at validation time so the per-event code never chases SubmittedJob
# attributes (or pays a dataclass __init__) again. Layout:
#   (job_id, user, field, submit, cores, gpus, req_walltime, duration, state)
# where user/field are int codes factorized during the validation pass,
# duration is the actual occupancy decided by terminal state, and state is a
# pre-resolved int code into _STATE_CATEGORIES.
_Q_ID, _Q_USER, _Q_SUBMIT, _Q_CORES, _Q_GPUS, _Q_WALL = 0, 1, 3, 4, 5, 6


class _FairshareLedger:
    """Per-user usage with exponential decay (shared across partitions).

    Users are identified by the int codes assigned in the validation pass;
    the code <-> label mapping is a bijection, so decayed-usage ordering is
    unchanged from the string-keyed form.
    """

    def __init__(self, halflife: float) -> None:
        if halflife <= 0:
            raise ValueError("fairshare halflife must be positive")
        self.halflife = halflife
        self._usage: dict[int, float] = {}
        self._stamp: dict[int, float] = {}

    def usage(self, user: int, now: float) -> float:
        raw = self._usage.get(user, 0.0)
        if raw == 0.0:
            return 0.0
        age = now - self._stamp.get(user, now)
        return raw * 0.5 ** (max(age, 0.0) / self.halflife)

    def charge(self, user: int, core_seconds: float, now: float) -> None:
        current = self.usage(user, now)
        self._usage[user] = current + core_seconds
        self._stamp[user] = now


class _PartitionSim:
    """Event-driven simulation of one partition."""

    def __init__(
        self,
        partition: Partition,
        backfill: bool,
        depth: int,
        node_granular: bool,
        ledger: _FairshareLedger | None,
    ) -> None:
        self.name = partition.name
        if node_granular:
            self.allocator = NodeGranularAllocator(
                partition.nodes, partition.cores_per_node, partition.gpus_per_node
            )
        else:
            self.allocator = PooledAllocator(
                partition.total_cores, partition.total_gpus
            )
        self.backfill = backfill
        self.depth = depth
        self.ledger = ledger
        # Bound methods resolved once; these are called per event/job.
        self._alloc_fits = self.allocator.fits
        self._alloc_allocate = self.allocator.allocate
        self.pending: list[tuple] = []
        # Running jobs as (end_time, seq, cores, gpus, token), kept sorted by
        # (end_time, seq) via insort so the EASY shadow scan never re-sorts.
        self.running: list[tuple[float, int, int, int, object]] = []
        self._seq = 0
        # Accounting columns, one row per started job (columnar from the
        # start: building JobRecord objects per job dominated the hot path).
        self.rows: list[tuple] = []
        self.backfilled = 0
        # Fairshare queue order is dirty after membership or usage changes.
        self._dirty = True

    # -- resource bookkeeping ------------------------------------------------

    def release_until(self, t: float) -> None:
        """Free resources of jobs finishing at or before ``t`` (batched)."""
        running = self.running
        if not running or running[0][0] > t:
            return
        if running[-1][0] <= t:
            cut = len(running)
        elif running[1][0] > t:
            # One completion per event is the overwhelmingly common case;
            # skip both the bisect and the batch-release machinery for it.
            # (running[-1] > t above implies len(running) >= 2 here.)
            self.allocator.release(running[0][4])
            del running[0]
            return
        else:
            cut = bisect_right(running, t, key=_END_TIME)
        if cut == 1:
            self.allocator.release(running[0][4])
        else:
            self.allocator.release_batch([item[4] for item in running[:cut]])
        del running[:cut]

    def next_completion(self) -> float | None:
        return self.running[0][0] if self.running else None

    # -- scheduling ---------------------------------------------------------

    def _order_pending(self, now: float) -> None:
        # FIFO: submission order is already queue order. Fairshare: the
        # decayed-usage ranking is time-invariant between usage updates —
        # usage(u, now) = [raw_u * 2^(stamp_u/h)] * 0.5^(now/h) shares the
        # 0.5^(now/h) factor across users — so the sort only needs to rerun
        # after a charge or a queue append (removals keep the order sorted).
        if self.ledger is None or not self._dirty:
            return
        usage = self.ledger.usage
        self.pending.sort(
            key=lambda qj: (usage(qj[_Q_USER], now), qj[_Q_SUBMIT], qj[_Q_ID])
        )
        self._dirty = False

    def _shadow(self, head: tuple) -> tuple[float, int, int]:
        """Earliest (pooled-count) time the head could start, plus the spare
        resources remaining free at that moment after reserving the head."""
        cores = self.allocator.free_cores
        gpus = self.allocator.free_gpus
        head_cores = head[_Q_CORES]
        head_gpus = head[_Q_GPUS]
        shadow_time = 0.0
        for end, _, c, g, _ in self.running:  # already sorted by end time
            if cores >= head_cores and gpus >= head_gpus:
                break
            cores += c
            gpus += g
            shadow_time = end
        return shadow_time, cores - head_cores, gpus - head_gpus

    def _start(self, qj: tuple, now: float) -> None:
        """Start ``qj`` now (backfill path; the head path inlines this)."""
        job_id, user, field, submit, cores, gpus, req_wall, duration, state = qj
        token = self._alloc_allocate(cores, gpus)
        end = now + duration
        insort(self.running, (end, self._seq, cores, gpus, token))
        self._seq += 1
        if self.ledger is not None:
            self.ledger.charge(user, cores * duration, now)
            self._dirty = True
        self.rows.append(
            (job_id, user, field, submit, now, end, cores, gpus, state, req_wall)
        )

    def try_schedule(self, now: float) -> None:
        # Order once per event; usage charged during this event reorders the
        # queue at the next event (how real fairshare schedulers behave).
        ledger = self.ledger
        if ledger is not None:
            self._order_pending(now)
        # Start queue-head jobs in order while they fit. This loop runs for
        # nearly every started job, so _start is inlined into it: one less
        # Python call per start is measurable at workload scale.
        pending = self.pending
        fits = self._alloc_fits
        allocate = self._alloc_allocate
        running = self.running
        rows_append = self.rows.append
        seq = self._seq
        while pending:
            qj = pending[0]
            cores = qj[_Q_CORES]
            gpus = qj[_Q_GPUS]
            if not fits(cores, gpus):
                break
            del pending[0]
            token = allocate(cores, gpus)
            end = now + qj[7]  # duration
            insort(running, (end, seq, cores, gpus, token))
            seq += 1
            if ledger is not None:
                ledger.charge(qj[_Q_USER], cores * qj[7], now)
                self._dirty = True
            rows_append(
                (qj[0], qj[1], qj[2], qj[3], now, end, cores, gpus, qj[8], qj[6])
            )
        self._seq = seq
        if not pending or not self.backfill:
            return
        shadow_time, spare_cores, spare_gpus = self._shadow(pending[0])
        # EASY backfill: a later job may start now iff it fits now and either
        # finishes (by its *requested* walltime) before the head's reserved
        # start, or consumes only resources the head leaves spare.
        scanned = 0
        i = 1
        while i < len(pending) and scanned < self.depth:
            qj = pending[i]
            scanned += 1
            cores = qj[_Q_CORES]
            gpus = qj[_Q_GPUS]
            if fits(cores, gpus):
                within_spare = cores <= spare_cores and gpus <= spare_gpus
                if within_spare or now + qj[_Q_WALL] <= shadow_time:
                    del pending[i]
                    self._start(qj, now)
                    self.backfilled += 1
                    if within_spare:
                        spare_cores -= cores
                        spare_gpus -= gpus
                    continue  # same index now holds the next job
            i += 1


# Terminal states as small int codes into a sorted category table: the
# per-job loop and the result rows never touch state strings, and the final
# assembly hands the codes straight to a Categorical block.
_STATE_CATEGORIES: tuple[str, ...] = tuple(sorted(s.value for s in JobState))
_CANCELLED = _STATE_CATEGORIES.index(JobState.CANCELLED.value)
_COMPLETED = _STATE_CATEGORIES.index(JobState.COMPLETED.value)
_FAILED = _STATE_CATEGORIES.index(JobState.FAILED.value)
_TIMEOUT = _STATE_CATEGORIES.index(JobState.TIMEOUT.value)

_INF = float("inf")

# Single C-level multi-attrgetter: cheaper than nine LOAD_ATTRs per job in
# the validation/terminal-state pass.
_EXTRACT = attrgetter(
    "partition",
    "cores",
    "gpus",
    "runtime",
    "requested_walltime",
    "job_id",
    "user",
    "field",
    "submit",
)


def simulate_schedule(
    jobs: Sequence[SubmittedJob],
    cluster: ClusterConfig | None = None,
    rng: np.random.Generator | None = None,
    backfill: bool = True,
    backfill_depth: int = 64,
    failure_rate: float = 0.06,
    cancel_rate: float = 0.03,
    timeout_rate: float = 0.02,
    node_granular: bool = False,
    priority: str = "fifo",
    fairshare_halflife: float = 7 * 86400.0,
) -> SchedulerResult:
    """Simulate scheduling of ``jobs`` on ``cluster``.

    Parameters
    ----------
    jobs:
        Submission stream (any order; sorted internally by submit time).
    cluster:
        Capacity model; defaults to :data:`~repro.cluster.partitions.DEFAULT_CLUSTER`.
    rng:
        Seeded generator for terminal-state assignment; defaults to
        ``default_rng(0)``.
    backfill:
        Enable EASY backfill (the ablation bench flips this off).
    backfill_depth:
        Maximum queued jobs scanned per backfill attempt.
    failure_rate, cancel_rate, timeout_rate:
        Terminal-state probabilities.
    node_granular:
        Per-node placement instead of pooled counters (see module docs).
    priority:
        ``"fifo"`` or ``"fairshare"``.
    fairshare_halflife:
        Decay half-life (seconds) of per-user usage for fairshare ordering.

    Raises
    ------
    ValueError
        If a job names an unknown partition or can never fit on it.
    """
    cluster = cluster or DEFAULT_CLUSTER
    rng = rng if rng is not None else np.random.default_rng(0)
    if priority not in _PRIORITIES:
        raise ValueError(f"priority must be one of {_PRIORITIES}, got {priority!r}")
    jobs = list(jobs)
    if jobs:
        # lexsort on (submit, job_id) columns beats sorted()+attrgetter at
        # this scale; the key pairs are unique so the order is identical.
        submit_key = np.fromiter((j.submit for j in jobs), dtype=float, count=len(jobs))
        id_key = np.fromiter((j.job_id for j in jobs), dtype=np.int64, count=len(jobs))
        ordered = [jobs[i] for i in np.lexsort((id_key, submit_key))]
    else:
        ordered = []

    ledger = _FairshareLedger(fairshare_halflife) if priority == "fairshare" else None
    sims = {
        p.name: _PartitionSim(p, backfill, backfill_depth, node_granular, ledger)
        for p in cluster
    }
    # (partition capacity, queue-append) triples resolved once; Partition.fits
    # and per-partition dict/method lookups would otherwise run per job.
    per_partition = {p.name: [] for p in cluster}
    capacity = {
        p.name: (p.total_cores, p.total_gpus, per_partition[p.name].append)
        for p in cluster
    }

    # Validate, decide terminal states, and group submissions per partition
    # in one pass (partitions are independent). Terminal-state logic is
    # inlined and the SubmittedJob attributes are pulled through one C-level
    # attrgetter: one decision per job, so even call overhead shows up here.
    # The cancelled branch models queue cancellations as very short runs so
    # every record keeps submit <= start <= end.
    rng_random = rng.random
    rng_uniform = rng.uniform
    # Factorize user/field inline: codes are assigned in first-seen order
    # and remapped to sorted category tables at assembly time. The event
    # loop, fairshare ledger, and result rows only ever touch small ints.
    user_index: dict[str, int] = {}
    field_index: dict[str, int] = {}
    user_setdefault = user_index.setdefault
    field_setdefault = field_index.setdefault
    user_len = user_index.__len__
    field_len = field_index.__len__
    for partition, cores, gpus, runtime, req_wall, job_id, user, field, submit in map(
        _EXTRACT, ordered
    ):
        entry = capacity.get(partition)
        if entry is None:
            raise ValueError(f"job {job_id} targets unknown partition {partition!r}")
        max_cores, max_gpus, append = entry
        if not (1 <= cores <= max_cores and 0 <= gpus <= max_gpus):
            raise ValueError(
                f"job {job_id} requests ({cores} cores, {gpus} gpus) "
                f"which can never fit partition {partition!r}"
            )
        u = rng_random()
        if u < failure_rate:
            state = _FAILED
            duration = max(60.0, runtime * rng_uniform(0.05, 0.8))
        elif (u := u - failure_rate) < cancel_rate:
            state = _CANCELLED
            duration = max(10.0, runtime * rng_uniform(0.0, 0.1))
        elif u - cancel_rate < timeout_rate:
            state = _TIMEOUT
            duration = req_wall
        else:
            state = _COMPLETED
            duration = runtime
        append(
            (
                job_id,
                user_setdefault(user, user_len()),
                field_setdefault(field, field_len()),
                submit,
                cores,
                gpus,
                req_wall,
                duration,
                state,
            )
        )

    track_dirty = ledger is not None
    for name, queue in per_partition.items():
        sim = sims[name]
        pending = sim.pending
        running = sim.running
        release_until = sim.release_until
        release = sim.allocator.release
        try_schedule = sim.try_schedule
        append_pending = pending.append
        submits = [qj[_Q_SUBMIT] for qj in queue]
        submits.append(_INF)  # sentinel: removes idx-bound checks below
        idx = 0
        n = len(queue)
        # Event loop: events are submissions and completions; ties go to the
        # submission so completions at the same instant free resources first
        # (release_until) and the new arrival schedules against them.
        while True:
            if not pending:
                # Fast-forward: with nothing queued, completions cannot
                # trigger scheduling decisions, so every completion up to
                # the next arrival is released as one batch — and once the
                # stream is exhausted the remaining drain is pure token
                # bookkeeping that affects no accounting row, so stop.
                if idx >= n:
                    break
                now = submits[idx]
                release_until(now)
                append_pending(queue[idx])
                idx += 1
                while submits[idx] <= now:
                    append_pending(queue[idx])
                    idx += 1
                if track_dirty:
                    sim._dirty = True
            elif running:
                next_done = running[0][0]
                now = submits[idx]
                if now <= next_done:
                    if next_done <= now:  # completions tie with this submit
                        release_until(now)
                    append_pending(queue[idx])
                    idx += 1
                    while submits[idx] <= now:
                        append_pending(queue[idx])
                        idx += 1
                    if track_dirty:
                        sim._dirty = True
                else:
                    now = next_done
                    # Inline single-completion release (the common case);
                    # simultaneous completions fall back to release_until.
                    if len(running) == 1 or running[1][0] > now:
                        release(running[0][4])
                        del running[0]
                    else:
                        release_until(now)
            elif idx < n:
                now = submits[idx]
                append_pending(queue[idx])
                idx += 1
                while submits[idx] <= now:
                    append_pending(queue[idx])
                    idx += 1
                if track_dirty:
                    sim._dirty = True
            else:
                break
            if pending:
                try_schedule(now)

    # Columnar assembly: rows already carry int codes, so the result columns
    # are built as numpy blocks directly — no object arrays, no per-row
    # JobRecord materialization, and the string columns land in JobTable as
    # ready-made Categorical blocks.
    rows: list[tuple] = []
    backfilled = 0
    part_labels = sorted(sims)
    part_code_of = {name: code for code, name in enumerate(part_labels)}
    part_code_chunks: list[np.ndarray] = []
    for name, sim in sims.items():
        rows.extend(sim.rows)
        part_code_chunks.append(
            np.full(len(sim.rows), part_code_of[name], dtype=np.int32)
        )
        backfilled += sim.backfilled
    if len(rows) != len(ordered):
        raise RuntimeError(
            f"scheduler lost jobs: {len(ordered)} submitted, {len(rows)} recorded"
        )
    if not rows:
        return SchedulerResult(table=JobTable.empty(), backfilled=backfilled)
    (job_id, user, field, submit, start, end, cores, gpus, state, req_wall) = zip(*rows)
    id_col = np.array(job_id, dtype=np.int64)
    order = np.argsort(id_col)

    def _remap_sorted(index: dict[str, int]) -> tuple[np.ndarray, tuple[str, ...]]:
        # First-seen codes -> codes into the sorted category table.
        labels = list(index)
        rank_order = sorted(range(len(labels)), key=labels.__getitem__)
        lut = np.empty(len(labels), dtype=np.int32)
        for rank, first_seen in enumerate(rank_order):
            lut[first_seen] = rank
        return lut, tuple(labels[i] for i in rank_order)

    user_lut, user_cats = _remap_sorted(user_index)
    field_lut, field_cats = _remap_sorted(field_index)
    user_codes = user_lut[np.array(user, dtype=np.int32)][order]
    field_codes = field_lut[np.array(field, dtype=np.int32)][order]
    part_codes = np.concatenate(part_code_chunks)[order]
    state_codes = np.array(state, dtype=np.int32)[order]
    table = JobTable(
        job_id=id_col[order],
        # Every user/field in the index started a job, so those blocks are
        # canonical by construction; partition/state tables may contain
        # absent labels and get compacted by Categorical.canonical().
        user=Categorical(user_codes, user_cats, _trusted_canonical=True),
        field=Categorical(field_codes, field_cats, _trusted_canonical=True),
        partition=Categorical(part_codes, tuple(part_labels)),
        submit=np.array(submit, dtype=float)[order],
        start=np.array(start, dtype=float)[order],
        end=np.array(end, dtype=float)[order],
        cores=np.array(cores, dtype=np.int64)[order],
        gpus=np.array(gpus, dtype=np.int64)[order],
        state=Categorical(state_codes, _STATE_CATEGORIES),
        req_walltime=np.array(req_wall, dtype=float)[order],
    )
    return SchedulerResult(table=table, backfilled=backfilled)
