"""FCFS / fairshare + EASY-backfill scheduler simulator.

Turns a submission stream into accounting records with realistic queue-wait
structure: wide jobs wait for drain windows, small jobs backfill around
them, and the contended GPU partition develops long waits as its arrival
rate grows. Partitions schedule independently (as Slurm partitions with
disjoint node sets do).

The simulator is event-driven per partition: events are job submissions and
job completions; at each event the scheduler starts the queue head if it
fits, otherwise reserves the head's start (the "shadow time") and backfills
later jobs that cannot delay that reservation — the EASY discipline.

Options mirror the ablations the study runs:

* ``backfill`` — EASY backfill on/off;
* ``node_granular`` — per-node placement (multi-node jobs need whole free
  nodes) vs pooled partition-wide counters;
* ``priority`` — ``"fifo"`` or ``"fairshare"`` (queue ordered by decayed
  per-user usage, lightest users first).

With node-granular allocation the EASY shadow time is computed on pooled
counts (the standard optimistic approximation); reservations therefore may
start slightly later than estimated, never earlier.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cluster.allocation import NodeGranularAllocator, PooledAllocator
from repro.cluster.partitions import ClusterConfig, DEFAULT_CLUSTER, Partition
from repro.cluster.records import JobRecord, JobState, JobTable
from repro.cluster.workload import SubmittedJob

__all__ = ["SchedulerResult", "simulate_schedule"]

_PRIORITIES = ("fifo", "fairshare")


@dataclass(frozen=True, slots=True)
class SchedulerResult:
    """Outcome of a scheduling simulation.

    Attributes
    ----------
    table:
        Accounting records for every submitted job.
    backfilled:
        Number of jobs started out of queue order by backfill.
    """

    table: JobTable
    backfilled: int


@dataclass(slots=True)
class _QueuedJob:
    job: SubmittedJob
    duration: float  # actual occupancy decided by terminal state
    state: JobState


class _FairshareLedger:
    """Per-user usage with exponential decay (shared across partitions)."""

    def __init__(self, halflife: float) -> None:
        if halflife <= 0:
            raise ValueError("fairshare halflife must be positive")
        self.halflife = halflife
        self._usage: dict[str, float] = {}
        self._stamp: dict[str, float] = {}

    def usage(self, user: str, now: float) -> float:
        raw = self._usage.get(user, 0.0)
        if raw == 0.0:
            return 0.0
        age = now - self._stamp.get(user, now)
        return raw * 0.5 ** (max(age, 0.0) / self.halflife)

    def charge(self, user: str, core_seconds: float, now: float) -> None:
        current = self.usage(user, now)
        self._usage[user] = current + core_seconds
        self._stamp[user] = now


class _PartitionSim:
    """Event-driven simulation of one partition."""

    def __init__(
        self,
        partition: Partition,
        backfill: bool,
        depth: int,
        node_granular: bool,
        ledger: _FairshareLedger | None,
    ) -> None:
        self.name = partition.name
        if node_granular:
            self.allocator = NodeGranularAllocator(
                partition.nodes, partition.cores_per_node, partition.gpus_per_node
            )
        else:
            self.allocator = PooledAllocator(
                partition.total_cores, partition.total_gpus
            )
        self.backfill = backfill
        self.depth = depth
        self.ledger = ledger
        self.pending: list[_QueuedJob] = []
        # Heap of (end_time, seq, cores, gpus, token) for running jobs.
        self.running: list[tuple[float, int, int, int, object]] = []
        self._seq = 0
        self.records: list[JobRecord] = []
        self.backfilled = 0

    # -- resource bookkeeping ------------------------------------------------

    def _fits(self, qj: _QueuedJob) -> bool:
        return self.allocator.fits(qj.job.cores, qj.job.gpus)

    def _start(self, qj: _QueuedJob, now: float) -> None:
        job = qj.job
        token = self.allocator.allocate(job.cores, job.gpus)
        end = now + qj.duration
        heapq.heappush(self.running, (end, self._seq, job.cores, job.gpus, token))
        self._seq += 1
        if self.ledger is not None:
            self.ledger.charge(job.user, job.cores * qj.duration, now)
        self.records.append(
            JobRecord(
                job_id=job.job_id,
                user=job.user,
                field=job.field,
                partition=job.partition,
                submit=job.submit,
                start=now,
                end=end,
                cores=job.cores,
                gpus=job.gpus,
                state=qj.state,
                req_walltime=job.requested_walltime,
            )
        )

    def release_until(self, t: float) -> None:
        """Free resources of jobs finishing at or before ``t``."""
        while self.running and self.running[0][0] <= t:
            _, _, _, _, token = heapq.heappop(self.running)
            self.allocator.release(token)

    def next_completion(self) -> float | None:
        return self.running[0][0] if self.running else None

    # -- scheduling ---------------------------------------------------------

    def _order_pending(self, now: float) -> None:
        if self.ledger is None:
            return  # FIFO: submission order is already queue order
        self.pending.sort(
            key=lambda qj: (
                self.ledger.usage(qj.job.user, now),
                qj.job.submit,
                qj.job.job_id,
            )
        )

    def _shadow(self, head: _QueuedJob) -> tuple[float, int, int]:
        """Earliest (pooled-count) time the head could start, plus the spare
        resources remaining free at that moment after reserving the head."""
        cores = self.allocator.free_cores
        gpus = self.allocator.free_gpus
        shadow_time = 0.0
        for end, _, c, g, _ in sorted(self.running):
            if cores >= head.job.cores and gpus >= head.job.gpus:
                break
            cores += c
            gpus += g
            shadow_time = end
        spare_cores = cores - head.job.cores
        spare_gpus = gpus - head.job.gpus
        return shadow_time, spare_cores, spare_gpus

    def try_schedule(self, now: float) -> None:
        # Order once per event; usage charged during this event reorders the
        # queue at the next event (how real fairshare schedulers behave).
        self._order_pending(now)
        # Start queue-head jobs in order while they fit.
        while self.pending and self._fits(self.pending[0]):
            self._start(self.pending.pop(0), now)
        if not self.pending or not self.backfill:
            return
        head = self.pending[0]
        shadow_time, spare_cores, spare_gpus = self._shadow(head)
        # EASY backfill: a later job may start now iff it fits now and either
        # finishes (by its *requested* walltime) before the head's reserved
        # start, or consumes only resources the head leaves spare.
        scanned = 0
        i = 1
        while i < len(self.pending) and scanned < self.depth:
            qj = self.pending[i]
            scanned += 1
            if self._fits(qj):
                finishes_in_time = now + qj.job.requested_walltime <= shadow_time
                within_spare = (
                    qj.job.cores <= spare_cores and qj.job.gpus <= spare_gpus
                )
                if finishes_in_time or within_spare:
                    del self.pending[i]
                    self._start(qj, now)
                    self.backfilled += 1
                    if within_spare:
                        spare_cores -= qj.job.cores
                        spare_gpus -= qj.job.gpus
                    continue  # same index now holds the next job
            i += 1


def _decide_state(
    job: SubmittedJob,
    rng: np.random.Generator,
    failure_rate: float,
    cancel_rate: float,
    timeout_rate: float,
) -> tuple[JobState, float]:
    """Terminal state and actual resource-occupancy duration for a job."""
    u = rng.random()
    if u < failure_rate:
        return JobState.FAILED, max(60.0, job.runtime * rng.uniform(0.05, 0.8))
    u -= failure_rate
    if u < cancel_rate:
        # Cancelled shortly after starting (queue cancellations are modeled
        # as very short runs so every record keeps submit<=start<=end).
        return JobState.CANCELLED, max(10.0, job.runtime * rng.uniform(0.0, 0.1))
    u -= cancel_rate
    if u < timeout_rate:
        return JobState.TIMEOUT, job.requested_walltime
    return JobState.COMPLETED, job.runtime


def simulate_schedule(
    jobs: Sequence[SubmittedJob],
    cluster: ClusterConfig | None = None,
    rng: np.random.Generator | None = None,
    backfill: bool = True,
    backfill_depth: int = 64,
    failure_rate: float = 0.06,
    cancel_rate: float = 0.03,
    timeout_rate: float = 0.02,
    node_granular: bool = False,
    priority: str = "fifo",
    fairshare_halflife: float = 7 * 86400.0,
) -> SchedulerResult:
    """Simulate scheduling of ``jobs`` on ``cluster``.

    Parameters
    ----------
    jobs:
        Submission stream (any order; sorted internally by submit time).
    cluster:
        Capacity model; defaults to :data:`~repro.cluster.partitions.DEFAULT_CLUSTER`.
    rng:
        Seeded generator for terminal-state assignment; defaults to
        ``default_rng(0)``.
    backfill:
        Enable EASY backfill (the ablation bench flips this off).
    backfill_depth:
        Maximum queued jobs scanned per backfill attempt.
    failure_rate, cancel_rate, timeout_rate:
        Terminal-state probabilities.
    node_granular:
        Per-node placement instead of pooled counters (see module docs).
    priority:
        ``"fifo"`` or ``"fairshare"``.
    fairshare_halflife:
        Decay half-life (seconds) of per-user usage for fairshare ordering.

    Raises
    ------
    ValueError
        If a job names an unknown partition or can never fit on it.
    """
    cluster = cluster or DEFAULT_CLUSTER
    rng = rng if rng is not None else np.random.default_rng(0)
    if priority not in _PRIORITIES:
        raise ValueError(f"priority must be one of {_PRIORITIES}, got {priority!r}")
    ordered = sorted(jobs, key=lambda j: (j.submit, j.job_id))
    for job in ordered:
        if job.partition not in cluster:
            raise ValueError(f"job {job.job_id} targets unknown partition {job.partition!r}")
        part = cluster[job.partition]
        if not part.fits(job.cores, job.gpus):
            raise ValueError(
                f"job {job.job_id} requests ({job.cores} cores, {job.gpus} gpus) "
                f"which can never fit partition {part.name!r}"
            )

    ledger = _FairshareLedger(fairshare_halflife) if priority == "fairshare" else None
    sims = {
        p.name: _PartitionSim(p, backfill, backfill_depth, node_granular, ledger)
        for p in cluster
    }

    # Group submissions per partition (partitions are independent).
    per_partition: dict[str, list[_QueuedJob]] = {name: [] for name in sims}
    for job in ordered:
        state, duration = _decide_state(job, rng, failure_rate, cancel_rate, timeout_rate)
        per_partition[job.partition].append(_QueuedJob(job, duration, state))

    for name, queue in per_partition.items():
        sim = sims[name]
        idx = 0
        n = len(queue)
        now = 0.0
        while idx < n or sim.pending or sim.running:
            next_submit = queue[idx].job.submit if idx < n else None
            next_done = sim.next_completion()
            if next_submit is None and next_done is None:
                break
            if next_done is None or (next_submit is not None and next_submit <= next_done):
                now = next_submit  # type: ignore[assignment]
                sim.release_until(now)
                while idx < n and queue[idx].job.submit <= now:
                    sim.pending.append(queue[idx])
                    idx += 1
            else:
                now = next_done
                sim.release_until(now)
            sim.try_schedule(now)

    records: list[JobRecord] = []
    backfilled = 0
    for sim in sims.values():
        records.extend(sim.records)
        backfilled += sim.backfilled
    records.sort(key=lambda r: r.job_id)
    if len(records) != len(ordered):
        raise RuntimeError(
            f"scheduler lost jobs: {len(ordered)} submitted, {len(records)} recorded"
        )
    return SchedulerResult(table=JobTable.from_records(records), backfilled=backfilled)
