"""What-if replays: the same workload on alternative clusters.

X9 projects when demand outgrows the machine; this module answers the
follow-up — "what would waits look like if we doubled the GPU partition?" —
by replaying the recorded submission stream against modified capacity
models and comparing wait/utilization outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.cluster.partitions import ClusterConfig, Partition
from repro.cluster.scheduler import simulate_schedule
from repro.cluster.workload import SubmittedJob

__all__ = ["ScenarioOutcome", "scaled_partition", "compare_what_if"]


def scaled_partition(cluster: ClusterConfig, name: str, node_factor: float) -> ClusterConfig:
    """New cluster with one partition's node count scaled by ``node_factor``.

    Node counts round to at least one node; all other partitions are shared.
    """
    if name not in cluster:
        raise KeyError(f"no partition {name!r} in cluster {cluster.name!r}")
    if node_factor <= 0:
        raise ValueError("node_factor must be positive")
    partitions = []
    for partition in cluster:
        if partition.name == name:
            partitions.append(
                Partition(
                    name=partition.name,
                    nodes=max(1, int(round(partition.nodes * node_factor))),
                    cores_per_node=partition.cores_per_node,
                    gpus_per_node=partition.gpus_per_node,
                    max_walltime=partition.max_walltime,
                )
            )
        else:
            partitions.append(partition)
    return ClusterConfig(f"{cluster.name}[{name}x{node_factor:g}]", tuple(partitions))


@dataclass(frozen=True)
class ScenarioOutcome:
    """One replay's headline outcomes.

    Attributes
    ----------
    scenario:
        Scenario label.
    mean_wait_h, p95_wait_h:
        Over all jobs.
    gpu_mean_wait_h:
        Over GPU-partition jobs (nan when the scenario has none).
    """

    scenario: str
    mean_wait_h: float
    p95_wait_h: float
    gpu_mean_wait_h: float


def _outcome(label: str, table) -> ScenarioOutcome:
    waits_h = table.wait / 3600.0
    gpu = table.by_partition("gpu") if "gpu" in table.partitions() else None
    return ScenarioOutcome(
        scenario=label,
        mean_wait_h=float(waits_h.mean()),
        p95_wait_h=float(np.quantile(waits_h, 0.95)),
        gpu_mean_wait_h=float(gpu.wait.mean() / 3600.0) if gpu is not None and len(gpu) else float("nan"),
    )


def compare_what_if(
    jobs: Sequence[SubmittedJob],
    scenarios: Mapping[str, ClusterConfig],
    seed: int = 0,
    **schedule_kwargs,
) -> dict[str, ScenarioOutcome]:
    """Replay one submission stream against several capacity scenarios.

    Each scenario is scheduled with an identically-seeded terminal-state
    stream so outcome differences are purely capacity effects. Jobs that can
    never fit a scenario's partitions raise, as in ``simulate_schedule`` —
    shrink scenarios with care.
    """
    if not scenarios:
        raise ValueError("no scenarios given")
    outcomes: dict[str, ScenarioOutcome] = {}
    for label, cluster in scenarios.items():
        result = simulate_schedule(
            jobs, cluster, rng=np.random.default_rng(seed), **schedule_kwargs
        )
        outcomes[label] = _outcome(label, result.table)
    return outcomes
