"""Cluster health analysis: failures and wasted capacity.

Center reports track not just delivered core-hours but *wasted* ones:
cycles burned by jobs that failed, timed out, or were cancelled. This
module computes the waste breakdown and per-group failure rates, plus a
rolling-window failure-burst detector (a node going bad shows up as a
cluster of failures in time).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.records import JobState, JobTable
from repro.stats.intervals import BinomialInterval, wilson_interval

__all__ = ["WasteSummary", "waste_summary", "failure_rates_by", "failure_bursts"]

_BAD_STATES = (JobState.FAILED.value, JobState.TIMEOUT.value, JobState.CANCELLED.value)


@dataclass(frozen=True)
class WasteSummary:
    """Core-hour waste breakdown.

    Attributes
    ----------
    total_core_hours:
        All core-hours consumed in the table.
    wasted_core_hours:
        Core-hours consumed by non-COMPLETED jobs, by state.
    waste_fraction:
        Total wasted / total.
    """

    total_core_hours: float
    wasted_core_hours: dict[str, float]
    waste_fraction: float


def waste_summary(table: JobTable) -> WasteSummary:
    """Compute the waste breakdown for a job table."""
    if len(table) == 0:
        raise ValueError("empty job table")
    hours = table.cpu_hours
    total = float(hours.sum())
    wasted: dict[str, float] = {}
    for state in _BAD_STATES:
        mask = table.state_mask(state)
        if mask.any():
            wasted[state] = float(hours[mask].sum())
    waste_total = sum(wasted.values())
    return WasteSummary(
        total_core_hours=total,
        wasted_core_hours=wasted,
        waste_fraction=waste_total / total if total > 0 else 0.0,
    )


def failure_rates_by(
    table: JobTable, column: str = "partition", min_jobs: int = 20
) -> dict[str, BinomialInterval]:
    """Failure rate (FAILED + TIMEOUT) per group with Wilson intervals.

    Parameters
    ----------
    column:
        Grouping column: "partition", "field", or "user".
    min_jobs:
        Groups with fewer jobs are omitted.
    """
    if column not in ("partition", "field", "user"):
        raise ValueError(f"cannot group failures by {column!r}")
    if len(table) == 0:
        raise ValueError("empty job table")
    # Two bincounts over the dictionary codes replace one O(n) mask pass
    # per group; categories are stored sorted, so iteration order matches
    # the sorted(set(...)) of the per-row version.
    block = table.cat(column)
    bad = table.state_mask(JobState.FAILED.value) | table.state_mask(
        JobState.TIMEOUT.value
    )
    totals = np.bincount(block.codes, minlength=len(block.categories))
    bad_counts = np.bincount(block.codes[bad], minlength=len(block.categories))
    out: dict[str, BinomialInterval] = {}
    for code, group in enumerate(block.categories):
        n = int(totals[code])
        if n < min_jobs:
            continue
        out[group] = wilson_interval(int(bad_counts[code]), n)
    return out


def failure_bursts(
    table: JobTable,
    window_seconds: float = 6 * 3600.0,
    threshold: float = 3.0,
    min_failures: int = 5,
) -> list[tuple[float, float, int]]:
    """Detect failure bursts: windows where failures far exceed their base rate.

    Slides a window over job end times and flags maximal runs of windows
    whose failure count exceeds ``threshold`` times the expected count
    (overall failure rate x jobs ending in the window), with at least
    ``min_failures`` failures.

    Returns ``[(start_time, end_time, n_failures), ...]`` sorted by start.
    """
    if window_seconds <= 0 or threshold <= 0:
        raise ValueError("window_seconds and threshold must be positive")
    if len(table) == 0:
        return []
    failed_mask = table.state_mask(JobState.FAILED.value)
    n_failed = int(failed_mask.sum())
    if n_failed == 0:
        return []
    base_rate = n_failed / len(table)

    order = np.argsort(table.end)
    ends = table.end[order]
    failed = failed_mask[order]

    # Evaluate windows anchored at each failure for sensitivity.
    bursts: list[tuple[float, float, int]] = []
    fail_times = ends[failed]
    total_jobs = ends.size
    i = 0
    while i < fail_times.size:
        start = fail_times[i]
        stop = start + window_seconds
        in_window = (ends >= start) & (ends < stop)
        jobs_in_window = int(in_window.sum())
        failures_in_window = int((in_window & failed).sum())
        expected = max(base_rate * jobs_in_window, 1e-9)
        if failures_in_window >= min_failures and failures_in_window > threshold * expected:
            bursts.append((float(start), float(stop), failures_in_window))
            # Skip past this window to report maximal, non-overlapping bursts.
            while i < fail_times.size and fail_times[i] < stop:
                i += 1
        else:
            i += 1
    return bursts
