"""Synthetic workload generation.

Produces the *submission stream* the scheduler simulator consumes. The model
captures the structure the study's telemetry analyses depend on:

* per-field job mixes (astrophysicists submit wide MPI jobs, biologists
  submit job-array swarms, ML-heavy fields submit GPU jobs);
* a nonhomogeneous Poisson arrival process with an exponentially growing
  GPU-job rate (the F5 "GPU-hours growth" signal);
* power-of-two-ish width distributions and lognormal runtimes;
* requested walltimes that over-estimate runtimes (what backfill sees);
* a heavy-tailed user activity distribution within each field, so
  consumption concentration (Gini) is realistic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.cluster.partitions import ClusterConfig, DEFAULT_CLUSTER

__all__ = ["SubmittedJob", "WorkloadParams", "WorkloadModel", "diurnal_intensity"]

DAY = 86400.0
WEEK = 7.0 * DAY


def diurnal_intensity(times) -> np.ndarray:
    """Relative submission intensity at absolute times (mean 1 over a week).

    Combines a sinusoidal daily cycle peaking mid-afternoon (hour ~15, with
    a ~3:1 peak-to-trough ratio) with a weekday/weekend factor (weekends at
    40% of weekday level). Day 0 of the window is a Monday.
    """
    t = np.asarray(times, dtype=float)
    hour = (t % DAY) / 3600.0
    daily = 1.0 + 0.5 * np.sin(2.0 * np.pi * (hour - 9.0) / 24.0)
    weekday = (t % WEEK) / DAY  # 0..7, Monday start
    weekly = np.where(weekday < 5.0, 1.0, 0.4)
    intensity = daily * weekly
    # Normalize so the weekly mean is exactly 1 (computed analytically:
    # daily integrates to 1 per day; weekly factor means (5*1 + 2*0.4)/7).
    return intensity / ((5.0 + 2.0 * 0.4) / 7.0)


@dataclass(frozen=True, slots=True)
class SubmittedJob:
    """A job as submitted (before scheduling)."""

    job_id: int
    user: str
    field: str
    partition: str
    submit: float
    cores: int
    gpus: int
    runtime: float
    requested_walltime: float

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"job {self.job_id}: cores must be >= 1")
        if self.gpus < 0:
            raise ValueError(f"job {self.job_id}: gpus must be >= 0")
        if self.runtime <= 0:
            raise ValueError(f"job {self.job_id}: runtime must be positive")
        if self.requested_walltime < self.runtime:
            raise ValueError(f"job {self.job_id}: walltime below runtime")


@dataclass(frozen=True)
class FieldMix:
    """Per-field job-mix parameters.

    Attributes
    ----------
    weight:
        Relative share of total submissions from this field.
    gpu_share:
        Fraction of the field's jobs that are GPU jobs.
    wide_share:
        Fraction of CPU jobs that are wide (multi-node MPI-style).
    mean_runtime_hours:
        Geometric mean runtime of the field's jobs.
    n_users:
        Distinct users in the field; activity is Zipf-distributed.
    """

    weight: float
    gpu_share: float
    wide_share: float
    mean_runtime_hours: float
    n_users: int

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if not 0.0 <= self.gpu_share <= 1.0:
            raise ValueError("gpu_share out of [0,1]")
        if not 0.0 <= self.wide_share <= 1.0:
            raise ValueError("wide_share out of [0,1]")
        if self.mean_runtime_hours <= 0:
            raise ValueError("mean_runtime_hours must be positive")
        if self.n_users < 1:
            raise ValueError("n_users must be >= 1")


# Defaults shaped by the same field taxonomy the survey uses.
DEFAULT_FIELD_MIXES: dict[str, FieldMix] = {
    "astrophysics": FieldMix(weight=0.16, gpu_share=0.15, wide_share=0.45, mean_runtime_hours=4.0, n_users=25),
    "physics": FieldMix(weight=0.14, gpu_share=0.12, wide_share=0.35, mean_runtime_hours=4.0, n_users=30),
    "chemistry": FieldMix(weight=0.13, gpu_share=0.20, wide_share=0.30, mean_runtime_hours=5.0, n_users=28),
    "biology": FieldMix(weight=0.12, gpu_share=0.10, wide_share=0.05, mean_runtime_hours=3.0, n_users=40),
    "neuroscience": FieldMix(weight=0.08, gpu_share=0.45, wide_share=0.05, mean_runtime_hours=4.0, n_users=20),
    "engineering": FieldMix(weight=0.14, gpu_share=0.30, wide_share=0.20, mean_runtime_hours=4.0, n_users=35),
    "earth_sciences": FieldMix(weight=0.08, gpu_share=0.08, wide_share=0.40, mean_runtime_hours=7.0, n_users=15),
    "economics": FieldMix(weight=0.04, gpu_share=0.05, wide_share=0.02, mean_runtime_hours=2.0, n_users=18),
    "social_sciences": FieldMix(weight=0.03, gpu_share=0.10, wide_share=0.02, mean_runtime_hours=1.5, n_users=15),
    "mathematics": FieldMix(weight=0.03, gpu_share=0.05, wide_share=0.10, mean_runtime_hours=3.0, n_users=10),
    "computer_science": FieldMix(weight=0.05, gpu_share=0.60, wide_share=0.10, mean_runtime_hours=3.0, n_users=15),
}


@dataclass(frozen=True)
class WorkloadParams:
    """Tunable workload parameters.

    Attributes
    ----------
    months:
        Length of the study window in 30-day months.
    jobs_per_day:
        Mean CPU-side submission rate at window start.
    gpu_growth_per_month:
        Exponential monthly growth factor minus one for the GPU arrival
        rate (0.04 = 4%/month, roughly +60% per year).
    gpu_base_scale:
        Multiplier on the mix-derived GPU arrival rate at window start;
        the default leaves headroom so demand approaches (not exceeds)
        GPU capacity by the end of the default 24-month window.
    field_mixes:
        Per-field mixes; defaults to :data:`DEFAULT_FIELD_MIXES`.
    walltime_overrequest:
        Mean multiplicative factor users pad requested walltime by.
    failure_rate, cancel_rate, timeout_rate:
        Probabilities of non-COMPLETED terminal states, applied by the
        scheduler simulator.
    diurnal:
        Modulate submissions by time-of-day and day-of-week (weekday
        working-hours peak, ~3x the overnight trough; weekends quieter).
        The weekly average rate is preserved, so totals match the
        non-diurnal configuration.
    """

    months: int = 24
    jobs_per_day: float = 450.0
    gpu_growth_per_month: float = 0.04
    gpu_base_scale: float = 0.8
    field_mixes: Mapping[str, FieldMix] = field(
        default_factory=lambda: dict(DEFAULT_FIELD_MIXES)
    )
    walltime_overrequest: float = 2.0
    failure_rate: float = 0.06
    cancel_rate: float = 0.03
    timeout_rate: float = 0.02
    diurnal: bool = False

    def __post_init__(self) -> None:
        if self.months < 1:
            raise ValueError("months must be >= 1")
        if self.jobs_per_day <= 0:
            raise ValueError("jobs_per_day must be positive")
        if self.gpu_growth_per_month < 0:
            raise ValueError("gpu_growth_per_month must be non-negative")
        if self.gpu_base_scale <= 0:
            raise ValueError("gpu_base_scale must be positive")
        if not self.field_mixes:
            raise ValueError("field_mixes is empty")
        if self.walltime_overrequest < 1.0:
            raise ValueError("walltime_overrequest must be >= 1.0")
        total_terminal = self.failure_rate + self.cancel_rate + self.timeout_rate
        if total_terminal >= 1.0:
            raise ValueError("failure/cancel/timeout rates sum to >= 1")

    @property
    def window_seconds(self) -> float:
        return self.months * 30.0 * DAY


class WorkloadModel:
    """Generates a submission stream for a cluster configuration."""

    def __init__(
        self,
        params: WorkloadParams | None = None,
        cluster: ClusterConfig | None = None,
    ) -> None:
        self.params = params or WorkloadParams()
        self.cluster = cluster or DEFAULT_CLUSTER
        self._user_weight_cache: dict[str, np.ndarray] = {}
        for required in ("cpu", "gpu", "serial"):
            if required not in self.cluster:
                raise ValueError(f"cluster must define a {required!r} partition")

    # -- internals --------------------------------------------------------

    def _arrival_times(self, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        """Submission times for (cpu_jobs, gpu_jobs) over the window.

        CPU arrivals are homogeneous Poisson; GPU arrivals are a
        nonhomogeneous Poisson process with rate growing exponentially
        month over month, realized via thinning.
        """
        p = self.params
        window = p.window_seconds

        # The diurnal profile's maximum relative intensity (used as the
        # thinning envelope when enabled).
        diurnal_peak = float(diurnal_intensity(np.array([15.5 * 3600.0]))[0]) if p.diurnal else 1.0

        def thin_diurnal(times: np.ndarray) -> np.ndarray:
            if not p.diurnal or times.size == 0:
                return times
            keep = rng.random(times.size) < diurnal_intensity(times) / diurnal_peak
            return times[keep]

        n_cpu = rng.poisson(p.jobs_per_day * window / DAY * diurnal_peak)
        cpu_times = thin_diurnal(np.sort(rng.uniform(0.0, window, size=n_cpu)))

        # GPU base rate: a fraction of overall traffic, derived from mixes.
        gpu_weight = sum(m.weight * m.gpu_share for m in p.field_mixes.values())
        total_weight = sum(m.weight for m in p.field_mixes.values())
        base_gpu_rate = (
            p.gpu_base_scale * p.jobs_per_day * (gpu_weight / total_weight) / DAY
        )  # per second
        growth = np.log1p(p.gpu_growth_per_month) / (30.0 * DAY)  # per sec
        peak_rate = base_gpu_rate * np.exp(growth * window) * diurnal_peak
        n_candidates = rng.poisson(peak_rate * window)
        candidates = np.sort(rng.uniform(0.0, window, size=n_candidates))
        accept = rng.random(n_candidates) < np.exp(growth * (candidates - window))
        gpu_times = thin_diurnal(candidates[accept])
        return cpu_times, gpu_times

    def _field_for_jobs(
        self, n: int, gpu: bool, rng: np.random.Generator
    ) -> np.ndarray:
        mixes = self.params.field_mixes
        names = list(mixes)
        weights = np.array(
            [
                mixes[f].weight * (mixes[f].gpu_share if gpu else (1.0 - mixes[f].gpu_share))
                for f in names
            ],
            dtype=float,
        )
        if weights.sum() <= 0:
            weights = np.array([mixes[f].weight for f in names], dtype=float)
        weights = weights / weights.sum()
        idx = rng.choice(len(names), size=n, p=weights)
        return np.array(names, dtype=object)[idx]

    def _user_weights(self, field_name: str) -> np.ndarray:
        cached = self._user_weight_cache.get(field_name)
        if cached is None:
            # Zipf-ish activity: user of rank k gets weight 1/k.
            mix = self.params.field_mixes[field_name]
            weights = 1.0 / (np.arange(mix.n_users, dtype=float) + 1.0)
            cached = weights / weights.sum()
            self._user_weight_cache[field_name] = cached
        return cached

    def _user_for(self, field_name: str, rng: np.random.Generator) -> str:
        weights = self._user_weights(field_name)
        k = rng.choice(weights.size, p=weights)
        return f"{field_name[:4]}{k:03d}"

    def _cpu_job_shape(
        self, field_name: str, rng: np.random.Generator
    ) -> tuple[str, int, int]:
        mix = self.params.field_mixes[field_name]
        cpu_part = self.cluster["cpu"]
        if rng.random() < mix.wide_share * 0.6:
            # Wide MPI-style job: power-of-two node counts (2..8 nodes).
            nodes = int(2 ** rng.integers(1, 4))
            cores = nodes * cpu_part.cores_per_node
            return "cpu", min(cores, cpu_part.total_cores), 0
        if rng.random() < 0.5:
            # Small-to-medium multicore job on the shared partition.
            cores = int(2 ** rng.integers(0, 7))  # 1..64 cores
            return "serial", cores, 0
        if rng.random() < 0.12 and "bigmem" in self.cluster:
            cores = int(2 ** rng.integers(3, 7))
            return "bigmem", cores, 0
        cores = int(2 ** rng.integers(2, 7))  # 4..64 cores
        return "cpu", cores, 0

    def _gpu_job_shape(self, rng: np.random.Generator) -> tuple[str, int, int]:
        gpu_part = self.cluster["gpu"]
        gpus = int(rng.choice([1, 1, 1, 2, 4, 8], p=[0.45, 0.2, 0.1, 0.15, 0.07, 0.03]))
        gpus = min(gpus, gpu_part.total_gpus)
        cores = min(gpus * 8, gpu_part.total_cores)
        return "gpu", cores, gpus

    def _runtime(self, field_name: str, rng: np.random.Generator, partition: str) -> float:
        mix = self.params.field_mixes[field_name]
        cap = self.cluster[partition].max_walltime
        runtime = rng.lognormal(np.log(mix.mean_runtime_hours * 3600.0), 1.2)
        return float(np.clip(runtime, 60.0, cap * 0.98))

    # -- public API ---------------------------------------------------------

    def generate(self, rng: np.random.Generator) -> list[SubmittedJob]:
        """Generate the full submission stream, sorted by submit time."""
        p = self.params
        cpu_times, gpu_times = self._arrival_times(rng)
        cpu_fields = self._field_for_jobs(cpu_times.size, gpu=False, rng=rng)
        gpu_fields = self._field_for_jobs(gpu_times.size, gpu=True, rng=rng)

        jobs: list[SubmittedJob] = []
        job_id = 0
        for submit, field_name in zip(cpu_times, cpu_fields):
            partition, cores, gpus = self._cpu_job_shape(str(field_name), rng)
            runtime = self._runtime(str(field_name), rng, partition)
            walltime = min(
                runtime * (1.0 + rng.exponential(p.walltime_overrequest - 1.0)),
                self.cluster[partition].max_walltime,
            )
            walltime = max(walltime, runtime)
            jobs.append(
                SubmittedJob(
                    job_id=job_id,
                    user=self._user_for(str(field_name), rng),
                    field=str(field_name),
                    partition=partition,
                    submit=float(submit),
                    cores=cores,
                    gpus=gpus,
                    runtime=runtime,
                    requested_walltime=float(walltime),
                )
            )
            job_id += 1
        for submit, field_name in zip(gpu_times, gpu_fields):
            partition, cores, gpus = self._gpu_job_shape(rng)
            runtime = self._runtime(str(field_name), rng, partition)
            walltime = min(
                runtime * (1.0 + rng.exponential(p.walltime_overrequest - 1.0)),
                self.cluster[partition].max_walltime,
            )
            walltime = max(walltime, runtime)
            jobs.append(
                SubmittedJob(
                    job_id=job_id,
                    user=self._user_for(str(field_name), rng),
                    field=str(field_name),
                    partition=partition,
                    submit=float(submit),
                    cores=cores,
                    gpus=gpus,
                    runtime=runtime,
                    requested_walltime=float(walltime),
                )
            )
            job_id += 1
        jobs.sort(key=lambda j: j.submit)
        return jobs
