"""Usage aggregation over job tables.

Every function here backs a telemetry table or figure (F3-F7, T5). All
aggregations are vectorized: group keys are factorized once to integer
codes, then totals fall out of ``np.bincount`` with weights — no per-job
Python loops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.records import JobTable
from repro.cluster.partitions import ClusterConfig
from repro.stats.descriptive import ecdf, gini_coefficient, summarize

__all__ = [
    "MONTH_SECONDS",
    "cpu_hours_by_field_month",
    "gpu_hours_monthly",
    "monthly_growth_rate",
    "job_width_distribution",
    "wait_stats_by_partition",
    "runtime_distribution_by_field",
    "utilization_by_partition",
    "user_concentration",
    "arrival_profile",
    "walltime_accuracy",
    "monthly_wait_and_load",
    "interarrival_stats",
]

MONTH_SECONDS = 30.0 * 86400.0


def _factorize(values: np.ndarray) -> tuple[np.ndarray, list[str]]:
    """Integer codes plus sorted unique labels for an object column.

    Prefer :meth:`JobTable.factorize` for table columns — it caches the
    codes per table; this helper remains for free-standing arrays.
    """
    labels, codes = np.unique(values.astype(str), return_inverse=True)
    return codes, labels.tolist()


def _month_index(times: np.ndarray) -> np.ndarray:
    return np.floor_divide(times, MONTH_SECONDS).astype(np.int64)


def cpu_hours_by_field_month(table: JobTable) -> dict[str, np.ndarray]:
    """CPU-hours per field per month (keyed by field; arrays cover months 0..M).

    Hours are attributed to the month the job *started* in — the convention
    most center reports use — so a month's total can exceed capacity when
    long jobs start late in it.
    """
    if len(table) == 0:
        return {}
    months = _month_index(table.start)
    n_months = int(months.max()) + 1
    codes, fields = table.factorize("field")
    hours = table.cpu_hours
    # One flat bincount over (field, month) pairs instead of a masked
    # bincount per field. Each output bin still accumulates exactly the
    # same weights in the same (submission-order) sequence, so the sums
    # are bitwise identical to the per-field version.
    flat = codes * n_months + months
    totals = np.bincount(flat, weights=hours, minlength=len(fields) * n_months)
    totals = totals.reshape(len(fields), n_months)
    return {field_name: totals[code] for code, field_name in enumerate(fields)}


def gpu_hours_monthly(table: JobTable) -> np.ndarray:
    """Total GPU-hours per month over the window."""
    if len(table) == 0:
        return np.zeros(0)
    months = _month_index(table.start)
    n_months = int(months.max()) + 1
    return np.bincount(months, weights=table.gpu_hours, minlength=n_months)


def monthly_growth_rate(series: np.ndarray) -> float:
    """Exponential growth rate per month fitted by least squares on logs.

    Zero months are excluded; requires at least two positive observations.
    Returns the per-month growth fraction (0.06 = +6%/month).
    """
    y = np.asarray(series, dtype=float)
    positive = y > 0
    if positive.sum() < 2:
        raise ValueError("need at least two positive months to fit growth")
    x = np.arange(y.size, dtype=float)[positive]
    logy = np.log(y[positive])
    slope = np.polyfit(x, logy, 1)[0]
    return float(np.expm1(slope))


@dataclass(frozen=True, slots=True)
class WidthDistribution:
    """Job-width CDF plus core-hour-weighted width shares.

    ``widths``/``cdf`` give the per-job ECDF; ``weighted_share`` maps a
    width class to its share of total CPU-hours, distinguishing "most jobs
    are small" from "most cycles go to wide jobs".
    """

    widths: np.ndarray
    cdf: np.ndarray
    weighted_share: dict[str, float]


_WIDTH_CLASSES = ((1, 1, "1"), (2, 8, "2-8"), (9, 64, "9-64"), (65, 512, "65-512"), (513, 1 << 30, ">512"))


def width_class(cores: int) -> str:
    """Width-class label for a core count."""
    for lo, hi, label in _WIDTH_CLASSES:
        if lo <= cores <= hi:
            return label
    raise ValueError(f"unclassifiable core count {cores}")


def job_width_distribution(table: JobTable) -> WidthDistribution:
    """ECDF of job widths and CPU-hour share per width class."""
    if len(table) == 0:
        raise ValueError("empty job table")
    widths, cdf = ecdf(table.cores.astype(float))
    hours = table.cpu_hours
    total = hours.sum()
    shares: dict[str, float] = {}
    for lo, hi, label in _WIDTH_CLASSES:
        m = (table.cores >= lo) & (table.cores <= hi)
        shares[label] = float(hours[m].sum() / total) if total > 0 else 0.0
    return WidthDistribution(widths=widths, cdf=cdf, weighted_share=shares)


def wait_stats_by_partition(table: JobTable) -> dict[str, dict[str, float]]:
    """Queue-wait summary (hours) per partition and width class.

    Returns ``{partition: {"median_h", "p95_h", "mean_h", "n", and
    "median_h[<class>]" per width class present}}``.
    """
    out: dict[str, dict[str, float]] = {}
    for name in table.partitions():
        part = table.by_partition(name)
        waits_h = part.wait / 3600.0
        s = summarize(waits_h)
        stats = {
            "n": float(s.n),
            "mean_h": s.mean,
            "median_h": s.median,
            "p95_h": float(np.quantile(waits_h, 0.95)),
        }
        for lo, hi, label in _WIDTH_CLASSES:
            m = (part.cores >= lo) & (part.cores <= hi)
            if m.any():
                stats[f"median_h[{label}]"] = float(np.median(waits_h[m]))
        out[name] = stats
    return out


def runtime_distribution_by_field(
    table: JobTable, bins: np.ndarray | None = None
) -> dict[str, np.ndarray]:
    """Histogram of log10(runtime hours) per field over shared ``bins``.

    Returns a mapping including the special key ``"__bins__"`` holding the
    shared bin edges, so figure code plots all fields on one axis.
    """
    if len(table) == 0:
        raise ValueError("empty job table")
    log_runtime = np.log10(np.maximum(table.runtime / 3600.0, 1e-4))
    if bins is None:
        bins = np.linspace(-2.0, 2.5, 28)
    codes, fields = table.factorize("field")
    out: dict[str, np.ndarray] = {"__bins__": bins}
    for code, field_name in enumerate(fields):
        counts, _ = np.histogram(log_runtime[codes == code], bins=bins)
        out[field_name] = counts
    return out


def utilization_by_partition(
    table: JobTable, cluster: ClusterConfig, window_seconds: float
) -> dict[str, float]:
    """Core-seconds delivered / core-seconds available, per partition.

    Busy time is clipped to the window so jobs running past the end don't
    inflate utilization above what the window could supply.
    """
    if window_seconds <= 0:
        raise ValueError("window_seconds must be positive")
    out: dict[str, float] = {}
    for p in cluster:
        part = table.by_partition(p.name)
        if len(part) == 0:
            out[p.name] = 0.0
            continue
        start = np.clip(part.start, 0.0, window_seconds)
        end = np.clip(part.end, 0.0, window_seconds)
        busy = float((part.cores * (end - start)).sum())
        out[p.name] = busy / (p.total_cores * window_seconds)
    return out


def interarrival_stats(table: JobTable) -> dict[str, float]:
    """Submission interarrival statistics and burstiness.

    Burstiness is the coefficient of variation of interarrival times; 1.0
    for a Poisson process, above 1 for bursty traffic (job arrays, diurnal
    rhythm), below 1 for pacing.
    """
    if len(table) < 3:
        raise ValueError("need at least 3 jobs")
    submits = np.sort(table.submit)
    gaps = np.diff(submits)
    gaps = gaps[gaps >= 0]
    mean = float(gaps.mean())
    if mean == 0:
        raise ValueError("all submissions simultaneous")
    return {
        "mean_gap_s": mean,
        "median_gap_s": float(np.median(gaps)),
        "cv": float(gaps.std(ddof=1) / mean),
        "n": float(len(table)),
    }


def walltime_accuracy(table: JobTable) -> dict[str, float]:
    """How well users' requested walltimes predict actual runtimes.

    Over completed jobs with a recorded time limit, reports quantiles of
    ``runtime / requested`` (1.0 = perfect prediction; typical centers sit
    near 0.3-0.5 because users pad requests for safety) and the share of
    near-misses (ratio > 0.9 — jobs that nearly hit their limit).
    """
    completed = table.completed()
    has_limit = completed.req_walltime > 0
    if not has_limit.any():
        raise ValueError("no completed jobs with recorded walltime requests")
    sub = completed.mask(has_limit)
    ratio = sub.runtime / sub.req_walltime
    q25, q50, q75 = np.quantile(ratio, [0.25, 0.5, 0.75])
    return {
        "n": float(len(sub)),
        "q25": float(q25),
        "median": float(q50),
        "q75": float(q75),
        "near_miss_share": float((ratio > 0.9).mean()),
        "under_tenth_share": float((ratio < 0.1).mean()),
    }


def monthly_wait_and_load(
    table: JobTable, partition: str, total_cores: int
) -> dict[str, np.ndarray]:
    """Per-month median wait (hours) and offered load for one partition.

    Load is core-seconds started in the month divided by the partition's
    core-seconds for the month — the x-axis of the queueing curve (X1).
    """
    if total_cores < 1:
        raise ValueError("total_cores must be >= 1")
    part = table.by_partition(partition)
    if len(part) == 0:
        raise ValueError(f"no jobs in partition {partition!r}")
    months = _month_index(part.start)
    n_months = int(months.max()) + 1
    med_wait = np.zeros(n_months)
    load = np.zeros(n_months)
    busy = part.cores * part.runtime
    for m in range(n_months):
        sel = months == m
        if sel.any():
            med_wait[m] = np.median(part.wait[sel]) / 3600.0
            load[m] = busy[sel].sum() / (total_cores * MONTH_SECONDS)
    return {"median_wait_h": med_wait, "load": load}


def arrival_profile(table: JobTable) -> dict[str, np.ndarray]:
    """Submission counts by hour-of-day and day-of-week.

    Day 0 of the window is a Monday (the workload generator's convention).
    Returns ``{"hourly": 24 counts, "weekly": 7 counts}``.
    """
    if len(table) == 0:
        raise ValueError("empty job table")
    hours = ((table.submit % 86400.0) / 3600.0).astype(np.int64)
    days = ((table.submit % (7 * 86400.0)) / 86400.0).astype(np.int64)
    return {
        "hourly": np.bincount(hours, minlength=24)[:24],
        "weekly": np.bincount(days, minlength=7)[:7],
    }


def user_concentration(table: JobTable, resource: str = "cpu") -> dict[str, float]:
    """Concentration of consumption across users.

    Returns the Gini coefficient and the share of the top 10% of users for
    CPU-hours (``resource="cpu"``) or GPU-hours (``"gpu"``).
    """
    if len(table) == 0:
        raise ValueError("empty job table")
    if resource == "cpu":
        hours = table.cpu_hours
    elif resource == "gpu":
        hours = table.gpu_hours
    else:
        raise ValueError(f"unknown resource {resource!r}")
    codes, users = table.factorize("user")
    per_user = np.bincount(codes, weights=hours, minlength=len(users))
    per_user = per_user[per_user > 0]
    if per_user.size == 0:
        raise ValueError(f"no {resource} consumption in table")
    per_user.sort()
    top_k = max(1, int(np.ceil(per_user.size * 0.10)))
    top_share = float(per_user[-top_k:].sum() / per_user.sum())
    return {
        "gini": gini_coefficient(per_user),
        "top10_share": top_share,
        "n_users": float(per_user.size),
    }
