"""Capacity outlook: when does demand outgrow the machine?

The "Trends" punchline for the research-computing co-authors: GPU demand is
growing exponentially against fixed capacity. This module projects the
fitted growth forward and answers "months until saturation" and "how much
capacity buys how much time".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.partitions import Partition
from repro.cluster.records import JobTable
from repro.cluster.usage import MONTH_SECONDS, gpu_hours_monthly, monthly_growth_rate

__all__ = ["CapacityOutlook", "months_to_saturation", "gpu_capacity_outlook"]


def months_to_saturation(
    current_monthly: float, capacity_monthly: float, growth_per_month: float
) -> float:
    """Months until exponential demand reaches capacity.

    Returns 0.0 when already saturated and ``inf`` when growth is
    non-positive and demand is below capacity.
    """
    if current_monthly <= 0:
        raise ValueError("current_monthly must be positive")
    if capacity_monthly <= 0:
        raise ValueError("capacity_monthly must be positive")
    if current_monthly >= capacity_monthly:
        return 0.0
    if growth_per_month <= 0:
        return float("inf")
    return float(
        np.log(capacity_monthly / current_monthly) / np.log1p(growth_per_month)
    )


@dataclass(frozen=True)
class CapacityOutlook:
    """GPU capacity projection.

    Attributes
    ----------
    current_monthly_gpu_hours:
        Demand in the last full month of the window.
    capacity_monthly_gpu_hours:
        GPU-hours the partition can deliver per month (at 100% utilization).
    growth_per_month:
        Fitted exponential growth rate.
    months_to_saturation:
        Projection from the end of the window.
    months_bought_by_doubling:
        Additional months a 2x capacity expansion buys (constant at
        ``log 2 / log(1+g)`` for exponential growth — the punchline that
        expansion alone cannot keep up).
    """

    current_monthly_gpu_hours: float
    capacity_monthly_gpu_hours: float
    growth_per_month: float
    months_to_saturation: float
    months_bought_by_doubling: float


def _monthly_demand(table: JobTable) -> np.ndarray:
    """GPU-hours of *offered demand*, binned by submission month.

    Unlike delivered hours (binned by start month), demand keeps growing
    even once the partition saturates and jobs queue — which is exactly the
    quantity capacity planning must extrapolate.
    """
    months = np.floor_divide(table.submit, MONTH_SECONDS).astype(np.int64)
    return np.bincount(months, weights=table.gpu_hours)


def gpu_capacity_outlook(table: JobTable, gpu_partition: Partition) -> CapacityOutlook:
    """Project the GPU partition's time-to-saturation from telemetry."""
    if gpu_partition.total_gpus == 0:
        raise ValueError(f"partition {gpu_partition.name!r} has no GPUs")
    gpu_jobs = table.gpu_jobs()
    if len(gpu_jobs) == 0:
        raise ValueError("no GPU jobs in telemetry")
    series = _monthly_demand(gpu_jobs)
    # Drop a trailing partial month (it under-accumulates and would bias
    # the growth fit downward).
    if series.size >= 2 and series[-1] < 0.5 * series[-2]:
        series = series[:-1]
    if series.size < 3:
        raise ValueError("need at least 3 months of GPU telemetry")
    current = float(series[-1])
    if current <= 0:
        raise ValueError("no recent GPU consumption to project from")
    growth = monthly_growth_rate(series)
    capacity = gpu_partition.total_gpus * MONTH_SECONDS / 3600.0
    to_saturation = months_to_saturation(current, capacity, growth)
    doubling_buys = (
        float(np.log(2.0) / np.log1p(growth)) if growth > 0 else float("inf")
    )
    return CapacityOutlook(
        current_monthly_gpu_hours=current,
        capacity_monthly_gpu_hours=capacity,
        growth_per_month=growth,
        months_to_saturation=to_saturation,
        months_bought_by_doubling=doubling_buys,
    )
