"""Resource allocators for the scheduler simulator.

Two allocation models:

* :class:`PooledAllocator` — resources are fungible partition-wide counters
  (the original model; fast, optimistic about placement);
* :class:`NodeGranularAllocator` — per-node bookkeeping: multi-node jobs
  need *whole free nodes*, sub-node jobs first-fit onto a node with enough
  free cores/GPUs. This captures the fragmentation real wide jobs suffer —
  a partition can have thousands of free cores yet no full node.

Allocation returns an opaque token that must be passed back to
:meth:`release`; the simulator stores it with the running job.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PooledAllocator", "NodeGranularAllocator"]


class PooledAllocator:
    """Fungible partition-wide core/GPU counters."""

    def __init__(self, total_cores: int, total_gpus: int) -> None:
        if total_cores < 1 or total_gpus < 0:
            raise ValueError("invalid partition capacity")
        self.free_cores = total_cores
        self.free_gpus = total_gpus

    def fits(self, cores: int, gpus: int) -> bool:
        return cores <= self.free_cores and gpus <= self.free_gpus

    def allocate(self, cores: int, gpus: int):
        free_cores = self.free_cores - cores
        free_gpus = self.free_gpus - gpus
        if free_cores < 0 or free_gpus < 0:
            raise RuntimeError("allocation does not fit")
        self.free_cores = free_cores
        self.free_gpus = free_gpus
        return (cores, gpus)

    def release(self, token) -> None:
        cores, gpus = token
        self.free_cores += cores
        self.free_gpus += gpus

    def release_batch(self, tokens) -> None:
        """Release many allocations at once (one counter update)."""
        free_cores = self.free_cores
        free_gpus = self.free_gpus
        for cores, gpus in tokens:
            free_cores += cores
            free_gpus += gpus
        self.free_cores = free_cores
        self.free_gpus = free_gpus


class NodeGranularAllocator:
    """Per-node allocation with whole-node placement for multi-node jobs.

    Placement rules (mirroring common Slurm configurations):

    * a job requesting more cores than one node holds gets
      ``ceil(cores / cores_per_node)`` *exclusive* nodes;
    * a sub-node job is placed first-fit on a single node with enough free
      cores and GPUs (GPU jobs never span nodes below node size).
    """

    def __init__(self, nodes: int, cores_per_node: int, gpus_per_node: int) -> None:
        if nodes < 1 or cores_per_node < 1 or gpus_per_node < 0:
            raise ValueError("invalid node configuration")
        self.cores_per_node = cores_per_node
        self.gpus_per_node = gpus_per_node
        self.node_free_cores = np.full(nodes, cores_per_node, dtype=np.int64)
        self.node_free_gpus = np.full(nodes, gpus_per_node, dtype=np.int64)

    @property
    def free_cores(self) -> int:
        return int(self.node_free_cores.sum())

    @property
    def free_gpus(self) -> int:
        return int(self.node_free_gpus.sum())

    def _whole_nodes_needed(self, cores: int, gpus: int) -> int | None:
        """Node count for an exclusive placement, or None for sub-node jobs."""
        if cores > self.cores_per_node or (
            self.gpus_per_node and gpus > self.gpus_per_node
        ):
            by_cores = -(-cores // self.cores_per_node)
            by_gpus = (
                -(-gpus // self.gpus_per_node) if self.gpus_per_node and gpus else 0
            )
            return max(by_cores, by_gpus)
        return None

    def _full_nodes(self) -> np.ndarray:
        full = self.node_free_cores == self.cores_per_node
        if self.gpus_per_node:
            full &= self.node_free_gpus == self.gpus_per_node
        return np.flatnonzero(full)

    def fits(self, cores: int, gpus: int) -> bool:
        needed = self._whole_nodes_needed(cores, gpus)
        if needed is not None:
            return self._full_nodes().size >= needed
        ok = self.node_free_cores >= cores
        if gpus:
            ok &= self.node_free_gpus >= gpus
        return bool(ok.any())

    def allocate(self, cores: int, gpus: int):
        needed = self._whole_nodes_needed(cores, gpus)
        if needed is not None:
            nodes = self._full_nodes()
            if nodes.size < needed:
                raise RuntimeError("allocation does not fit")
            chosen = nodes[:needed]
            taken_cores = self.node_free_cores[chosen].copy()
            taken_gpus = self.node_free_gpus[chosen].copy()
            self.node_free_cores[chosen] = 0
            self.node_free_gpus[chosen] = 0
            return ("whole", chosen, taken_cores, taken_gpus)
        ok = self.node_free_cores >= cores
        if gpus:
            ok &= self.node_free_gpus >= gpus
        candidates = np.flatnonzero(ok)
        if candidates.size == 0:
            raise RuntimeError("allocation does not fit")
        # Best-fit: tightest node that still fits, to limit fragmentation.
        node = candidates[np.argmin(self.node_free_cores[candidates])]
        self.node_free_cores[node] -= cores
        self.node_free_gpus[node] -= gpus
        return ("part", int(node), cores, gpus)

    def release(self, token) -> None:
        kind = token[0]
        if kind == "whole":
            _, chosen, taken_cores, taken_gpus = token
            self.node_free_cores[chosen] += taken_cores
            self.node_free_gpus[chosen] += taken_gpus
        else:
            _, node, cores, gpus = token
            self.node_free_cores[node] += cores
            self.node_free_gpus[node] += gpus

    def release_batch(self, tokens) -> None:
        """Release many allocations at once.

        Node counter updates are integer additions, so batch order cannot
        change the resulting free map.
        """
        for token in tokens:
            self.release(token)
