"""``sacct``-style accounting I/O.

The format mirrors ``sacct --parsable2`` output: a pipe-delimited header
plus one row per job. A site reproducing the study on real data can feed
``sacct -a -P -o JobID,User,Account,Partition,Submit,Start,End,AllocCPUS,AllocTRES,State``
exports through a thin column-mapping into this reader.

Times are serialized as plain seconds (floats) relative to the window
start; GPU counts use the TRES-like ``gres/gpu=N`` syntax so the parser
exercises the same string handling real exports need. Paths ending in
``.gz`` are transparently gzip-compressed (center exports usually are).
"""

from __future__ import annotations

import gzip
import io
import logging
from pathlib import Path
from typing import Iterable, TextIO


def _open_text(path: str | Path, mode: str):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")

from repro.cluster.records import JobRecord, JobState, JobTable
from repro.io.errors import SkippedRow

__all__ = ["write_sacct", "parse_sacct", "SacctFormatError", "SkippedRow"]

logger = logging.getLogger(__name__)

_HEADER = (
    "JobID|User|Account|Partition|Submit|Start|End|AllocCPUS|AllocTRES|Timelimit|State"
)

#: Lazily-bound ``repro.core.trace.instant`` (set on first use); imported
#: at module top this would be circular via ``repro.core`` → pipeline →
#: ``repro.io`` (see the same pattern in ``repro.io.locks``).
_trace_instant = None


def _emit_skips(reader: str, count: int) -> None:
    """Surface a skipped-row tally on the trace bus (see ``repro.io.jsonl``)."""
    global _trace_instant
    if _trace_instant is None:
        from repro.core.trace import instant as _trace_instant
    _trace_instant("ingest.skipped_rows", "ingest", reader=reader, count=count)


class SacctFormatError(ValueError):
    """Raised on malformed accounting input."""


def write_sacct(table: JobTable, destination: str | Path | TextIO) -> None:
    """Write a job table in sacct-parsable2 format.

    Rows are rendered straight from the table's column blocks — string
    columns resolve through their dictionary codes, so no per-row
    :class:`JobRecord` is ever materialized. Output is byte-identical to
    the per-record writer this replaced.
    """
    if isinstance(destination, (str, Path)):
        with _open_text(destination, "w") as fh:
            write_sacct(table, fh)
        return
    destination.write(_HEADER + "\n")
    users, fields, parts = table.cat("user"), table.cat("field"), table.cat("partition")
    states = table.cat("state")
    job_id, cores, gpus = table.job_id, table.cores, table.gpus
    submit, start, end, walltime = table.submit, table.start, table.end, table.req_walltime
    out: list[str] = []
    for i in range(len(table)):
        n_gpus = int(gpus[i])
        n_cores = int(cores[i])
        tres = f"cpu={n_cores}" + (f",gres/gpu={n_gpus}" if n_gpus else "")
        out.append(
            "|".join(
                [
                    str(int(job_id[i])),
                    users.categories[users.codes[i]],
                    fields.categories[fields.codes[i]],
                    parts.categories[parts.codes[i]],
                    f"{submit[i]:.3f}",
                    f"{start[i]:.3f}",
                    f"{end[i]:.3f}",
                    str(n_cores),
                    tres,
                    f"{walltime[i]:.0f}",
                    states.categories[states.codes[i]],
                ]
            )
            + "\n"
        )
    destination.write("".join(out))


def _parse_gpus(tres: str, job_id: str) -> int:
    for part in tres.split(","):
        part = part.strip()
        if part.startswith("gres/gpu="):
            value = part.removeprefix("gres/gpu=")
            try:
                return int(value)
            except ValueError:
                raise SacctFormatError(
                    f"job {job_id}: bad gres/gpu value {value!r}"
                ) from None
    return 0


def _parse_row(line: str, lineno: int) -> JobRecord:
    """Parse one accounting row, raising :class:`SacctFormatError` with context."""
    parts = line.split("|")
    if len(parts) != 11:
        raise SacctFormatError(f"line {lineno}: expected 11 fields, got {len(parts)}")
    (
        job_id,
        user,
        account,
        partition,
        submit,
        start,
        end,
        cpus,
        tres,
        timelimit,
        state,
    ) = parts
    try:
        return JobRecord(
            job_id=int(job_id),
            user=user,
            field=account,
            partition=partition,
            submit=float(submit),
            start=float(start),
            end=float(end),
            cores=int(cpus),
            gpus=_parse_gpus(tres, job_id),
            state=JobState(state),
            req_walltime=float(timelimit),
        )
    except ValueError as exc:
        raise SacctFormatError(f"line {lineno}: {exc}") from exc


def parse_sacct(
    source: str | Path | TextIO,
    *,
    on_bad_rows: str = "raise",
    skipped: list[SkippedRow] | None = None,
) -> JobTable:
    """Parse sacct-parsable2 accounting data into a :class:`JobTable`.

    Accepts a path, an open text stream, or a literal string containing the
    data (detected by the presence of newlines / the header).

    Multi-month site exports are dirty in practice: short rows, mangled
    TRES strings, truncated gzip tails. ``on_bad_rows="skip"`` tolerates
    those — each malformed row is skipped, recorded into ``skipped`` (when
    given) as a :class:`~repro.io.errors.SkippedRow` with its line number,
    and the tally is logged. Strict (``"raise"``) remains the default.
    A missing/foreign header and an empty input stay fatal in both modes
    (that is a wrong *file*, not a dirty row).
    """
    if on_bad_rows not in ("raise", "skip"):
        raise ValueError(f"unknown on_bad_rows {on_bad_rows!r}")
    if isinstance(source, Path):
        with _open_text(source, "r") as fh:
            return parse_sacct(fh, on_bad_rows=on_bad_rows, skipped=skipped)
    if isinstance(source, str):
        if "\n" in source or source.lstrip("\ufeff").startswith("JobID|"):
            return parse_sacct(
                io.StringIO(source), on_bad_rows=on_bad_rows, skipped=skipped
            )
        with _open_text(source, "r") as fh:
            return parse_sacct(fh, on_bad_rows=on_bad_rows, skipped=skipped)

    skips: list[SkippedRow] = []
    records: list[JobRecord] = []
    lines = enumerate(source, start=1)
    saw_header = False
    while True:
        try:
            lineno, line = next(lines)
        except StopIteration:
            break
        except (EOFError, OSError) as exc:
            # Truncated/corrupt gzip member: no further lines exist.
            if on_bad_rows == "skip" and saw_header:
                skips.append(SkippedRow(-1, f"unreadable stream tail: {exc!r}"))
                break
            raise SacctFormatError(f"unreadable accounting stream: {exc}") from exc
        line = line.rstrip("\n").rstrip("\r")
        if not saw_header:
            # Encoding noise from Windows-origin exports (UTF-8 BOM, CRLF
            # endings) is stripped before the header check and never
            # counted as a skipped row.
            line = line.lstrip("\ufeff")
            if line != _HEADER:
                raise SacctFormatError(
                    f"unexpected header {line!r}; expected {_HEADER!r}"
                )
            saw_header = True
            continue
        if not line.strip():
            continue
        try:
            records.append(_parse_row(line, lineno))
        except SacctFormatError as exc:
            if on_bad_rows == "raise":
                raise
            skips.append(SkippedRow(lineno, str(exc)))
    if not saw_header:
        raise SacctFormatError("empty accounting input")
    if skips:
        logger.warning(
            "parse_sacct: skipped %d malformed row(s) at line(s) %s",
            len(skips),
            ", ".join(str(s.lineno) for s in skips[:10])
            + (", ..." if len(skips) > 10 else ""),
        )
        _emit_skips("parse_sacct", len(skips))
        if skipped is not None:
            skipped.extend(skips)
    return JobTable.from_records(records)
