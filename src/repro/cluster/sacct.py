"""``sacct``-style accounting I/O.

The format mirrors ``sacct --parsable2`` output: a pipe-delimited header
plus one row per job. A site reproducing the study on real data can feed
``sacct -a -P -o JobID,User,Account,Partition,Submit,Start,End,AllocCPUS,AllocTRES,State``
exports through a thin column-mapping into this reader.

Times are serialized as plain seconds (floats) relative to the window
start; GPU counts use the TRES-like ``gres/gpu=N`` syntax so the parser
exercises the same string handling real exports need. Paths ending in
``.gz`` are transparently gzip-compressed (center exports usually are).
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Iterable, TextIO


def _open_text(path: str | Path, mode: str):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")

from repro.cluster.records import JobRecord, JobState, JobTable

__all__ = ["write_sacct", "parse_sacct", "SacctFormatError"]

_HEADER = (
    "JobID|User|Account|Partition|Submit|Start|End|AllocCPUS|AllocTRES|Timelimit|State"
)


class SacctFormatError(ValueError):
    """Raised on malformed accounting input."""


def _format_row(r: JobRecord) -> str:
    tres = f"cpu={r.cores}" + (f",gres/gpu={r.gpus}" if r.gpus else "")
    return "|".join(
        [
            str(r.job_id),
            r.user,
            r.field,
            r.partition,
            f"{r.submit:.3f}",
            f"{r.start:.3f}",
            f"{r.end:.3f}",
            str(r.cores),
            tres,
            f"{r.req_walltime:.0f}",
            r.state.value,
        ]
    )


def write_sacct(table: JobTable, destination: str | Path | TextIO) -> None:
    """Write a job table in sacct-parsable2 format."""
    if isinstance(destination, (str, Path)):
        with _open_text(destination, "w") as fh:
            write_sacct(table, fh)
        return
    destination.write(_HEADER + "\n")
    for record in table:
        destination.write(_format_row(record) + "\n")


def _parse_gpus(tres: str, job_id: str) -> int:
    for part in tres.split(","):
        part = part.strip()
        if part.startswith("gres/gpu="):
            value = part.removeprefix("gres/gpu=")
            try:
                return int(value)
            except ValueError:
                raise SacctFormatError(
                    f"job {job_id}: bad gres/gpu value {value!r}"
                ) from None
    return 0


def parse_sacct(source: str | Path | TextIO) -> JobTable:
    """Parse sacct-parsable2 accounting data into a :class:`JobTable`.

    Accepts a path, an open text stream, or a literal string containing the
    data (detected by the presence of newlines / the header).
    """
    if isinstance(source, Path):
        with _open_text(source, "r") as fh:
            return parse_sacct(fh)
    if isinstance(source, str):
        if "\n" in source or source.startswith("JobID|"):
            return parse_sacct(io.StringIO(source))
        with _open_text(source, "r") as fh:
            return parse_sacct(fh)

    lines = [line.rstrip("\n") for line in source]
    if not lines:
        raise SacctFormatError("empty accounting input")
    if lines[0] != _HEADER:
        raise SacctFormatError(
            f"unexpected header {lines[0]!r}; expected {_HEADER!r}"
        )
    records: list[JobRecord] = []
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        parts = line.split("|")
        if len(parts) != 11:
            raise SacctFormatError(f"line {lineno}: expected 11 fields, got {len(parts)}")
        (
            job_id,
            user,
            account,
            partition,
            submit,
            start,
            end,
            cpus,
            tres,
            timelimit,
            state,
        ) = parts
        try:
            record = JobRecord(
                job_id=int(job_id),
                user=user,
                field=account,
                partition=partition,
                submit=float(submit),
                start=float(start),
                end=float(end),
                cores=int(cpus),
                gpus=_parse_gpus(tres, job_id),
                state=JobState(state),
                req_walltime=float(timelimit),
            )
        except ValueError as exc:
            raise SacctFormatError(f"line {lineno}: {exc}") from exc
        records.append(record)
    return JobTable.from_records(records)
