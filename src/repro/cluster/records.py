"""Job records and the columnar :class:`JobTable`.

Telemetry analyses aggregate over tens of thousands of jobs; iterating
Python objects per job would dominate runtime. :class:`JobTable` therefore
stores one contiguous numpy array per column (struct-of-arrays). Derived
quantities (wait, runtime, CPU-hours) are computed vectorized and cached.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

import numpy as np

__all__ = ["JobState", "JobRecord", "JobTable"]


class JobState(enum.Enum):
    """Terminal accounting state of a job."""

    COMPLETED = "COMPLETED"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"
    TIMEOUT = "TIMEOUT"


@dataclass(frozen=True, slots=True)
class JobRecord:
    """One accounting record (times in seconds from window start).

    Attributes
    ----------
    job_id:
        Unique integer id.
    user:
        Opaque user label.
    field:
        Research field of the owning group (the join key to the survey).
    partition:
        Partition the job ran in.
    submit, start, end:
        Submission, start, and end times; ``submit <= start <= end``.
    cores:
        Total cores allocated.
    gpus:
        Total GPUs allocated (0 for CPU jobs).
    state:
        Terminal :class:`JobState`.
    req_walltime:
        Requested walltime in seconds (0.0 when the accounting source did
        not record it); drives the walltime-accuracy analysis.
    """

    job_id: int
    user: str
    field: str
    partition: str
    submit: float
    start: float
    end: float
    cores: int
    gpus: int
    state: JobState
    req_walltime: float = 0.0

    def __post_init__(self) -> None:
        if not (self.submit <= self.start <= self.end):
            raise ValueError(
                f"job {self.job_id}: times out of order "
                f"(submit={self.submit}, start={self.start}, end={self.end})"
            )
        if self.cores < 1:
            raise ValueError(f"job {self.job_id}: cores must be >= 1")
        if self.gpus < 0:
            raise ValueError(f"job {self.job_id}: gpus must be >= 0")
        if self.req_walltime < 0:
            raise ValueError(f"job {self.job_id}: req_walltime must be >= 0")

    @property
    def wait(self) -> float:
        """Queue wait in seconds."""
        return self.start - self.submit

    @property
    def runtime(self) -> float:
        """Execution time in seconds."""
        return self.end - self.start

    @property
    def cpu_hours(self) -> float:
        return self.cores * self.runtime / 3600.0

    @property
    def gpu_hours(self) -> float:
        return self.gpus * self.runtime / 3600.0


class JobTable:
    """Columnar container of job records.

    Construct from records via :meth:`from_records` or directly from columns
    (all arrays same length). Columns are read-only views; filtering returns
    a new table sharing no mutable state.
    """

    _FLOAT_COLS = ("submit", "start", "end", "req_walltime")
    _INT_COLS = ("job_id", "cores", "gpus")
    _STR_COLS = ("user", "field", "partition", "state")

    def __init__(
        self,
        job_id: np.ndarray,
        user: np.ndarray,
        field: np.ndarray,
        partition: np.ndarray,
        submit: np.ndarray,
        start: np.ndarray,
        end: np.ndarray,
        cores: np.ndarray,
        gpus: np.ndarray,
        state: np.ndarray,
        req_walltime: np.ndarray | None = None,
    ) -> None:
        self.job_id = np.ascontiguousarray(job_id, dtype=np.int64)
        self.user = np.asarray(user, dtype=object)
        self.field = np.asarray(field, dtype=object)
        self.partition = np.asarray(partition, dtype=object)
        self.submit = np.ascontiguousarray(submit, dtype=float)
        self.start = np.ascontiguousarray(start, dtype=float)
        self.end = np.ascontiguousarray(end, dtype=float)
        self.cores = np.ascontiguousarray(cores, dtype=np.int64)
        self.gpus = np.ascontiguousarray(gpus, dtype=np.int64)
        self.state = np.asarray(state, dtype=object)
        if req_walltime is None:
            req_walltime = np.zeros(self.job_id.size, dtype=float)
        self.req_walltime = np.ascontiguousarray(req_walltime, dtype=float)
        # Lazily-computed derived columns, factorizations, and sub-tables.
        # Tables are immutable by convention, so aggregation code can hit
        # the same derived column many times without recomputing it.
        self._cache: dict[object, object] = {}

        n = self.job_id.size
        for name in self._FLOAT_COLS + self._INT_COLS + self._STR_COLS:
            col = getattr(self, name)
            if col.size != n:
                raise ValueError(f"column {name!r} length {col.size} != {n}")
        if n:
            if (self.submit > self.start).any() or (self.start > self.end).any():
                bad = int(np.argmax((self.submit > self.start) | (self.start > self.end)))
                raise ValueError(f"times out of order at row {bad}")
            if (self.cores < 1).any():
                raise ValueError("cores must be >= 1")
            if (self.gpus < 0).any():
                raise ValueError("gpus must be >= 0")
            # Tables straight out of the scheduler arrive sorted by job id;
            # strictly-increasing ids are unique by definition, which makes
            # the common-case uniqueness check a single cheap comparison
            # pass instead of a hash/sort in np.unique.
            ids = self.job_id
            if not (ids[1:] > ids[:-1]).all() and np.unique(ids).size != n:
                raise ValueError("duplicate job ids")

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_records(cls, records: Iterable[JobRecord]) -> "JobTable":
        records = list(records)
        return cls(
            job_id=np.array([r.job_id for r in records], dtype=np.int64),
            user=np.array([r.user for r in records], dtype=object),
            field=np.array([r.field for r in records], dtype=object),
            partition=np.array([r.partition for r in records], dtype=object),
            submit=np.array([r.submit for r in records], dtype=float),
            start=np.array([r.start for r in records], dtype=float),
            end=np.array([r.end for r in records], dtype=float),
            cores=np.array([r.cores for r in records], dtype=np.int64),
            gpus=np.array([r.gpus for r in records], dtype=np.int64),
            state=np.array([r.state.value for r in records], dtype=object),
            req_walltime=np.array([r.req_walltime for r in records], dtype=float),
        )

    @classmethod
    def empty(cls) -> "JobTable":
        return cls.from_records([])

    # -- basics ---------------------------------------------------------------

    def __len__(self) -> int:
        return int(self.job_id.size)

    def __iter__(self) -> Iterator[JobRecord]:
        for i in range(len(self)):
            yield self.record(i)

    def record(self, i: int) -> JobRecord:
        """Materialize row ``i`` as a :class:`JobRecord`."""
        return JobRecord(
            job_id=int(self.job_id[i]),
            user=str(self.user[i]),
            field=str(self.field[i]),
            partition=str(self.partition[i]),
            submit=float(self.submit[i]),
            start=float(self.start[i]),
            end=float(self.end[i]),
            cores=int(self.cores[i]),
            gpus=int(self.gpus[i]),
            state=JobState(self.state[i]),
            req_walltime=float(self.req_walltime[i]),
        )

    # -- derived columns --------------------------------------------------------

    def _derived(self, name: str, compute) -> np.ndarray:
        out = self._cache.get(name)
        if out is None:
            out = compute()
            # Read-only: cached arrays are shared across every caller.
            out.setflags(write=False)
            self._cache[name] = out
        return out

    @property
    def wait(self) -> np.ndarray:
        """Queue waits in seconds (vectorized, cached)."""
        return self._derived("wait", lambda: self.start - self.submit)

    @property
    def runtime(self) -> np.ndarray:
        return self._derived("runtime", lambda: self.end - self.start)

    @property
    def cpu_hours(self) -> np.ndarray:
        return self._derived("cpu_hours", lambda: self.cores * self.runtime / 3600.0)

    @property
    def gpu_hours(self) -> np.ndarray:
        return self._derived("gpu_hours", lambda: self.gpus * self.runtime / 3600.0)

    def factorize(self, column: str) -> tuple[np.ndarray, list[str]]:
        """Integer codes plus sorted unique labels for a string column.

        Cached per column: aggregation functions factorize the same group
        keys (field, user, partition) repeatedly over one table.
        """
        if column not in self._STR_COLS:
            raise ValueError(f"factorize expects one of {self._STR_COLS}, got {column!r}")
        cached = self._cache.get(("factorize", column))
        if cached is None:
            labels, codes = np.unique(
                getattr(self, column).astype(str), return_inverse=True
            )
            codes.setflags(write=False)
            cached = (codes, tuple(labels.tolist()))
            self._cache[("factorize", column)] = cached
        codes, labels = cached
        return codes, list(labels)

    # -- filtering ---------------------------------------------------------------

    def mask(self, m: np.ndarray) -> "JobTable":
        """New table with rows where boolean mask ``m`` is True."""
        m = np.asarray(m, dtype=bool)
        if m.shape != (len(self),):
            raise ValueError(f"mask shape {m.shape} != ({len(self)},)")
        return JobTable(
            job_id=self.job_id[m],
            user=self.user[m],
            field=self.field[m],
            partition=self.partition[m],
            submit=self.submit[m],
            start=self.start[m],
            end=self.end[m],
            cores=self.cores[m],
            gpus=self.gpus[m],
            state=self.state[m],
            req_walltime=self.req_walltime[m],
        )

    def by_partition(self, name: str) -> "JobTable":
        """Sub-table of one partition (cached: analyses slice per partition
        over and over; treat the result as read-only)."""
        cached = self._cache.get(("by_partition", name))
        if cached is None:
            cached = self.mask(self.partition == name)
            self._cache[("by_partition", name)] = cached
        return cached

    def by_field(self, name: str) -> "JobTable":
        return self.mask(self.field == name)

    def gpu_jobs(self) -> "JobTable":
        return self.mask(self.gpus > 0)

    def completed(self) -> "JobTable":
        return self.mask(self.state == JobState.COMPLETED.value)

    def partitions(self) -> tuple[str, ...]:
        """Distinct partition names, sorted (cached)."""
        cached = self._cache.get("partitions")
        if cached is None:
            cached = tuple(sorted(set(self.partition.tolist())))
            self._cache["partitions"] = cached
        return cached

    def fields(self) -> tuple[str, ...]:
        cached = self._cache.get("fields")
        if cached is None:
            cached = tuple(sorted(set(self.field.tolist())))
            self._cache["fields"] = cached
        return cached

    def concat(self, other: "JobTable") -> "JobTable":
        """Row-wise concatenation (job ids must stay unique)."""
        return JobTable(
            job_id=np.concatenate([self.job_id, other.job_id]),
            user=np.concatenate([self.user, other.user]),
            field=np.concatenate([self.field, other.field]),
            partition=np.concatenate([self.partition, other.partition]),
            submit=np.concatenate([self.submit, other.submit]),
            start=np.concatenate([self.start, other.start]),
            end=np.concatenate([self.end, other.end]),
            cores=np.concatenate([self.cores, other.cores]),
            gpus=np.concatenate([self.gpus, other.gpus]),
            state=np.concatenate([self.state, other.state]),
            req_walltime=np.concatenate([self.req_walltime, other.req_walltime]),
        )
