"""Job records and the columnar :class:`JobTable`.

Telemetry analyses aggregate over tens of thousands of jobs; iterating
Python objects per job would dominate runtime. :class:`JobTable` therefore
stores one contiguous numpy array per column (struct-of-arrays). String
columns (``user``, ``field``, ``partition``, ``state``) are dictionary
encoded as :class:`Categorical` blocks: an ``int32`` code array plus a
shared category table, so filtering and grouping are integer mask/bincount
operations instead of object-dtype comparisons. Derived quantities (wait,
runtime, CPU-hours) are computed vectorized and cached.

Canonical-form invariant
------------------------
Every :class:`Categorical` stored in a table is *canonical*: its category
tuple is sorted and contains exactly the labels present in the code array.
This makes ``factorize``/``partitions``/``fields`` zero-cost reads of the
stored block, keeps filtered tables' category tables minimal, and makes the
pickled form of two value-equal tables byte-identical regardless of the
construction path (``from_records`` vs. columnar).
"""

from __future__ import annotations

import enum
from bisect import bisect_left
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from itertools import compress

import numpy as np

__all__ = ["JobState", "JobRecord", "Categorical", "JobTable"]


class JobState(enum.Enum):
    """Terminal accounting state of a job."""

    COMPLETED = "COMPLETED"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"
    TIMEOUT = "TIMEOUT"


@dataclass(frozen=True, slots=True)
class JobRecord:
    """One accounting record (times in seconds from window start).

    Attributes
    ----------
    job_id:
        Unique integer id.
    user:
        Opaque user label.
    field:
        Research field of the owning group (the join key to the survey).
    partition:
        Partition the job ran in.
    submit, start, end:
        Submission, start, and end times; ``submit <= start <= end``.
    cores:
        Total cores allocated.
    gpus:
        Total GPUs allocated (0 for CPU jobs).
    state:
        Terminal :class:`JobState`.
    req_walltime:
        Requested walltime in seconds (0.0 when the accounting source did
        not record it); drives the walltime-accuracy analysis.
    """

    job_id: int
    user: str
    field: str
    partition: str
    submit: float
    start: float
    end: float
    cores: int
    gpus: int
    state: JobState
    req_walltime: float = 0.0

    def __post_init__(self) -> None:
        if not (self.submit <= self.start <= self.end):
            raise ValueError(
                f"job {self.job_id}: times out of order "
                f"(submit={self.submit}, start={self.start}, end={self.end})"
            )
        if self.cores < 1:
            raise ValueError(f"job {self.job_id}: cores must be >= 1")
        if self.gpus < 0:
            raise ValueError(f"job {self.job_id}: gpus must be >= 0")
        if self.req_walltime < 0:
            raise ValueError(f"job {self.job_id}: req_walltime must be >= 0")

    @property
    def wait(self) -> float:
        """Queue wait in seconds."""
        return self.start - self.submit

    @property
    def runtime(self) -> float:
        """Execution time in seconds."""
        return self.end - self.start

    @property
    def cpu_hours(self) -> float:
        return self.cores * self.runtime / 3600.0

    @property
    def gpu_hours(self) -> float:
        return self.gpus * self.runtime / 3600.0


class Categorical:
    """Dictionary-encoded string column: ``int32`` codes into a category tuple.

    Canonical form (enforced by :meth:`canonical`) requires the category
    tuple to be sorted and to contain exactly the labels referenced by the
    code array. All block-returning methods preserve canonical form, so a
    block obtained from a :class:`JobTable` can be sliced and merged without
    revalidation.
    """

    __slots__ = ("codes", "categories", "_canonical")

    def __init__(
        self,
        codes: np.ndarray,
        categories: Sequence[str],
        *,
        _trusted_canonical: bool = False,
    ) -> None:
        codes = np.ascontiguousarray(codes, dtype=np.int32)
        codes.setflags(write=False)
        self.codes = codes
        self.categories = tuple(categories)
        self._canonical = bool(_trusted_canonical)

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_values(cls, values: Iterable[str] | np.ndarray) -> "Categorical":
        """Factorize raw string values into canonical codes + categories."""
        arr = np.asarray(values, dtype=object)
        if arr.size == 0:
            return cls(np.empty(0, dtype=np.int32), (), _trusted_canonical=True)
        labels, codes = np.unique(arr.astype(str), return_inverse=True)
        return cls(codes, tuple(labels.tolist()), _trusted_canonical=True)

    # -- basics --------------------------------------------------------------

    def __len__(self) -> int:
        return int(self.codes.size)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Categorical):
            return NotImplemented
        return self.categories == other.categories and np.array_equal(
            self.codes, other.codes
        )

    def __hash__(self) -> int:  # immutable by convention, but arrays inside
        return hash((self.categories, self.codes.tobytes()))

    def __getstate__(self):
        return {"codes": self.codes, "categories": self.categories}

    def __setstate__(self, state) -> None:
        codes = np.ascontiguousarray(state["codes"], dtype=np.int32)
        codes.setflags(write=False)
        self.codes = codes
        self.categories = tuple(state["categories"])
        # Stored tables only ever pickle canonical blocks.
        self._canonical = True

    # -- canonical form ------------------------------------------------------

    def canonical(self) -> "Categorical":
        """Equivalent block with sorted, present-only categories.

        Returns ``self`` when already canonical (the common case for blocks
        produced by this module).
        """
        if self._canonical:
            return self
        cats = self.categories
        ncat = len(cats)
        if self.codes.size:
            lo = int(self.codes.min())
            hi = int(self.codes.max())
            if lo < 0 or hi >= ncat:
                raise ValueError(
                    f"categorical code out of range [0, {ncat}): {lo if lo < 0 else hi}"
                )
            presence = np.bincount(self.codes, minlength=ncat) > 0
        else:
            presence = np.zeros(ncat, dtype=bool)
        present_idx = np.flatnonzero(presence)
        present = [cats[i] for i in present_idx]
        if len(set(present)) != len(present):
            raise ValueError("duplicate labels in category table")
        order = sorted(range(len(present)), key=present.__getitem__)
        new_cats = tuple(present[k] for k in order)
        if new_cats == cats:
            self._canonical = True
            return self
        lut = np.full(ncat, -1, dtype=np.int32)
        for rank, k in enumerate(order):
            lut[present_idx[k]] = rank
        return Categorical(lut[self.codes], new_cats, _trusted_canonical=True)

    # -- transforms ----------------------------------------------------------

    def take(self, indexer: np.ndarray) -> "Categorical":
        """Rows selected by a boolean mask or integer indexer, re-compacted.

        Requires ``self`` canonical; the result is canonical (labels that
        vanish from the selection are dropped from the category table).
        """
        codes = self.codes[indexer]
        ncat = len(self.categories)
        if codes.size == 0:
            return Categorical(codes, (), _trusted_canonical=True)
        presence = np.bincount(codes, minlength=ncat) > 0
        if presence.all():
            return Categorical(codes, self.categories, _trusted_canonical=True)
        lut = (np.cumsum(presence) - 1).astype(np.int32)
        new_cats = tuple(compress(self.categories, presence))
        return Categorical(lut[codes], new_cats, _trusted_canonical=True)

    @classmethod
    def merge(cls, blocks: Sequence["Categorical"]) -> "Categorical":
        """Concatenate canonical blocks, unioning their category tables."""
        blocks = [b.canonical() for b in blocks]
        if not blocks:
            return cls(np.empty(0, dtype=np.int32), (), _trusted_canonical=True)
        first = blocks[0].categories
        if all(b.categories == first for b in blocks):
            codes = np.concatenate([b.codes for b in blocks])
            return cls(codes, first, _trusted_canonical=True)
        merged = sorted(set().union(*(b.categories for b in blocks)))
        index = {label: i for i, label in enumerate(merged)}
        parts = []
        for b in blocks:
            lut = np.array([index[c] for c in b.categories], dtype=np.int32)
            parts.append(lut[b.codes] if b.categories else b.codes)
        return cls(np.concatenate(parts), tuple(merged), _trusted_canonical=True)

    # -- lookups -------------------------------------------------------------

    def code_of(self, label: str) -> int:
        """Code for ``label``, or -1 when absent (categories are sorted)."""
        cats = self.categories
        i = bisect_left(cats, label)
        if i < len(cats) and cats[i] == label:
            return i
        return -1

    def mask_eq(self, label: str) -> np.ndarray:
        """Boolean mask of rows equal to ``label`` (all-False when absent)."""
        code = self.code_of(label)
        if code < 0:
            return np.zeros(self.codes.size, dtype=bool)
        return self.codes == code

    def to_objects(self) -> np.ndarray:
        """Materialize as an object-dtype array of strings."""
        lut = np.array(self.categories, dtype=object)
        if not self.categories:
            return np.empty(self.codes.size, dtype=object)
        return lut[self.codes]

    def counts(self) -> np.ndarray:
        """Occurrences per category (aligned with :attr:`categories`)."""
        return np.bincount(self.codes, minlength=len(self.categories))


def _as_categorical(values) -> Categorical:
    if isinstance(values, Categorical):
        return values.canonical()
    return Categorical.from_values(values)


class JobTable:
    """Columnar container of job records.

    Construct from records via :meth:`from_records` or directly from columns
    (all arrays same length). String columns may be passed either as raw
    string arrays or as :class:`Categorical` blocks; they are stored
    dictionary-encoded either way. Columns are read-only views; filtering
    returns a new table sharing no mutable state.

    Columnar accessors: ``<col>_codes`` / ``<col>_categories`` expose the
    int32 code array and sorted category tuple for each string column
    (``user``, ``field``, ``partition``, ``state``); the plain column name
    (``table.user``, …) lazily materializes an object-dtype string array for
    backward compatibility.
    """

    _FLOAT_COLS = ("submit", "start", "end", "req_walltime")
    _INT_COLS = ("job_id", "cores", "gpus")
    _STR_COLS = ("user", "field", "partition", "state")

    def __init__(
        self,
        job_id: np.ndarray,
        user: np.ndarray | Categorical,
        field: np.ndarray | Categorical,
        partition: np.ndarray | Categorical,
        submit: np.ndarray,
        start: np.ndarray,
        end: np.ndarray,
        cores: np.ndarray,
        gpus: np.ndarray,
        state: np.ndarray | Categorical,
        req_walltime: np.ndarray | None = None,
    ) -> None:
        self.job_id = np.ascontiguousarray(job_id, dtype=np.int64)
        self._user = _as_categorical(user)
        self._field = _as_categorical(field)
        self._partition = _as_categorical(partition)
        self.submit = np.ascontiguousarray(submit, dtype=float)
        self.start = np.ascontiguousarray(start, dtype=float)
        self.end = np.ascontiguousarray(end, dtype=float)
        self.cores = np.ascontiguousarray(cores, dtype=np.int64)
        self.gpus = np.ascontiguousarray(gpus, dtype=np.int64)
        self._state = _as_categorical(state)
        if req_walltime is None:
            req_walltime = np.zeros(self.job_id.size, dtype=float)
        self.req_walltime = np.ascontiguousarray(req_walltime, dtype=float)
        # Lazily-computed derived columns, materializations, and sub-tables.
        # Tables are immutable by convention, so aggregation code can hit
        # the same derived column many times without recomputing it.
        self._cache: dict[object, object] = {}

        n = self.job_id.size
        for name in self._FLOAT_COLS + self._INT_COLS:
            col = getattr(self, name)
            if col.size != n:
                raise ValueError(f"column {name!r} length {col.size} != {n}")
        for name in self._STR_COLS:
            col = getattr(self, "_" + name)
            if len(col) != n:
                raise ValueError(f"column {name!r} length {len(col)} != {n}")
        if n:
            if (self.submit > self.start).any() or (self.start > self.end).any():
                bad = int(np.argmax((self.submit > self.start) | (self.start > self.end)))
                raise ValueError(f"times out of order at row {bad}")
            if (self.cores < 1).any():
                raise ValueError("cores must be >= 1")
            if (self.gpus < 0).any():
                raise ValueError("gpus must be >= 0")
            # Tables straight out of the scheduler arrive sorted by job id;
            # strictly-increasing ids are unique by definition, which makes
            # the common-case uniqueness check a single cheap comparison
            # pass instead of a hash/sort in np.unique.
            ids = self.job_id
            if not (ids[1:] > ids[:-1]).all() and np.unique(ids).size != n:
                raise ValueError("duplicate job ids")

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_records(cls, records: Iterable[JobRecord]) -> "JobTable":
        records = list(records)
        return cls(
            job_id=np.array([r.job_id for r in records], dtype=np.int64),
            user=np.array([r.user for r in records], dtype=object),
            field=np.array([r.field for r in records], dtype=object),
            partition=np.array([r.partition for r in records], dtype=object),
            submit=np.array([r.submit for r in records], dtype=float),
            start=np.array([r.start for r in records], dtype=float),
            end=np.array([r.end for r in records], dtype=float),
            cores=np.array([r.cores for r in records], dtype=np.int64),
            gpus=np.array([r.gpus for r in records], dtype=np.int64),
            state=np.array([r.state.value for r in records], dtype=object),
            req_walltime=np.array([r.req_walltime for r in records], dtype=float),
        )

    @classmethod
    def empty(cls) -> "JobTable":
        return cls.from_records([])

    # -- pickling -------------------------------------------------------------

    def __getstate__(self):
        # Drop derived/materialized caches: the pickled form is the canonical
        # columnar payload, so two value-equal tables pickle byte-identically
        # regardless of which derived columns were touched.
        return {k: v for k, v in self.__dict__.items() if k != "_cache"}

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._cache = {}

    # -- basics ---------------------------------------------------------------

    def __len__(self) -> int:
        return int(self.job_id.size)

    def __iter__(self) -> Iterator[JobRecord]:
        for i in range(len(self)):
            yield self.record(i)

    def record(self, i: int) -> JobRecord:
        """Materialize row ``i`` as a :class:`JobRecord`."""
        return JobRecord(
            job_id=int(self.job_id[i]),
            user=self._user.categories[self._user.codes[i]],
            field=self._field.categories[self._field.codes[i]],
            partition=self._partition.categories[self._partition.codes[i]],
            submit=float(self.submit[i]),
            start=float(self.start[i]),
            end=float(self.end[i]),
            cores=int(self.cores[i]),
            gpus=int(self.gpus[i]),
            state=JobState(self._state.categories[self._state.codes[i]]),
            req_walltime=float(self.req_walltime[i]),
        )

    # -- columnar accessors ----------------------------------------------------

    def cat(self, column: str) -> Categorical:
        """The :class:`Categorical` block backing a string column."""
        if column not in self._STR_COLS:
            raise ValueError(f"expected one of {self._STR_COLS}, got {column!r}")
        return getattr(self, "_" + column)

    def _objects(self, column: str) -> np.ndarray:
        key = ("objects", column)
        out = self._cache.get(key)
        if out is None:
            out = self.cat(column).to_objects()
            out.setflags(write=False)
            self._cache[key] = out
        return out

    @property
    def user(self) -> np.ndarray:
        """User labels as an object array (lazily materialized, cached)."""
        return self._objects("user")

    @property
    def field(self) -> np.ndarray:
        return self._objects("field")

    @property
    def partition(self) -> np.ndarray:
        return self._objects("partition")

    @property
    def state(self) -> np.ndarray:
        return self._objects("state")

    @property
    def user_codes(self) -> np.ndarray:
        return self._user.codes

    @property
    def user_categories(self) -> tuple[str, ...]:
        return self._user.categories

    @property
    def field_codes(self) -> np.ndarray:
        return self._field.codes

    @property
    def field_categories(self) -> tuple[str, ...]:
        return self._field.categories

    @property
    def partition_codes(self) -> np.ndarray:
        return self._partition.codes

    @property
    def partition_categories(self) -> tuple[str, ...]:
        return self._partition.categories

    @property
    def state_codes(self) -> np.ndarray:
        return self._state.codes

    @property
    def state_categories(self) -> tuple[str, ...]:
        return self._state.categories

    # -- derived columns --------------------------------------------------------

    def _derived(self, name: str, compute) -> np.ndarray:
        out = self._cache.get(name)
        if out is None:
            out = compute()
            # Read-only: cached arrays are shared across every caller.
            out.setflags(write=False)
            self._cache[name] = out
        return out

    @property
    def wait(self) -> np.ndarray:
        """Queue waits in seconds (vectorized, cached)."""
        return self._derived("wait", lambda: self.start - self.submit)

    @property
    def runtime(self) -> np.ndarray:
        return self._derived("runtime", lambda: self.end - self.start)

    @property
    def cpu_hours(self) -> np.ndarray:
        return self._derived("cpu_hours", lambda: self.cores * self.runtime / 3600.0)

    @property
    def gpu_hours(self) -> np.ndarray:
        return self._derived("gpu_hours", lambda: self.gpus * self.runtime / 3600.0)

    def factorize(self, column: str) -> tuple[np.ndarray, list[str]]:
        """Integer codes plus sorted unique labels for a string column.

        With dictionary-encoded columns this is a zero-copy read of the
        stored block: the canonical-form invariant guarantees the category
        table is exactly the sorted distinct labels present.
        """
        block = self.cat(column)
        return block.codes, list(block.categories)

    # -- filtering ---------------------------------------------------------------

    def mask(self, m: np.ndarray) -> "JobTable":
        """New table with rows where boolean mask ``m`` is True."""
        m = np.asarray(m, dtype=bool)
        if m.shape != (len(self),):
            raise ValueError(f"mask shape {m.shape} != ({len(self)},)")
        return JobTable(
            job_id=self.job_id[m],
            user=self._user.take(m),
            field=self._field.take(m),
            partition=self._partition.take(m),
            submit=self.submit[m],
            start=self.start[m],
            end=self.end[m],
            cores=self.cores[m],
            gpus=self.gpus[m],
            state=self._state.take(m),
            req_walltime=self.req_walltime[m],
        )

    def by_partition(self, name: str) -> "JobTable":
        """Sub-table of one partition (cached: analyses slice per partition
        over and over; treat the result as read-only)."""
        cached = self._cache.get(("by_partition", name))
        if cached is None:
            cached = self.mask(self._partition.mask_eq(name))
            self._cache[("by_partition", name)] = cached
        return cached

    def by_field(self, name: str) -> "JobTable":
        return self.mask(self._field.mask_eq(name))

    def gpu_jobs(self) -> "JobTable":
        return self.mask(self.gpus > 0)

    def completed(self) -> "JobTable":
        return self.mask(self._state.mask_eq(JobState.COMPLETED.value))

    def state_mask(self, state: "JobState | str") -> np.ndarray:
        """Boolean mask of rows in a terminal state (code comparison)."""
        label = state.value if isinstance(state, JobState) else state
        return self._state.mask_eq(label)

    def partitions(self) -> tuple[str, ...]:
        """Distinct partition names, sorted (the stored category table)."""
        return self._partition.categories

    def fields(self) -> tuple[str, ...]:
        return self._field.categories

    def concat(self, other: "JobTable") -> "JobTable":
        """Row-wise concatenation (job ids must stay unique)."""
        return JobTable(
            job_id=np.concatenate([self.job_id, other.job_id]),
            user=Categorical.merge([self._user, other._user]),
            field=Categorical.merge([self._field, other._field]),
            partition=Categorical.merge([self._partition, other._partition]),
            submit=np.concatenate([self.submit, other.submit]),
            start=np.concatenate([self.start, other.start]),
            end=np.concatenate([self.end, other.end]),
            cores=np.concatenate([self.cores, other.cores]),
            gpus=np.concatenate([self.gpus, other.gpus]),
            state=Categorical.merge([self._state, other._state]),
            req_walltime=np.concatenate([self.req_walltime, other.req_walltime]),
        )
