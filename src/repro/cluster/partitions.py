"""Cluster capacity model: partitions of homogeneous nodes."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Partition", "ClusterConfig", "DEFAULT_CLUSTER"]


@dataclass(frozen=True, slots=True)
class Partition:
    """A scheduling partition of identical nodes.

    Attributes
    ----------
    name:
        Partition label ("cpu", "gpu", "bigmem", "serial").
    nodes:
        Node count.
    cores_per_node:
        Cores per node.
    gpus_per_node:
        GPUs per node (0 for CPU partitions).
    max_walltime:
        Longest requestable walltime in seconds.
    """

    name: str
    nodes: int
    cores_per_node: int
    gpus_per_node: int = 0
    max_walltime: float = 72 * 3600.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("partition name is empty")
        if self.nodes < 1:
            raise ValueError(f"partition {self.name!r}: nodes must be >= 1")
        if self.cores_per_node < 1:
            raise ValueError(f"partition {self.name!r}: cores_per_node must be >= 1")
        if self.gpus_per_node < 0:
            raise ValueError(f"partition {self.name!r}: gpus_per_node must be >= 0")
        if self.max_walltime <= 0:
            raise ValueError(f"partition {self.name!r}: max_walltime must be positive")

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node

    @property
    def total_gpus(self) -> int:
        return self.nodes * self.gpus_per_node

    def fits(self, cores: int, gpus: int) -> bool:
        """Whether a request can ever run on this partition."""
        return 1 <= cores <= self.total_cores and 0 <= gpus <= self.total_gpus


class ClusterConfig:
    """A named cluster: a set of partitions with unique names."""

    def __init__(self, name: str, partitions: tuple[Partition, ...] | list[Partition]) -> None:
        if not name:
            raise ValueError("cluster name is empty")
        partitions = tuple(partitions)
        if not partitions:
            raise ValueError("cluster has no partitions")
        names = [p.name for p in partitions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate partition names: {names}")
        self.name = name
        self.partitions = partitions
        self._by_name = {p.name: p for p in partitions}

    def __getitem__(self, name: str) -> Partition:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no partition {name!r} in cluster {self.name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self):
        return iter(self.partitions)

    @property
    def partition_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.partitions)

    @property
    def total_cores(self) -> int:
        return sum(p.total_cores for p in self.partitions)

    @property
    def total_gpus(self) -> int:
        return sum(p.total_gpus for p in self.partitions)


# A campus-scale default roughly shaped like a mid-size university system:
# a large CPU partition, a contended GPU partition, a serial/shared partition
# for small jobs, and a small big-memory partition.
DEFAULT_CLUSTER = ClusterConfig(
    "campus",
    (
        Partition("cpu", nodes=160, cores_per_node=64),
        Partition("gpu", nodes=24, cores_per_node=48, gpus_per_node=4, max_walltime=48 * 3600.0),
        Partition("serial", nodes=16, cores_per_node=96, max_walltime=24 * 3600.0),
        Partition("bigmem", nodes=8, cores_per_node=96, max_walltime=96 * 3600.0),
    ),
)
