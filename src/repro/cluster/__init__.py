"""HPC cluster telemetry substrate.

The paper's telemetry analyses run on production Slurm accounting data,
which is private. This package provides the full substitute pipeline:

* :mod:`repro.cluster.records` — job records and :class:`JobTable`, a
  columnar (struct-of-arrays) container for vectorized aggregation;
* :mod:`repro.cluster.partitions` — cluster/partition capacity model;
* :mod:`repro.cluster.workload` — synthetic workload generator with
  per-field job mixes and a growing GPU arrival rate;
* :mod:`repro.cluster.scheduler` — FCFS + EASY-backfill scheduler simulator
  that turns submissions into started/completed records with realistic
  queue-wait structure;
* :mod:`repro.cluster.sacct` — reader/writer for a ``sacct``-style
  pipe-delimited accounting format so real exports can be ingested;
* :mod:`repro.cluster.usage` — usage aggregation (CPU/GPU-hours, job-width
  distribution, wait-time stats, utilization, user concentration).

Time is measured in seconds from the study-window start; the usage module
buckets months as 30.4375 days (``MONTH_SECONDS``).
"""

from repro.cluster.records import JobRecord, JobState, JobTable
from repro.cluster.partitions import ClusterConfig, Partition
from repro.cluster.workload import SubmittedJob, WorkloadModel, WorkloadParams
from repro.cluster.scheduler import SchedulerResult, simulate_schedule
from repro.cluster.sacct import parse_sacct, write_sacct
from repro.cluster.health import (
    WasteSummary,
    failure_bursts,
    failure_rates_by,
    waste_summary,
)
from repro.cluster.audit import (
    AuditIssue,
    AuditIssueKind,
    AuditReport,
    audit_table,
)
from repro.cluster.capacity import (
    CapacityOutlook,
    gpu_capacity_outlook,
    months_to_saturation,
)
from repro.cluster.replay import (
    ScenarioOutcome,
    compare_what_if,
    scaled_partition,
)
from repro.cluster.usage import (
    MONTH_SECONDS,
    arrival_profile,
    cpu_hours_by_field_month,
    interarrival_stats,
    monthly_wait_and_load,
    walltime_accuracy,
    gpu_hours_monthly,
    job_width_distribution,
    monthly_growth_rate,
    runtime_distribution_by_field,
    user_concentration,
    utilization_by_partition,
    wait_stats_by_partition,
)

__all__ = [
    "JobRecord",
    "JobState",
    "JobTable",
    "Partition",
    "ClusterConfig",
    "WorkloadParams",
    "WorkloadModel",
    "SubmittedJob",
    "simulate_schedule",
    "SchedulerResult",
    "parse_sacct",
    "write_sacct",
    "MONTH_SECONDS",
    "cpu_hours_by_field_month",
    "gpu_hours_monthly",
    "job_width_distribution",
    "wait_stats_by_partition",
    "runtime_distribution_by_field",
    "utilization_by_partition",
    "user_concentration",
    "monthly_growth_rate",
    "arrival_profile",
    "walltime_accuracy",
    "monthly_wait_and_load",
    "interarrival_stats",
    "WasteSummary",
    "waste_summary",
    "failure_rates_by",
    "failure_bursts",
    "AuditIssue",
    "AuditIssueKind",
    "AuditReport",
    "audit_table",
    "CapacityOutlook",
    "months_to_saturation",
    "gpu_capacity_outlook",
    "ScenarioOutcome",
    "scaled_partition",
    "compare_what_if",
]
