"""Accounting-data audit: sanity checks before analysis.

Real ``sacct`` exports arrive with warts — jobs on partitions the capacity
model doesn't know, allocations exceeding any node, walltime overruns.
:func:`audit_table` surfaces them so ingest pipelines fail loudly instead of
producing quietly-wrong utilization numbers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.cluster.partitions import ClusterConfig
from repro.cluster.records import JobTable

__all__ = ["AuditIssueKind", "AuditIssue", "AuditReport", "audit_table"]


class AuditIssueKind(enum.Enum):
    UNKNOWN_PARTITION = "unknown_partition"
    OVERSIZED_ALLOCATION = "oversized_allocation"
    WALLTIME_OVERRUN = "walltime_overrun"
    GPU_ON_CPU_PARTITION = "gpu_on_cpu_partition"
    IMPLAUSIBLE_RUNTIME = "implausible_runtime"


@dataclass(frozen=True, slots=True)
class AuditIssue:
    """One problem with one job record."""

    job_id: int
    kind: AuditIssueKind
    message: str


@dataclass(frozen=True)
class AuditReport:
    """All audit findings for a table."""

    issues: tuple[AuditIssue, ...]
    n_jobs: int

    @property
    def ok(self) -> bool:
        return not self.issues

    def of_kind(self, kind: AuditIssueKind) -> tuple[AuditIssue, ...]:
        return tuple(i for i in self.issues if i.kind == kind)

    def summary(self) -> dict[str, int]:
        """Issue counts by kind (only kinds that occurred)."""
        out: dict[str, int] = {}
        for issue in self.issues:
            out[issue.kind.value] = out.get(issue.kind.value, 0) + 1
        return out


def audit_table(
    table: JobTable,
    cluster: ClusterConfig,
    max_reasonable_runtime: float = 30 * 86400.0,
    walltime_slack: float = 60.0,
) -> AuditReport:
    """Audit a job table against a capacity model.

    Parameters
    ----------
    max_reasonable_runtime:
        Runtimes above this are flagged as implausible (clock skew or
        parser damage in real exports).
    walltime_slack:
        Grace (seconds) before an end-past-limit counts as an overrun
        (schedulers grant a grace period on kill).
    """
    issues: list[AuditIssue] = []
    runtime = table.runtime
    for i in range(len(table)):
        job_id = int(table.job_id[i])
        partition_name = str(table.partition[i])
        cores = int(table.cores[i])
        gpus = int(table.gpus[i])

        if partition_name not in cluster:
            issues.append(
                AuditIssue(
                    job_id,
                    AuditIssueKind.UNKNOWN_PARTITION,
                    f"partition {partition_name!r} not in cluster {cluster.name!r}",
                )
            )
            continue  # capacity checks below need a known partition
        partition = cluster[partition_name]
        if not partition.fits(cores, gpus):
            issues.append(
                AuditIssue(
                    job_id,
                    AuditIssueKind.OVERSIZED_ALLOCATION,
                    f"({cores} cores, {gpus} gpus) exceeds partition "
                    f"{partition_name!r} capacity",
                )
            )
        if gpus > 0 and partition.gpus_per_node == 0:
            issues.append(
                AuditIssue(
                    job_id,
                    AuditIssueKind.GPU_ON_CPU_PARTITION,
                    f"{gpus} gpus recorded on gpu-less partition {partition_name!r}",
                )
            )
        limit = float(table.req_walltime[i])
        if limit > 0 and runtime[i] > limit + walltime_slack:
            issues.append(
                AuditIssue(
                    job_id,
                    AuditIssueKind.WALLTIME_OVERRUN,
                    f"ran {runtime[i]:.0f}s against a {limit:.0f}s limit",
                )
            )
        if runtime[i] > max_reasonable_runtime:
            issues.append(
                AuditIssue(
                    job_id,
                    AuditIssueKind.IMPLAUSIBLE_RUNTIME,
                    f"runtime {runtime[i] / 86400.0:.1f} days",
                )
            )
    return AuditReport(issues=tuple(issues), n_jobs=len(table))
