"""Accounting-data audit: sanity checks before analysis.

Real ``sacct`` exports arrive with warts — jobs on partitions the capacity
model doesn't know, allocations exceeding any node, walltime overruns.
:func:`audit_table` surfaces them so ingest pipelines fail loudly instead of
producing quietly-wrong utilization numbers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.cluster.partitions import ClusterConfig
from repro.cluster.records import JobTable

__all__ = ["AuditIssueKind", "AuditIssue", "AuditReport", "audit_table"]


class AuditIssueKind(enum.Enum):
    UNKNOWN_PARTITION = "unknown_partition"
    OVERSIZED_ALLOCATION = "oversized_allocation"
    WALLTIME_OVERRUN = "walltime_overrun"
    GPU_ON_CPU_PARTITION = "gpu_on_cpu_partition"
    IMPLAUSIBLE_RUNTIME = "implausible_runtime"


@dataclass(frozen=True, slots=True)
class AuditIssue:
    """One problem with one job record."""

    job_id: int
    kind: AuditIssueKind
    message: str


@dataclass(frozen=True)
class AuditReport:
    """All audit findings for a table."""

    issues: tuple[AuditIssue, ...]
    n_jobs: int

    @property
    def ok(self) -> bool:
        return not self.issues

    def of_kind(self, kind: AuditIssueKind) -> tuple[AuditIssue, ...]:
        return tuple(i for i in self.issues if i.kind == kind)

    def summary(self) -> dict[str, int]:
        """Issue counts by kind (only kinds that occurred)."""
        out: dict[str, int] = {}
        for issue in self.issues:
            out[issue.kind.value] = out.get(issue.kind.value, 0) + 1
        return out


def audit_table(
    table: JobTable,
    cluster: ClusterConfig,
    max_reasonable_runtime: float = 30 * 86400.0,
    walltime_slack: float = 60.0,
) -> AuditReport:
    """Audit a job table against a capacity model.

    Parameters
    ----------
    max_reasonable_runtime:
        Runtimes above this are flagged as implausible (clock skew or
        parser damage in real exports).
    walltime_slack:
        Grace (seconds) before an end-past-limit counts as an overrun
        (schedulers grant a grace period on kill).
    """
    # Flags are computed columnar — one vectorized pass over the dictionary
    # codes instead of a Python loop over every row — and issue objects are
    # only materialized for the (normally rare) flagged rows. Per-category
    # capacity lookups happen once per partition label, not once per job.
    runtime = table.runtime
    block = table.cat("partition")
    codes = block.codes
    cats = block.categories
    known = np.array([name in cluster for name in cats], dtype=bool)
    cap_cores = np.array(
        [cluster[name].total_cores if ok else 0 for name, ok in zip(cats, known)],
        dtype=np.int64,
    )
    cap_gpus = np.array(
        [cluster[name].total_gpus if ok else 0 for name, ok in zip(cats, known)],
        dtype=np.int64,
    )
    gpuless = np.array(
        [ok and cluster[name].gpus_per_node == 0 for name, ok in zip(cats, known)],
        dtype=bool,
    )

    cores = table.cores
    gpus = table.gpus
    limit = table.req_walltime
    unknown = ~known[codes]
    ok_rows = ~unknown  # capacity checks need a known partition
    oversized = ok_rows & ~(
        (cores >= 1) & (cores <= cap_cores[codes]) & (gpus >= 0) & (gpus <= cap_gpus[codes])
    )
    gpu_on_cpu = ok_rows & (gpus > 0) & gpuless[codes]
    overrun = ok_rows & (limit > 0) & (runtime > limit + walltime_slack)
    implausible = ok_rows & (runtime > max_reasonable_runtime)

    issues: list[AuditIssue] = []
    flagged = unknown | oversized | gpu_on_cpu | overrun | implausible
    for i in np.flatnonzero(flagged):
        job_id = int(table.job_id[i])
        partition_name = cats[codes[i]]
        if unknown[i]:
            issues.append(
                AuditIssue(
                    job_id,
                    AuditIssueKind.UNKNOWN_PARTITION,
                    f"partition {partition_name!r} not in cluster {cluster.name!r}",
                )
            )
            continue
        if oversized[i]:
            issues.append(
                AuditIssue(
                    job_id,
                    AuditIssueKind.OVERSIZED_ALLOCATION,
                    f"({int(cores[i])} cores, {int(gpus[i])} gpus) exceeds partition "
                    f"{partition_name!r} capacity",
                )
            )
        if gpu_on_cpu[i]:
            issues.append(
                AuditIssue(
                    job_id,
                    AuditIssueKind.GPU_ON_CPU_PARTITION,
                    f"{int(gpus[i])} gpus recorded on gpu-less partition "
                    f"{partition_name!r}",
                )
            )
        if overrun[i]:
            issues.append(
                AuditIssue(
                    job_id,
                    AuditIssueKind.WALLTIME_OVERRUN,
                    f"ran {runtime[i]:.0f}s against a {float(limit[i]):.0f}s limit",
                )
            )
        if implausible[i]:
            issues.append(
                AuditIssue(
                    job_id,
                    AuditIssueKind.IMPLAUSIBLE_RUNTIME,
                    f"runtime {runtime[i] / 86400.0:.1f} days",
                )
            )
    return AuditReport(issues=tuple(issues), n_jobs=len(table))
