"""Per-question response models.

Each model maps a :class:`RespondentContext` (field, stage, latent traits)
plus the answers given so far to a concrete answer value. Models are small
declarative objects so a cohort profile reads like a codebook with numbers.

The trait link is logistic: a model's ``base`` probability is shifted on the
log-odds scale by ``sum(loading[t] * (trait[t] - 0.5))``, so a loading of 4
moves a respondent at trait 1.0 two logits above the cohort base.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.synth.traits import TRAIT_NAMES

__all__ = [
    "RespondentContext",
    "ResponseModel",
    "CategoricalModel",
    "BernoulliYesNoModel",
    "MultiChoiceModel",
    "DerivedMultiChoiceModel",
    "LikertModel",
    "NumericModel",
    "FreeTextModel",
]


@dataclass(frozen=True, slots=True)
class RespondentContext:
    """Latent description of one synthetic respondent.

    ``centers`` holds the cohort-level trait means; loadings act on
    ``trait - center`` so a model's ``base`` probability *is* the cohort
    marginal (up to averaging convexity), which makes profiles directly
    calibratable against reference marginals. When ``centers`` is absent,
    shifts fall back to centering at 0.5.
    """

    field_name: str
    career_stage: str
    traits: Mapping[str, float]
    cohort: str
    centers: Mapping[str, float] | None = None

    def trait(self, name: str) -> float:
        try:
            return float(self.traits[name])
        except KeyError:
            raise KeyError(f"unknown trait {name!r}") from None

    def centered_trait(self, name: str) -> float:
        """Trait value minus its cohort center (default center 0.5)."""
        center = 0.5 if self.centers is None else self.centers.get(name, 0.5)
        return self.trait(name) - center


def _validate_loadings(loadings: Mapping[str, float]) -> None:
    unknown = set(loadings) - set(TRAIT_NAMES)
    if unknown:
        raise ValueError(f"unknown trait names in loadings: {sorted(unknown)}")


def _logit(p: float) -> float:
    p = min(max(p, 1e-9), 1.0 - 1e-9)
    return math.log(p / (1.0 - p))


def _sigmoid(x: float) -> float:
    if x >= 0:
        return 1.0 / (1.0 + math.exp(-x))
    e = math.exp(x)
    return e / (1.0 + e)


def _shift(ctx: RespondentContext, loadings: Mapping[str, float]) -> float:
    return sum(w * ctx.centered_trait(t) for t, w in loadings.items())


class ResponseModel:
    """Interface: sample an answer value for one respondent."""

    def sample(
        self,
        ctx: RespondentContext,
        answers: Mapping[str, object],
        rng: np.random.Generator,
    ):  # pragma: no cover - interface
        raise NotImplementedError


@dataclass(frozen=True)
class CategoricalModel(ResponseModel):
    """Single-choice answer from trait-modulated softmax weights.

    Parameters
    ----------
    base_probs:
        Mapping option -> base probability (normalized internally).
    loadings:
        Optional mapping option -> {trait: weight} shifting that option's
        log-weight.
    """

    base_probs: Mapping[str, float]
    loadings: Mapping[str, Mapping[str, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.base_probs:
            raise ValueError("base_probs is empty")
        if any(p < 0 for p in self.base_probs.values()):
            raise ValueError("base probabilities must be non-negative")
        if sum(self.base_probs.values()) <= 0:
            raise ValueError("base probabilities sum to zero")
        unknown = set(self.loadings) - set(self.base_probs)
        if unknown:
            raise ValueError(f"loadings for unknown options: {sorted(unknown)}")
        for option_loadings in self.loadings.values():
            _validate_loadings(option_loadings)

    # Per-option log base weights and loading items, resolved once per model
    # (frozen dataclasses without slots cache via the instance __dict__).
    @cached_property
    def _plan(self) -> tuple[tuple[str, float, tuple], ...]:
        return tuple(
            (
                option,
                math.log(p) if p > 0 else -30.0,
                tuple(self.loadings.get(option, {}).items()),
            )
            for option, p in self.base_probs.items()
        )

    # Loading-free models have one fixed distribution: cache the option list
    # and cumulative probabilities so sampling skips the softmax entirely.
    @cached_property
    def _static(self) -> tuple[list[str], np.ndarray] | None:
        if self.loadings:
            return None
        probs = self._softmax(self._plan, None)
        cdf = np.array(list(probs.values()), dtype=float).cumsum()
        cdf /= cdf[-1]
        return list(probs), cdf

    @staticmethod
    def _softmax(plan, ctx) -> dict[str, float]:
        logw = {}
        for option, base, items in plan:
            # Accumulate the shift separately, then add to the base: the
            # float op order must match ``base + sum(...)`` exactly.
            s = 0
            for trait, weight in items:
                s += weight * ctx.centered_trait(trait)
            logw[option] = base + s
        peak = max(logw.values())
        weights = {o: math.exp(w - peak) for o, w in logw.items()}
        total = sum(weights.values())
        return {o: w / total for o, w in weights.items()}

    def probabilities(self, ctx: RespondentContext) -> dict[str, float]:
        """Trait-conditioned option probabilities for one respondent."""
        return self._softmax(self._plan, ctx)

    def sample(self, ctx, answers, rng):
        # ``Generator.choice(n, p=p)`` consumes exactly one uniform double
        # and resolves it as ``cdf.searchsorted(u, side="right")`` with
        # ``cdf = p.cumsum(); cdf /= cdf[-1]`` — replicating that directly
        # keeps the bit stream and the drawn index identical while skipping
        # choice's per-call probability validation.
        static = self._static
        if static is not None:
            options, cdf = static
            return options[cdf.searchsorted(rng.random(), side="right")]
        probs = self.probabilities(ctx)
        options = list(probs)
        cdf = np.array(list(probs.values()), dtype=float).cumsum()
        cdf /= cdf[-1]
        return options[cdf.searchsorted(rng.random(), side="right")]


@dataclass(frozen=True)
class BernoulliYesNoModel(ResponseModel):
    """Yes/no answer with a logistic trait link.

    ``base`` is the cohort-level "yes" probability at trait midpoints.
    """

    base: float
    loadings: Mapping[str, float] = field(default_factory=dict)
    yes: str = "yes"
    no: str = "no"

    def __post_init__(self) -> None:
        if not 0.0 <= self.base <= 1.0:
            raise ValueError(f"base probability out of [0,1]: {self.base}")
        _validate_loadings(self.loadings)

    @cached_property
    def _base_logit(self) -> float:
        return _logit(self.base)

    @cached_property
    def _loading_items(self) -> tuple:
        return tuple(self.loadings.items())

    def probability(self, ctx: RespondentContext) -> float:
        items = self._loading_items
        if not items:
            return _sigmoid(self._base_logit)
        s = 0
        for trait, weight in items:
            s += weight * ctx.centered_trait(trait)
        return _sigmoid(self._base_logit + s)

    def sample(self, ctx, answers, rng):
        return self.yes if rng.random() < self.probability(ctx) else self.no


@dataclass(frozen=True)
class MultiChoiceModel(ResponseModel):
    """Multi-select: each option is an independent trait-linked Bernoulli."""

    option_probs: Mapping[str, float]
    loadings: Mapping[str, Mapping[str, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.option_probs:
            raise ValueError("option_probs is empty")
        for option, p in self.option_probs.items():
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"probability for {option!r} out of [0,1]: {p}")
        unknown = set(self.loadings) - set(self.option_probs)
        if unknown:
            raise ValueError(f"loadings for unknown options: {sorted(unknown)}")
        for option_loadings in self.loadings.values():
            _validate_loadings(option_loadings)

    @cached_property
    def _plan(self) -> tuple[tuple[str, float, tuple], ...]:
        return tuple(
            (option, _logit(p), tuple(self.loadings.get(option, {}).items()))
            for option, p in self.option_probs.items()
        )

    # With no loadings the per-option probabilities never vary: cache the
    # (option, probability) pairs so sampling is draw-and-compare only.
    @cached_property
    def _static(self) -> tuple[tuple[str, float], ...] | None:
        if self.loadings:
            return None
        return tuple((option, _sigmoid(base)) for option, base, _ in self._plan)

    def probabilities(self, ctx: RespondentContext) -> dict[str, float]:
        static = self._static
        if static is not None:
            return dict(static)
        out = {}
        for option, base, items in self._plan:
            s = 0
            for trait, weight in items:
                s += weight * ctx.centered_trait(trait)
            out[option] = _sigmoid(base + s)
        return out

    def sample(self, ctx, answers, rng):
        static = self._static
        if static is not None:
            draws = rng.random(len(static))
            return [o for (o, p), u in zip(static, draws) if u < p]
        probs = self.probabilities(ctx)
        draws = rng.random(len(probs))
        return [o for (o, p), u in zip(probs.items(), draws) if u < p]


@dataclass(frozen=True)
class DerivedMultiChoiceModel(ResponseModel):
    """Multi-select whose probabilities also depend on earlier answers.

    ``adjust`` receives the per-option probabilities and the answers-so-far
    and returns (possibly modified) probabilities — used e.g. to force the
    "gpu" parallel mode toward respondents who answered ``uses_gpu=yes``.
    """

    inner: MultiChoiceModel
    adjust: Callable[[dict[str, float], Mapping[str, object]], dict[str, float]] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.adjust is None:
            raise ValueError("adjust callable is required")

    def sample(self, ctx, answers, rng):
        probs = self.inner.probabilities(ctx)
        probs = self.adjust(dict(probs), answers)
        for option, p in probs.items():
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"adjusted probability for {option!r} out of [0,1]")
        draws = rng.random(len(probs))
        return [o for (o, p), u in zip(probs.items(), draws) if u < p]


@dataclass(frozen=True)
class LikertModel(ResponseModel):
    """Likert answer: discretized, clipped normal around a trait-linked mean."""

    points: int
    base_mean: float
    loadings: Mapping[str, float] = field(default_factory=dict)
    sd: float = 1.0

    def __post_init__(self) -> None:
        if self.points < 2:
            raise ValueError("points must be >= 2")
        if not 1.0 <= self.base_mean <= self.points:
            raise ValueError(f"base_mean {self.base_mean} outside [1, {self.points}]")
        if self.sd <= 0:
            raise ValueError("sd must be positive")
        _validate_loadings(self.loadings)

    @cached_property
    def _loading_items(self) -> tuple:
        return tuple(self.loadings.items())

    def mean(self, ctx: RespondentContext) -> float:
        items = self._loading_items
        if not items:
            raw = self.base_mean
        else:
            s = 0
            for trait, weight in items:
                s += weight * ctx.centered_trait(trait)
            raw = self.base_mean + s
        # Scalar clip: bitwise-identical to np.clip for finite floats,
        # without the array round trip.
        if raw < 1.0:
            return 1.0
        points = self.points
        return float(points) if raw > points else raw

    def sample(self, ctx, answers, rng):
        value = round(rng.normal(self.mean(ctx), self.sd))
        points = self.points
        return 1 if value < 1 else (points if value > points else value)


@dataclass(frozen=True)
class NumericModel(ResponseModel):
    """Numeric answer from a trait-scaled lognormal, clipped to a range."""

    log_mean: float
    log_sd: float
    minimum: float
    maximum: float
    loadings: Mapping[str, float] = field(default_factory=dict)
    integer: bool = True

    def __post_init__(self) -> None:
        if self.log_sd <= 0:
            raise ValueError("log_sd must be positive")
        if self.minimum > self.maximum:
            raise ValueError("minimum > maximum")
        _validate_loadings(self.loadings)

    @cached_property
    def _loading_items(self) -> tuple:
        return tuple(self.loadings.items())

    def sample(self, ctx, answers, rng):
        items = self._loading_items
        if not items:
            mu = self.log_mean
        else:
            s = 0
            for trait, weight in items:
                s += weight * ctx.centered_trait(trait)
            mu = self.log_mean + s
        value = rng.lognormal(mu, self.log_sd)
        # Scalar clip (bitwise-identical to np.clip for finite floats).
        if value < self.minimum:
            value = self.minimum
        elif value > self.maximum:
            value = self.maximum
        value = float(value)
        return int(round(value)) if self.integer else value


@dataclass(frozen=True)
class FreeTextModel(ResponseModel):
    """Free-text answer delegated to a template generator.

    ``generate`` receives the context, answers so far, and the rng.
    """

    generate: Callable[[RespondentContext, Mapping[str, object], np.random.Generator], str]

    def sample(self, ctx, answers, rng):
        text = self.generate(ctx, answers, rng)
        if not isinstance(text, str):
            raise TypeError("free-text generator must return str")
        return text
