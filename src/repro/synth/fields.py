"""Field-of-research taxonomy.

The taxonomy follows the predecessor study's breakdown of computational
researchers on a university campus. Each field carries *trait modifiers*:
additive shifts applied to the cohort's base latent-trait means, encoding
durable facts like "astronomers were already heavy cluster users in 2011"
and "social scientists adopted ML later but fast".
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FieldInfo", "FIELDS", "field_names", "CAREER_STAGES"]


@dataclass(frozen=True, slots=True)
class FieldInfo:
    """One research field with population share and trait modifiers.

    Attributes
    ----------
    name:
        Short label used as the survey answer.
    share:
        Population share among campus computational researchers (sums to 1
        across :data:`FIELDS`); also the sampling weight for synthesis and
        the post-stratification target for weighting.
    trait_shift:
        Additive shifts to latent trait means, keyed by trait name
        (missing keys mean no shift).
    """

    name: str
    share: float
    trait_shift: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("field name is empty")
        if not 0.0 < self.share <= 1.0:
            raise ValueError(f"field {self.name!r} share out of (0, 1]: {self.share}")


# Shifts are kept approximately share-weighted zero-mean per trait so that a
# cohort profile's base rates remain the cohort marginals; a test pins this.
FIELDS: tuple[FieldInfo, ...] = (
    FieldInfo(
        "astrophysics",
        0.10,
        {"hpc": 0.20, "programming": 0.15, "ml": 0.00},
    ),
    FieldInfo(
        "physics",
        0.12,
        {"hpc": 0.15, "programming": 0.10, "ml": -0.05},
    ),
    FieldInfo(
        "chemistry",
        0.11,
        {"hpc": 0.10, "programming": -0.05, "ml": -0.05},
    ),
    FieldInfo(
        "biology",
        0.16,
        {"hpc": -0.10, "programming": -0.10, "ml": 0.00},
    ),
    FieldInfo(
        "neuroscience",
        0.08,
        {"ml": 0.10, "programming": 0.00},
    ),
    FieldInfo(
        "engineering",
        0.15,
        {"hpc": 0.05, "programming": 0.10, "ml": 0.05},
    ),
    FieldInfo(
        "earth_sciences",
        0.07,
        {"hpc": 0.10, "programming": -0.05, "ml": -0.10},
    ),
    FieldInfo(
        "economics",
        0.06,
        {"hpc": -0.20, "programming": -0.05, "ml": -0.05, "rigor": -0.05},
    ),
    FieldInfo(
        "social_sciences",
        0.07,
        {"hpc": -0.25, "programming": -0.15, "ml": 0.05},
    ),
    FieldInfo(
        "mathematics",
        0.05,
        {"programming": 0.05, "hpc": -0.05, "ml": -0.10},
    ),
    FieldInfo(
        "computer_science",
        0.03,
        {"programming": 0.30, "ml": 0.15, "rigor": 0.20},
    ),
)

# Population shares must form a distribution; checked at import so a typo in
# the table above fails loudly rather than skewing every generated cohort.
_total = sum(f.share for f in FIELDS)
if abs(_total - 1.0) > 1e-9:
    raise RuntimeError(f"FIELDS shares sum to {_total}, expected 1.0")

# Career-stage labels with population shares (graduate-heavy, as on campus).
CAREER_STAGES: dict[str, float] = {
    "graduate_student": 0.45,
    "postdoc": 0.25,
    "faculty": 0.18,
    "research_staff": 0.12,
}


def field_names() -> tuple[str, ...]:
    """Names of all fields, in canonical order."""
    return tuple(f.name for f in FIELDS)


def field_shares() -> dict[str, float]:
    """Mapping field name -> population share."""
    return {f.name: f.share for f in FIELDS}
