"""Respondent generation: profile + questionnaire -> ResponseSet.

The generator walks the questionnaire in presentation order for each
synthetic respondent, sampling only questions the skip logic shows (given
the answers produced so far), exactly like a real survey platform would.
Questions without a model in the profile are left unanswered, which the
validation layer then reports — a deliberate path for testing ingest QA.
"""

from __future__ import annotations

import numpy as np

from repro.survey.questions import MultiChoiceQuestion, Question
from repro.survey.responses import Response, ResponseSet
from repro.survey.schema import Questionnaire
from repro.synth.models import RespondentContext, ResponseModel
from repro.synth.profile import CohortProfile

__all__ = ["generate_cohort", "generate_study"]


def _skip_probability(
    base_rate: float, profile: CohortProfile, ctx: RespondentContext
) -> float:
    """Per-respondent skip probability with optional trait-linked shift."""
    if not profile.missingness_loadings or base_rate <= 0.0:
        return base_rate
    import math

    p = min(max(base_rate, 1e-9), 1 - 1e-9)
    logit = math.log(p / (1 - p)) + sum(
        w * ctx.centered_trait(t) for t, w in profile.missingness_loadings.items()
    )
    return 1.0 / (1.0 + math.exp(-logit))


def _enforce_choice_bounds(
    question: Question,
    value,
    model: ResponseModel,
    ctx: RespondentContext,
    answers,
    rng: np.random.Generator,
):
    """Re-apply the survey platform's min/max-select enforcement.

    A respondent cannot submit a multi-select outside its bounds, so the
    generator resamples a few times and then tops up / trims, mirroring the
    UI forcing a choice.
    """
    if not isinstance(question, MultiChoiceQuestion) or not isinstance(value, list):
        return value
    tries = 0
    while len(value) < question.min_selected and tries < 10:
        value = model.sample(ctx, answers, rng)
        tries += 1
    if len(value) < question.min_selected:
        extras = [o for o in question.options if o not in value]
        idx = rng.permutation(len(extras))
        needed = question.min_selected - len(value)
        value = list(value) + [extras[i] for i in idx[:needed]]
    if question.max_selected is not None and len(value) > question.max_selected:
        value = value[: question.max_selected]
    return value


def _sample_field(profile: CohortProfile, rng: np.random.Generator):
    shares = np.array([f.share for f in profile.fields], dtype=float)
    shares = shares / shares.sum()
    return profile.fields[rng.choice(len(profile.fields), p=shares)]


def _sample_stage(profile: CohortProfile, rng: np.random.Generator) -> str:
    stages = list(profile.career_stages)
    shares = np.array([profile.career_stages[s] for s in stages], dtype=float)
    shares = shares / shares.sum()
    return stages[rng.choice(len(stages), p=shares)]


def generate_cohort(
    profile: CohortProfile,
    questionnaire: Questionnaire,
    n: int,
    rng: np.random.Generator,
    id_prefix: str | None = None,
) -> ResponseSet:
    """Generate ``n`` synthetic responses for one cohort.

    Parameters
    ----------
    profile:
        The cohort's declarative generation parameters.
    questionnaire:
        Instrument whose ordering and skip logic drive sampling. The
        profile's ``field`` / ``career_stage`` models (if present) are
        overridden by the sampled demographics so trait conditioning and
        the recorded answer always agree.
    n:
        Number of respondents.
    rng:
        Seeded generator; the only source of randomness.
    id_prefix:
        Respondent-id prefix, defaulting to the cohort label.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    prefix = id_prefix if id_prefix is not None else profile.cohort
    responses = []
    for i in range(n):
        field_info = _sample_field(profile, rng)
        stage = _sample_stage(profile, rng)
        traits = profile.trait_model.sample(field_info, rng)
        centers = {
            name: spec.mean for name, spec in profile.trait_model.specs.items()
        }
        ctx = RespondentContext(
            field_name=field_info.name,
            career_stage=stage,
            traits=traits,
            cohort=profile.cohort,
            centers=centers,
        )
        answers: dict[str, object] = {}
        for question in questionnaire.questions:
            key = question.key
            gate = questionnaire.skip_logic.get(key)
            if gate is not None and not gate.matches(answers.get(gate.question_key)):
                continue
            # Demographics are pinned to the sampled latent identity.
            if key == "field":
                answers[key] = field_info.name
                continue
            if key == "career_stage":
                answers[key] = stage
                continue
            model = profile.question_models.get(key)
            if model is None:
                continue
            base_rate = (
                profile.required_missing_rate
                if question.required
                else profile.missing_rate
            )
            if rng.random() < _skip_probability(base_rate, profile, ctx):
                continue
            value = model.sample(ctx, answers, rng)
            answers[key] = _enforce_choice_bounds(
                question, value, model, ctx, answers, rng
            )
        responses.append(
            Response(respondent_id=f"{prefix}-{i:05d}", cohort=profile.cohort, answers=answers)
        )
    return ResponseSet(questionnaire, responses)


def generate_study(
    profiles: dict[str, tuple[CohortProfile, int]],
    questionnaire: Questionnaire,
    seed: int,
) -> ResponseSet:
    """Generate a multi-cohort response set.

    Parameters
    ----------
    profiles:
        Mapping cohort label -> (profile, n). Each cohort gets an
        independent child generator spawned from ``seed`` so adding a cohort
        never perturbs another cohort's draws.
    questionnaire:
        Shared instrument (the study asks both waves the same core items).
    seed:
        Master seed.
    """
    if not profiles:
        raise ValueError("no cohorts requested")
    master = np.random.default_rng(seed)
    children = master.spawn(len(profiles))
    merged: ResponseSet | None = None
    for (label, (profile, n)), child in zip(sorted(profiles.items()), children):
        if profile.cohort != label:
            raise ValueError(
                f"profile cohort {profile.cohort!r} does not match key {label!r}"
            )
        cohort_set = generate_cohort(profile, questionnaire, n, child)
        merged = cohort_set if merged is None else merged.merge(cohort_set)
    return merged
