"""Respondent generation: profile + questionnaire -> ResponseSet.

The generator walks the questionnaire in presentation order for each
synthetic respondent, sampling only questions the skip logic shows (given
the answers produced so far), exactly like a real survey platform would.
Questions without a model in the profile are left unanswered, which the
validation layer then reports — a deliberate path for testing ingest QA.
"""

from __future__ import annotations

import math

import numpy as np

from repro.survey.questions import MultiChoiceQuestion, Question
from repro.survey.responses import Response, ResponseSet
from repro.survey.schema import Questionnaire
from repro.synth.models import RespondentContext, ResponseModel
from repro.synth.profile import CohortProfile

__all__ = ["generate_cohort", "generate_study"]


def _skip_probability(
    base_rate: float, profile: CohortProfile, ctx: RespondentContext
) -> float:
    """Per-respondent skip probability with optional trait-linked shift."""
    if not profile.missingness_loadings or base_rate <= 0.0:
        return base_rate
    p = min(max(base_rate, 1e-9), 1 - 1e-9)
    logit = math.log(p / (1 - p)) + sum(
        w * ctx.centered_trait(t) for t, w in profile.missingness_loadings.items()
    )
    return 1.0 / (1.0 + math.exp(-logit))


def _enforce_choice_bounds(
    question: Question,
    value,
    model: ResponseModel,
    ctx: RespondentContext,
    answers,
    rng: np.random.Generator,
):
    """Re-apply the survey platform's min/max-select enforcement.

    A respondent cannot submit a multi-select outside its bounds, so the
    generator resamples a few times and then tops up / trims, mirroring the
    UI forcing a choice.
    """
    if not isinstance(question, MultiChoiceQuestion) or not isinstance(value, list):
        return value
    tries = 0
    while len(value) < question.min_selected and tries < 10:
        value = model.sample(ctx, answers, rng)
        tries += 1
    if len(value) < question.min_selected:
        extras = [o for o in question.options if o not in value]
        idx = rng.permutation(len(extras))
        needed = question.min_selected - len(value)
        value = list(value) + [extras[i] for i in idx[:needed]]
    if question.max_selected is not None and len(value) > question.max_selected:
        value = value[: question.max_selected]
    return value


def _sample_field(profile: CohortProfile, rng: np.random.Generator):
    shares = np.array([f.share for f in profile.fields], dtype=float)
    shares = shares / shares.sum()
    return profile.fields[rng.choice(len(profile.fields), p=shares)]


def _sample_stage(profile: CohortProfile, rng: np.random.Generator) -> str:
    stages = list(profile.career_stages)
    shares = np.array([profile.career_stages[s] for s in stages], dtype=float)
    shares = shares / shares.sum()
    return stages[rng.choice(len(stages), p=shares)]


def generate_cohort(
    profile: CohortProfile,
    questionnaire: Questionnaire,
    n: int,
    rng: np.random.Generator,
    id_prefix: str | None = None,
) -> ResponseSet:
    """Generate ``n`` synthetic responses for one cohort.

    Parameters
    ----------
    profile:
        The cohort's declarative generation parameters.
    questionnaire:
        Instrument whose ordering and skip logic drive sampling. The
        profile's ``field`` / ``career_stage`` models (if present) are
        overridden by the sampled demographics so trait conditioning and
        the recorded answer always agree.
    n:
        Number of respondents.
    rng:
        Seeded generator; the only source of randomness.
    id_prefix:
        Respondent-id prefix, defaulting to the cohort label.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    prefix = id_prefix if id_prefix is not None else profile.cohort
    cohort = profile.cohort

    # Everything invariant across respondents is resolved once up front: the
    # demographic share vectors, the trait centers, and a pre-walked question
    # plan (gate, model, skip-probability recipe per question). The walk
    # below then does only per-respondent work — with RNG calls in exactly
    # the order the naive per-question resolution made them.
    # ``Generator.choice(n, p=p)`` consumes one uniform double and resolves
    # it as ``cdf.searchsorted(u, side="right")`` on the normalized
    # cumulative probabilities; doing that directly keeps draws identical
    # while hoisting the share normalization out of the respondent loop.
    fields = profile.fields
    field_shares = np.array([f.share for f in fields], dtype=float)
    field_cdf = (field_shares / field_shares.sum()).cumsum()
    field_cdf /= field_cdf[-1]
    stages = list(profile.career_stages)
    stage_shares = np.array([profile.career_stages[s] for s in stages], dtype=float)
    stage_cdf = (stage_shares / stage_shares.sum()).cumsum()
    stage_cdf /= stage_cdf[-1]
    trait_sample = profile.trait_model.sample
    centers = {name: spec.mean for name, spec in profile.trait_model.specs.items()}
    loadings = profile.missingness_loadings
    loading_items = tuple(loadings.items())

    # Question-plan rows: (kind, key, gate, model, skip_const, skip_logit,
    # multi_q). kind 0 = pinned field, 1 = pinned stage, 2 = modeled.
    # skip_logit is the precomputed base log-odds when the trait-linked
    # missingness path applies, else None and skip_const is used directly;
    # multi_q is the question itself for multi-selects (bounds enforcement)
    # and None otherwise.
    # Unmodeled, non-demographic questions draw nothing and answer nothing,
    # so they are dropped from the plan entirely.
    plan = []
    for question in questionnaire.questions:
        key = question.key
        gate = questionnaire.skip_logic.get(key)
        if key == "field":
            plan.append((0, key, gate, None, 0.0, None, False))
            continue
        if key == "career_stage":
            plan.append((1, key, gate, None, 0.0, None, False))
            continue
        model = profile.question_models.get(key)
        if model is None:
            continue
        base_rate = (
            profile.required_missing_rate if question.required else profile.missing_rate
        )
        if loadings and base_rate > 0.0:
            p = min(max(base_rate, 1e-9), 1 - 1e-9)
            skip_logit = math.log(p / (1 - p))
        else:
            skip_logit = None
        plan.append(
            (
                2,
                key,
                gate,
                model,
                base_rate,
                skip_logit,
                question if isinstance(question, MultiChoiceQuestion) else None,
            )
        )

    rng_random = rng.random
    exp = math.exp
    responses = []
    for i in range(n):
        field_info = fields[field_cdf.searchsorted(rng_random(), side="right")]
        stage = stages[stage_cdf.searchsorted(rng_random(), side="right")]
        traits = trait_sample(field_info, rng)
        ctx = RespondentContext(
            field_name=field_info.name,
            career_stage=stage,
            traits=traits,
            cohort=cohort,
            centers=centers,
        )
        # The trait-linked missingness shift depends only on the respondent,
        # not the question; the naive path recomputed it per question.
        if loading_items:
            shift = sum(w * ctx.centered_trait(t) for t, w in loading_items)
        else:
            shift = 0.0
        answers: dict[str, object] = {}
        for kind, key, gate, model, skip_const, skip_logit, multi_q in plan:
            if gate is not None and not gate.matches(answers.get(gate.question_key)):
                continue
            # Demographics are pinned to the sampled latent identity.
            if kind == 0:
                answers[key] = field_info.name
                continue
            if kind == 1:
                answers[key] = stage
                continue
            if skip_logit is not None:
                skip_p = 1.0 / (1.0 + exp(-(skip_logit + shift)))
            else:
                skip_p = skip_const
            if rng_random() < skip_p:
                continue
            value = model.sample(ctx, answers, rng)
            if multi_q is not None:
                value = _enforce_choice_bounds(multi_q, value, model, ctx, answers, rng)
            answers[key] = value
        responses.append(
            Response(respondent_id=f"{prefix}-{i:05d}", cohort=cohort, answers=answers)
        )
    return ResponseSet(questionnaire, responses)


def generate_study(
    profiles: dict[str, tuple[CohortProfile, int]],
    questionnaire: Questionnaire,
    seed: int,
) -> ResponseSet:
    """Generate a multi-cohort response set.

    Parameters
    ----------
    profiles:
        Mapping cohort label -> (profile, n). Each cohort gets an
        independent child generator spawned from ``seed`` so adding a cohort
        never perturbs another cohort's draws.
    questionnaire:
        Shared instrument (the study asks both waves the same core items).
    seed:
        Master seed.
    """
    if not profiles:
        raise ValueError("no cohorts requested")
    master = np.random.default_rng(seed)
    children = master.spawn(len(profiles))
    merged: ResponseSet | None = None
    for (label, (profile, n)), child in zip(sorted(profiles.items()), children):
        if profile.cohort != label:
            raise ValueError(
                f"profile cohort {profile.cohort!r} does not match key {label!r}"
            )
        cohort_set = generate_cohort(profile, questionnaire, n, child)
        merged = cohort_set if merged is None else merged.merge(cohort_set)
    return merged
