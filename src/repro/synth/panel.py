"""Panel respondents: the same researcher answering both waves.

A fraction of the 2024 wave are people who also answered in 2011 (faculty
and research staff stick around). Panel generation samples each person's
identity once, then evolves their latent traits from the baseline cohort's
distribution toward the current cohort's (partial regression toward the new
cohort mean plus idiosyncratic drift), and has them answer both instruments.
Paired analyses (McNemar) consume the resulting :class:`PanelResponses`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.survey.responses import Response, ResponseSet
from repro.survey.schema import Questionnaire
from repro.synth.generator import (
    _enforce_choice_bounds,
    _sample_field,
    _sample_stage,
    _skip_probability,
)
from repro.synth.models import RespondentContext
from repro.synth.profile import CohortProfile
from repro.synth.traits import TRAIT_NAMES

__all__ = ["PanelResponses", "generate_panel"]


@dataclass(frozen=True)
class PanelResponses:
    """Paired responses: wave A and wave B aligned by respondent.

    ``wave_a[i]`` and ``wave_b[i]`` are the same person; ids share a base
    (``panel-00042@2011`` / ``panel-00042@2024``).
    """

    wave_a: ResponseSet
    wave_b: ResponseSet

    def __post_init__(self) -> None:
        if len(self.wave_a) != len(self.wave_b):
            raise ValueError("panel waves must be the same length")
        for ra, rb in zip(self.wave_a, self.wave_b):
            if ra.respondent_id.split("@")[0] != rb.respondent_id.split("@")[0]:
                raise ValueError(
                    f"panel misaligned: {ra.respondent_id} vs {rb.respondent_id}"
                )

    def __len__(self) -> int:
        return len(self.wave_a)

    def pairs(self):
        """Iterate aligned (wave_a_response, wave_b_response) pairs."""
        return zip(self.wave_a, self.wave_b)

    def merged(self) -> ResponseSet:
        """Both waves as one multi-cohort response set."""
        return self.wave_a.merge(self.wave_b)


def _answer_wave(
    profile: CohortProfile,
    questionnaire: Questionnaire,
    ctx: RespondentContext,
    rng: np.random.Generator,
) -> dict[str, object]:
    answers: dict[str, object] = {}
    for question in questionnaire.questions:
        key = question.key
        gate = questionnaire.skip_logic.get(key)
        if gate is not None and not gate.matches(answers.get(gate.question_key)):
            continue
        if key == "field":
            answers[key] = ctx.field_name
            continue
        if key == "career_stage":
            answers[key] = ctx.career_stage
            continue
        model = profile.question_models.get(key)
        if model is None:
            continue
        base_rate = (
            profile.required_missing_rate if question.required else profile.missing_rate
        )
        if rng.random() < _skip_probability(base_rate, profile, ctx):
            continue
        value = model.sample(ctx, answers, rng)
        answers[key] = _enforce_choice_bounds(question, value, model, ctx, answers, rng)
    return answers


def generate_panel(
    profile_a: CohortProfile,
    profile_b: CohortProfile,
    questionnaire: Questionnaire,
    n: int,
    rng: np.random.Generator,
    persistence: float = 0.5,
    drift_sd: float = 0.08,
) -> PanelResponses:
    """Generate ``n`` panel respondents answering both waves.

    Parameters
    ----------
    profile_a, profile_b:
        The baseline and current cohort profiles.
    questionnaire:
        Shared instrument.
    n:
        Panel size.
    rng:
        Seeded generator.
    persistence:
        How much of a person's deviation from the wave-A cohort mean
        persists into wave B (0 = full regression to the new cohort mean,
        1 = deviation fully preserved).
    drift_sd:
        Standard deviation of idiosyncratic trait drift between waves.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if not 0.0 <= persistence <= 1.0:
        raise ValueError("persistence must be in [0, 1]")
    if drift_sd < 0:
        raise ValueError("drift_sd must be non-negative")
    responses_a: list[Response] = []
    responses_b: list[Response] = []
    centers_a = {name: spec.mean for name, spec in profile_a.trait_model.specs.items()}
    centers_b = {name: spec.mean for name, spec in profile_b.trait_model.specs.items()}
    for i in range(n):
        # Identity drawn from the baseline wave's population.
        field_info = _sample_field(profile_a, rng)
        stage = _sample_stage(profile_a, rng)
        traits_a = profile_a.trait_model.sample(field_info, rng)
        traits_b = {}
        for name in TRAIT_NAMES:
            deviation = traits_a[name] - profile_a.trait_model.effective_mean(
                name, field_info
            )
            target = profile_b.trait_model.effective_mean(name, field_info)
            drifted = target + persistence * deviation + rng.normal(0.0, drift_sd)
            traits_b[name] = float(np.clip(drifted, 0.0, 1.0))

        ctx_a = RespondentContext(
            field_name=field_info.name,
            career_stage=stage,
            traits=traits_a,
            cohort=profile_a.cohort,
            centers=centers_a,
        )
        ctx_b = RespondentContext(
            field_name=field_info.name,
            career_stage=stage,
            traits=traits_b,
            cohort=profile_b.cohort,
            centers=centers_b,
        )
        base = f"panel-{i:05d}"
        responses_a.append(
            Response(
                respondent_id=f"{base}@{profile_a.cohort}",
                cohort=profile_a.cohort,
                answers=_answer_wave(profile_a, questionnaire, ctx_a, rng),
            )
        )
        responses_b.append(
            Response(
                respondent_id=f"{base}@{profile_b.cohort}",
                cohort=profile_b.cohort,
                answers=_answer_wave(profile_b, questionnaire, ctx_b, rng),
            )
        )
    return PanelResponses(
        wave_a=ResponseSet(questionnaire, responses_a),
        wave_b=ResponseSet(questionnaire, responses_b),
    )
