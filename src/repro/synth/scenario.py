"""Scenario construction: controlled modifications of cohort profiles.

The reproduction's validation story needs ground-truth checks: the pipeline
must *find* effects that were planted and must *not* find effects in a null
configuration. This module builds modified profiles for both:

* :func:`with_yes_rate` / :func:`with_multi_rates` — plant a known effect by
  overriding one question's base rate(s);
* :func:`null_revisit_profile` — a "2024 wave" that behaves exactly like the
  baseline (same trait distributions and question models, new cohort label):
  every trend the engine reports against it is a false positive.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping

from repro.synth.models import BernoulliYesNoModel, MultiChoiceModel
from repro.synth.profile import CohortProfile

__all__ = ["with_yes_rate", "with_multi_rates", "null_revisit_profile"]


def with_yes_rate(profile: CohortProfile, key: str, rate: float) -> CohortProfile:
    """New profile with one yes/no question's base rate overridden.

    Trait loadings are preserved, so the planted effect rides on the same
    heterogeneity structure as everything else.
    """
    model = profile.question_models.get(key)
    if not isinstance(model, BernoulliYesNoModel):
        raise TypeError(f"{key!r} is not a yes/no model in cohort {profile.cohort!r}")
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate out of [0,1]: {rate}")
    models = dict(profile.question_models)
    models[key] = replace(model, base=rate)
    return replace(profile, question_models=models)


def with_multi_rates(
    profile: CohortProfile, key: str, rates: Mapping[str, float]
) -> CohortProfile:
    """New profile with some options of a multi-select overridden."""
    model = profile.question_models.get(key)
    if not isinstance(model, MultiChoiceModel):
        raise TypeError(f"{key!r} is not a multi-choice model in cohort {profile.cohort!r}")
    unknown = set(rates) - set(model.option_probs)
    if unknown:
        raise ValueError(f"unknown options: {sorted(unknown)}")
    for option, rate in rates.items():
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate for {option!r} out of [0,1]: {rate}")
    new_probs = dict(model.option_probs)
    new_probs.update(rates)
    models = dict(profile.question_models)
    models[key] = replace(model, option_probs=new_probs)
    return replace(profile, question_models=models)


def null_revisit_profile(baseline: CohortProfile, cohort_label: str) -> CohortProfile:
    """A revisit wave with *identical* behaviour to the baseline.

    Only the cohort label changes; any significant trend found against this
    wave is a type-I error. Used by the validation tests to check that the
    trend engine's false-positive rate matches its nominal alpha.
    """
    if cohort_label == baseline.cohort:
        raise ValueError("null revisit needs a distinct cohort label")
    return replace(baseline, cohort=cohort_label)
