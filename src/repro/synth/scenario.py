"""Scenario construction: controlled modifications of cohort profiles.

The reproduction's validation story needs ground-truth checks: the pipeline
must *find* effects that were planted and must *not* find effects in a null
configuration. This module builds modified profiles for both:

* :func:`with_yes_rate` / :func:`with_multi_rates` — plant a known effect by
  overriding one question's base rate(s);
* :func:`null_revisit_profile` — a "2024 wave" that behaves exactly like the
  baseline (same trait distributions and question models, new cohort label):
  every trend the engine reports against it is a false positive.

On top of the primitives sits the **environment-drift catalog**
(:data:`DRIFT_SCENARIOS`): named, declared modifications of the study's
cohort profiles that model the silent-drift failure modes the
reproducibility audit exists to catch — package-version churn, partial
data loss, schema evolution across cohort waves. A
:class:`DriftScenario` is a pure transform ``(cohort, profile) ->
profile``; declaring one to ``repro audit`` lets the concordance report
attribute the resulting divergence to the scenario instead of flagging
it as unexplained drift.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Mapping

from repro.synth.models import BernoulliYesNoModel, MultiChoiceModel
from repro.synth.profile import CohortProfile

__all__ = [
    "with_yes_rate",
    "with_multi_rates",
    "null_revisit_profile",
    "DriftScenario",
    "DRIFT_SCENARIOS",
    "get_drift_scenario",
    "apply_drift",
]


def with_yes_rate(profile: CohortProfile, key: str, rate: float) -> CohortProfile:
    """New profile with one yes/no question's base rate overridden.

    Trait loadings are preserved, so the planted effect rides on the same
    heterogeneity structure as everything else.
    """
    model = profile.question_models.get(key)
    if not isinstance(model, BernoulliYesNoModel):
        raise TypeError(f"{key!r} is not a yes/no model in cohort {profile.cohort!r}")
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate out of [0,1]: {rate}")
    models = dict(profile.question_models)
    models[key] = replace(model, base=rate)
    return replace(profile, question_models=models)


def with_multi_rates(
    profile: CohortProfile, key: str, rates: Mapping[str, float]
) -> CohortProfile:
    """New profile with some options of a multi-select overridden."""
    model = profile.question_models.get(key)
    if not isinstance(model, MultiChoiceModel):
        raise TypeError(f"{key!r} is not a multi-choice model in cohort {profile.cohort!r}")
    unknown = set(rates) - set(model.option_probs)
    if unknown:
        raise ValueError(f"unknown options: {sorted(unknown)}")
    for option, rate in rates.items():
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate for {option!r} out of [0,1]: {rate}")
    new_probs = dict(model.option_probs)
    new_probs.update(rates)
    models = dict(profile.question_models)
    models[key] = replace(model, option_probs=new_probs)
    return replace(profile, question_models=models)


def null_revisit_profile(baseline: CohortProfile, cohort_label: str) -> CohortProfile:
    """A revisit wave with *identical* behaviour to the baseline.

    Only the cohort label changes; any significant trend found against this
    wave is a type-I error. Used by the validation tests to check that the
    trend engine's false-positive rate matches its nominal alpha.
    """
    if cohort_label == baseline.cohort:
        raise ValueError("null revisit needs a distinct cohort label")
    return replace(baseline, cohort=cohort_label)


# -- environment-drift catalog ------------------------------------------------


@dataclass(frozen=True)
class DriftScenario:
    """A named, declared modification of the study's cohort profiles.

    ``transform(cohort, profile)`` is applied to every wave before
    generation; it must be pure (same inputs → same profile) so a drifted
    study is itself reproducible. ``origin`` names the pipeline steps the
    drift enters through — for the survey-side catalog that is always
    ``("survey",)``, and a concordance report uses it to check that the
    observed divergence footprint matches the declared entry point.
    """

    name: str
    description: str
    transform: Callable[[str, CohortProfile], CohortProfile]
    origin: tuple[str, ...] = ("survey",)

    def apply(self, cohort: str, profile: CohortProfile) -> CohortProfile:
        return self.transform(cohort, profile)


def _package_version_churn(cohort: str, profile: CohortProfile) -> CohortProfile:
    """Toolchain churn between runs: a new library release nudges behaviour.

    Models the classic silent-environment-drift failure: nothing in the
    protocol changed, but an upgraded dependency shifts a handful of
    marginals by a few points. Applied to the revisit wave only — the
    archived baseline wave is frozen data.
    """
    if cohort != "2024":
        return profile
    drifted = profile
    for key, delta in (("uses_containers", 0.04), ("uses_ml", 0.03)):
        model = drifted.question_models.get(key)
        if isinstance(model, BernoulliYesNoModel):
            drifted = with_yes_rate(
                drifted, key, min(1.0, max(0.0, model.base + delta))
            )
    return drifted


def _partial_data_loss(cohort: str, profile: CohortProfile) -> CohortProfile:
    """A tranche of the revisit wave's responses is lost or unusable.

    Modelled as sharply raised missingness (optional *and* required
    fields) rather than a smaller n, so downstream completeness metrics
    see the damage too.
    """
    if cohort != "2024":
        return profile
    return replace(
        profile,
        missing_rate=min(1.0, profile.missing_rate + 0.25),
        required_missing_rate=min(1.0, profile.required_missing_rate + 0.10),
    )


def _schema_evolution(cohort: str, profile: CohortProfile) -> CohortProfile:
    """The revisit instrument dropped a legacy option between waves.

    The 2024 form no longer offers Fortran in the languages multi-select:
    a schema change across cohort waves that silently zeroes one option's
    share instead of erroring.
    """
    if cohort != "2024":
        return profile
    return with_multi_rates(profile, "languages", {"fortran": 0.0})


def _planted_yes_rate(cohort: str, profile: CohortProfile) -> CohortProfile:
    """Ground-truth planted effect: one yes/no marginal forced high.

    The audit's positive control — a drift that *must* produce divergence
    localized to the survey subtree, used by the chaos suite to verify
    first-divergence localization end to end.
    """
    if cohort != "2024":
        return profile
    return with_yes_rate(profile, "uses_parallelism", 0.95)


DRIFT_SCENARIOS: dict[str, DriftScenario] = {
    scenario.name: scenario
    for scenario in (
        DriftScenario(
            name="package_version_churn",
            description=(
                "dependency upgrade between runs shifts container/ML "
                "adoption marginals by a few points (2024 wave)"
            ),
            transform=_package_version_churn,
        ),
        DriftScenario(
            name="partial_data_loss",
            description=(
                "a tranche of 2024 responses is lost: missingness rises "
                "sharply on optional and required fields"
            ),
            transform=_partial_data_loss,
        ),
        DriftScenario(
            name="schema_evolution",
            description=(
                "the 2024 instrument dropped the Fortran option from the "
                "languages multi-select (schema change across waves)"
            ),
            transform=_schema_evolution,
        ),
        DriftScenario(
            name="planted_yes_rate",
            description=(
                "positive control: uses_parallelism base rate forced to "
                "0.95 in the 2024 wave"
            ),
            transform=_planted_yes_rate,
        ),
    )
}


def get_drift_scenario(name: str) -> DriftScenario:
    """Look up a catalog scenario; raise with the catalog on a miss."""
    try:
        return DRIFT_SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(DRIFT_SCENARIOS))
        raise KeyError(f"unknown drift scenario {name!r} (known: {known})") from None


def apply_drift(name: str, cohort: str, profile: CohortProfile) -> CohortProfile:
    """Apply one named scenario to one wave's profile (identity if ``name`` empty)."""
    if not name:
        return profile
    return get_drift_scenario(name).apply(cohort, profile)
