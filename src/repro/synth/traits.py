"""Latent trait model for synthetic respondents.

Every respondent carries four latent traits in [0, 1]:

* ``programming`` — general software-development intensity;
* ``hpc``         — parallel/cluster computing adoption;
* ``ml``          — machine-learning adoption;
* ``rigor``       — software-engineering rigor (VCS, tests, CI).

Traits are sampled from Beta distributions whose means are the cohort base
mean plus the respondent's field shift (clipped into (0, 1)). Correlation
between answers then emerges naturally: a biologist with low ``hpc`` is
unlikely to report MPI *and* unlikely to have cluster jobs in the telemetry
substrate, mirroring the coupling the real study observes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.synth.fields import FieldInfo

__all__ = ["TRAIT_NAMES", "TraitSpec", "TraitModel"]

TRAIT_NAMES: tuple[str, ...] = ("programming", "hpc", "ml", "rigor")

_MEAN_EPS = 0.02  # keep Beta means away from the degenerate endpoints


@dataclass(frozen=True, slots=True)
class TraitSpec:
    """Base mean and concentration for one trait in one cohort.

    The Beta distribution is parameterized by ``mean`` and ``concentration``
    (= alpha + beta); higher concentration means a tighter population.
    """

    mean: float
    concentration: float = 8.0

    def __post_init__(self) -> None:
        if not 0.0 < self.mean < 1.0:
            raise ValueError(f"trait mean must be in (0, 1), got {self.mean}")
        if self.concentration <= 0:
            raise ValueError(f"concentration must be positive, got {self.concentration}")


class TraitModel:
    """Samples trait vectors conditioned on field.

    Parameters
    ----------
    specs:
        Mapping trait name -> :class:`TraitSpec`; must cover every name in
        :data:`TRAIT_NAMES`.
    """

    def __init__(self, specs: Mapping[str, TraitSpec]) -> None:
        missing = set(TRAIT_NAMES) - set(specs)
        if missing:
            raise ValueError(f"missing trait specs: {sorted(missing)}")
        extra = set(specs) - set(TRAIT_NAMES)
        if extra:
            raise ValueError(f"unknown trait names: {sorted(extra)}")
        self.specs = dict(specs)
        # Per-field Beta parameters; the (mean, concentration) -> (alpha,
        # beta) resolution is deterministic per field, and sample() runs per
        # respondent. Keyed by id with the FieldInfo pinned so ids can't be
        # recycled while cached.
        self._ab_cache: dict[int, tuple[object, list[tuple[str, float, float]]]] = {}

    def effective_mean(self, trait: str, field_info: FieldInfo) -> float:
        """Cohort base mean shifted by the field modifier, clipped to (0,1)."""
        base = self.specs[trait].mean
        shift = field_info.trait_shift.get(trait, 0.0)
        return float(np.clip(base + shift, _MEAN_EPS, 1.0 - _MEAN_EPS))

    def _alpha_beta(self, field_info: FieldInfo) -> list[tuple[str, float, float]]:
        cached = self._ab_cache.get(id(field_info))
        if cached is not None:
            return cached[1]
        rows = []
        for name in TRAIT_NAMES:
            spec = self.specs[name]
            mean = self.effective_mean(name, field_info)
            rows.append((name, mean * spec.concentration, (1.0 - mean) * spec.concentration))
        self._ab_cache[id(field_info)] = (field_info, rows)
        return rows

    def sample(
        self, field_info: FieldInfo, rng: np.random.Generator
    ) -> dict[str, float]:
        """Draw one respondent's trait vector."""
        return {
            name: float(rng.beta(alpha, beta))
            for name, alpha, beta in self._alpha_beta(field_info)
        }

    def sample_many(
        self, field_info: FieldInfo, n: int, rng: np.random.Generator
    ) -> dict[str, np.ndarray]:
        """Vectorized draw of ``n`` trait vectors for one field."""
        if n < 0:
            raise ValueError("n must be non-negative")
        out: dict[str, np.ndarray] = {}
        for name in TRAIT_NAMES:
            spec = self.specs[name]
            mean = self.effective_mean(name, field_info)
            alpha = mean * spec.concentration
            beta = (1.0 - mean) * spec.concentration
            out[name] = rng.beta(alpha, beta, size=n)
        return out
