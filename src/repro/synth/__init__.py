"""Synthetic respondent population substrate.

The paper's raw survey data is private human-subjects data, so this package
generates a synthetic population that exercises every analysis code path:

* :mod:`repro.synth.fields` — field-of-research taxonomy and career stages;
* :mod:`repro.synth.traits` — latent trait model (computing intensity, HPC
  adoption, ML adoption, software-engineering rigor) conditioned on field
  and cohort;
* :mod:`repro.synth.models` — per-question response models mapping latent
  traits (and earlier answers) to concrete answers;
* :mod:`repro.synth.profile` — :class:`CohortProfile`, the declarative bundle
  of trait parameters + question models + missingness for one study wave;
* :mod:`repro.synth.generator` — draws a :class:`~repro.survey.ResponseSet`
  from a profile, honoring the questionnaire's skip logic;
* :mod:`repro.synth.freetext` — template-based free-text answers with tool
  mentions for the text-mining pipeline.

Concrete 2011/2024 profiles live in :mod:`repro.core.calibration`.
"""

from repro.synth.fields import (
    CAREER_STAGES,
    FIELDS,
    FieldInfo,
    field_names,
)
from repro.synth.traits import TraitModel, TraitSpec, TRAIT_NAMES
from repro.synth.models import (
    BernoulliYesNoModel,
    CategoricalModel,
    DerivedMultiChoiceModel,
    FreeTextModel,
    LikertModel,
    MultiChoiceModel,
    NumericModel,
    RespondentContext,
    ResponseModel,
)
from repro.synth.profile import CohortProfile, ProfileError
from repro.synth.generator import generate_cohort, generate_study
from repro.synth.panel import PanelResponses, generate_panel
from repro.synth.scenario import (
    null_revisit_profile,
    with_multi_rates,
    with_yes_rate,
)
from repro.synth.freetext import FreeTextTemplates

__all__ = [
    "FIELDS",
    "FieldInfo",
    "field_names",
    "CAREER_STAGES",
    "TRAIT_NAMES",
    "TraitSpec",
    "TraitModel",
    "RespondentContext",
    "ResponseModel",
    "CategoricalModel",
    "BernoulliYesNoModel",
    "MultiChoiceModel",
    "DerivedMultiChoiceModel",
    "LikertModel",
    "NumericModel",
    "FreeTextModel",
    "CohortProfile",
    "ProfileError",
    "generate_cohort",
    "generate_study",
    "PanelResponses",
    "generate_panel",
    "with_yes_rate",
    "with_multi_rates",
    "null_revisit_profile",
    "FreeTextTemplates",
]
