"""Cohort profiles: the declarative bundle describing one study wave."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.synth.fields import CAREER_STAGES, FIELDS, FieldInfo
from repro.synth.models import ResponseModel
from repro.synth.traits import TraitModel

__all__ = ["ProfileError", "CohortProfile"]


class ProfileError(ValueError):
    """Raised when a cohort profile is internally inconsistent."""


@dataclass(frozen=True)
class CohortProfile:
    """Everything needed to synthesize one cohort.

    Attributes
    ----------
    cohort:
        Wave label ("2011", "2024"); becomes ``Response.cohort``.
    trait_model:
        Cohort-level latent trait distributions.
    question_models:
        Mapping question key -> :class:`ResponseModel`. Keys here that carry
        skip logic are only sampled when applicable.
    missing_rate:
        Probability that a respondent skips any given *optional* question.
    required_missing_rate:
        Probability of skipping a *required* question (real respondents do).
    missingness_loadings:
        Optional trait loadings making skipping *respondent-dependent*
        (missing-at-random given traits): a respondent's skip odds are
        shifted by ``sum(loading * centered_trait)``. Negative programming
        loadings reproduce the real pattern where less-computational
        respondents skip more, which the differential-nonresponse QA
        analysis is designed to catch.
    fields:
        Field taxonomy to draw from (defaults to the shared campus taxonomy).
    career_stages:
        Mapping stage -> share.
    """

    cohort: str
    trait_model: TraitModel
    question_models: Mapping[str, ResponseModel]
    missing_rate: float = 0.08
    required_missing_rate: float = 0.02
    missingness_loadings: Mapping[str, float] = field(default_factory=dict)
    fields: tuple[FieldInfo, ...] = FIELDS
    career_stages: Mapping[str, float] = field(default_factory=lambda: dict(CAREER_STAGES))

    def __post_init__(self) -> None:
        if not self.cohort:
            raise ProfileError("cohort label is empty")
        if not self.question_models:
            raise ProfileError("profile has no question models")
        for rate_name in ("missing_rate", "required_missing_rate"):
            rate = getattr(self, rate_name)
            if not 0.0 <= rate < 1.0:
                raise ProfileError(f"{rate_name} out of [0, 1): {rate}")
        from repro.synth.traits import TRAIT_NAMES

        unknown = set(self.missingness_loadings) - set(TRAIT_NAMES)
        if unknown:
            raise ProfileError(f"unknown traits in missingness_loadings: {sorted(unknown)}")
        if not self.fields:
            raise ProfileError("profile has no fields")
        total = sum(f.share for f in self.fields)
        if abs(total - 1.0) > 1e-6:
            raise ProfileError(f"field shares sum to {total}, expected 1.0")
        if not self.career_stages:
            raise ProfileError("profile has no career stages")
        stage_total = sum(self.career_stages.values())
        if abs(stage_total - 1.0) > 1e-6:
            raise ProfileError(f"career-stage shares sum to {stage_total}")

    def field_by_name(self, name: str) -> FieldInfo:
        for f in self.fields:
            if f.name == name:
                return f
        raise KeyError(f"no field named {name!r} in cohort {self.cohort!r}")
