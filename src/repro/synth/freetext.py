"""Template-based free-text answer generation.

Real respondents answer "describe your software stack" with short, messy
prose naming tools. The generator composes such sentences from templates and
a trait-weighted tool vocabulary so the text-mining pipeline (tokenizer,
lexicon matcher, co-occurrence graph) has realistic input: varying case,
punctuation, version suffixes, and correlated tool mentions.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field
from functools import cached_property
from typing import Mapping

import numpy as np

from repro.synth.models import RespondentContext

__all__ = ["FreeTextTemplates"]

_STACK_TEMPLATES = (
    "I mostly use {tools} for my analysis.",
    "Our group's pipeline is built on {tools}.",
    "Day to day: {tools}. Occasionally some shell scripting.",
    "{tools} -- plus a pile of custom scripts nobody dares touch.",
    "We standardized on {tools} last year.",
    "Mainly {tools}; running on the department cluster.",
)

_CHALLENGE_TEMPLATES = (
    "Queue wait times on the cluster are the biggest bottleneck.",
    "Installing dependencies reproducibly is painful.",
    "My code is too slow and I don't know how to parallelize it.",
    "Getting GPU allocations is hard; demand keeps growing.",
    "Debugging MPI jobs takes forever.",
    "Storage quotas; our datasets no longer fit.",
    "Keeping track of which script produced which result.",
    "Learning curve: I was never taught software engineering.",
    "Porting legacy Fortran code to modern toolchains.",
    "Moving data between the cluster and cloud storage.",
)


@dataclass(frozen=True)
class FreeTextTemplates:
    """Configurable free-text generator for one cohort.

    Attributes
    ----------
    tool_probs:
        Mapping tool name -> base mention probability.
    tool_loadings:
        Optional mapping tool -> {trait: weight}; positive weights make high
        scorers on that trait mention the tool more.
    mention_decorations:
        Probability of decorating a mention (capitalization change or a
        version suffix), exercising normalizer robustness.
    """

    tool_probs: Mapping[str, float]
    tool_loadings: Mapping[str, Mapping[str, float]] = field(default_factory=dict)
    mention_decorations: float = 0.25

    def __post_init__(self) -> None:
        if not self.tool_probs:
            raise ValueError("tool_probs is empty")
        for tool, p in self.tool_probs.items():
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"probability for {tool!r} out of [0,1]")
        unknown = set(self.tool_loadings) - set(self.tool_probs)
        if unknown:
            raise ValueError(f"loadings for unknown tools: {sorted(unknown)}")

    # Per-tool base log-odds and loading items, resolved once per template
    # set: the mention loop runs per respondent and the log/clamp of the
    # base probability never changes.
    @cached_property
    def _mention_plan(self) -> tuple[tuple[str, float, tuple], ...]:
        rows = []
        for tool, p0 in self.tool_probs.items():
            p = min(max(p0, 1e-9), 1 - 1e-9)
            rows.append(
                (tool, math.log(p / (1 - p)), tuple(self.tool_loadings.get(tool, {}).items()))
            )
        return tuple(rows)

    @cached_property
    def _fallback_tool(self) -> str:
        return max(self.tool_probs, key=self.tool_probs.get)

    def _mention_probability(self, tool: str, ctx: RespondentContext) -> float:
        p = min(max(self.tool_probs[tool], 1e-9), 1 - 1e-9)
        logit = math.log(p / (1 - p))
        for trait, w in self.tool_loadings.get(tool, {}).items():
            logit += w * ctx.centered_trait(trait)
        return 1.0 / (1.0 + math.exp(-logit))

    def _decorate(self, tool: str, rng: np.random.Generator) -> str:
        if rng.random() >= self.mention_decorations:
            return tool
        style = rng.integers(0, 3)
        if style == 0:
            return tool.capitalize()
        if style == 1:
            return tool.upper() if len(tool) <= 4 else tool.title()
        return f"{tool} {rng.integers(1, 4)}.{rng.integers(0, 12)}"

    def stack_description(
        self,
        ctx: RespondentContext,
        answers: Mapping[str, object],
        rng: np.random.Generator,
    ) -> str:
        """A 'describe your stack' answer mentioning 1..6 tools."""
        rng_random = rng.random
        exp = math.exp
        mentioned = []
        for tool, base, items in self._mention_plan:
            logit = base
            for trait, w in items:
                logit += w * ctx.centered_trait(trait)
            if rng_random() < 1.0 / (1.0 + exp(-logit)):
                mentioned.append(tool)
        if not mentioned:
            # Everyone uses *something*; fall back to the most likely tool.
            mentioned = [self._fallback_tool]
        rng.shuffle(mentioned)
        mentioned = mentioned[:6]
        decorated = [self._decorate(t, rng) for t in mentioned]
        if len(decorated) == 1:
            tools = decorated[0]
        else:
            tools = ", ".join(decorated[:-1]) + " and " + decorated[-1]
        template = _STACK_TEMPLATES[rng.integers(0, len(_STACK_TEMPLATES))]
        return template.format(tools=tools)

    def challenge(
        self,
        ctx: RespondentContext,
        answers: Mapping[str, object],
        rng: np.random.Generator,
    ) -> str:
        """A 'biggest challenge' answer, weighted toward HPC pain for HPC users."""
        idx = int(rng.integers(0, len(_CHALLENGE_TEMPLATES)))
        # Heavy cluster users complain about the cluster more often.
        if ctx.trait("hpc") > 0.6 and rng.random() < 0.5:
            idx = int(rng.integers(0, 4))
        return _CHALLENGE_TEMPLATES[idx]
