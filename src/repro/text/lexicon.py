"""Tool lexicon: canonical names, aliases, and categories.

The default lexicon covers the tools the synthetic free-text generator can
emit plus common aliases a real corpus would contain; a site running the
study on its own answers extends it with :meth:`Lexicon.extended`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ToolEntry", "Lexicon", "DEFAULT_LEXICON"]


@dataclass(frozen=True, slots=True)
class ToolEntry:
    """One tool: canonical name, match aliases, and a coarse category."""

    name: str
    category: str
    aliases: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not self.category:
            raise ValueError("tool name and category are required")

    @property
    def all_forms(self) -> tuple[str, ...]:
        return (self.name, *self.aliases)


class Lexicon:
    """An alias-resolving tool dictionary."""

    def __init__(self, entries: tuple[ToolEntry, ...] | list[ToolEntry]) -> None:
        entries = tuple(entries)
        if not entries:
            raise ValueError("lexicon has no entries")
        names = [e.name for e in entries]
        if len(set(names)) != len(names):
            raise ValueError("duplicate canonical tool names")
        self.entries = entries
        self._resolve: dict[str, str] = {}
        for entry in entries:
            for form in entry.all_forms:
                form = form.lower()
                existing = self._resolve.get(form)
                if existing is not None and existing != entry.name:
                    raise ValueError(
                        f"alias {form!r} claimed by both {existing!r} and {entry.name!r}"
                    )
                self._resolve[form] = entry.name
        self._category = {e.name: e.category for e in entries}

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, form: str) -> bool:
        return form.lower() in self._resolve

    def resolve(self, form: str) -> str | None:
        """Canonical tool name for a surface form, or None."""
        return self._resolve.get(form.lower())

    def category(self, name: str) -> str:
        try:
            return self._category[name]
        except KeyError:
            raise KeyError(f"unknown tool {name!r}") from None

    def names(self) -> tuple[str, ...]:
        return tuple(e.name for e in self.entries)

    def extended(self, extra: list[ToolEntry]) -> "Lexicon":
        """New lexicon with additional entries."""
        return Lexicon(self.entries + tuple(extra))


DEFAULT_LEXICON = Lexicon(
    [
        # scientific python
        ToolEntry("numpy", "library"),
        ToolEntry("scipy", "library"),
        ToolEntry("pandas", "library"),
        ToolEntry("matplotlib", "library", ("pyplot",)),
        ToolEntry("jupyter", "environment", ("jupyterlab", "notebook")),
        # ML
        ToolEntry("pytorch", "ml", ("torch",)),
        ToolEntry("tensorflow", "ml", ("tf",)),
        ToolEntry("scikit-learn", "ml", ("sklearn",)),
        ToolEntry("jax", "ml"),
        ToolEntry("keras", "ml"),
        ToolEntry("huggingface", "ml", ("transformers",)),
        # HPC
        ToolEntry("mpi", "hpc", ("openmpi", "mpich", "mpi4py")),
        ToolEntry("openmp", "hpc"),
        ToolEntry("cuda", "hpc", ("cudnn",)),
        ToolEntry("slurm", "hpc", ("sbatch", "srun")),
        ToolEntry("spark", "hpc", ("pyspark",)),
        # engineering
        ToolEntry("git", "engineering", ("github", "gitlab")),
        ToolEntry("svn", "engineering", ("subversion",)),
        ToolEntry("docker", "engineering"),
        ToolEntry("apptainer", "engineering", ("singularity",)),
        ToolEntry("conda", "engineering", ("anaconda", "miniconda", "mamba")),
        # languages / environments
        ToolEntry("matlab", "environment"),
        ToolEntry("fortran", "language", ("f90", "f77")),
        ToolEntry("perl", "language"),
        ToolEntry("latex", "environment", ("tex", "overleaf")),
        ToolEntry("excel", "environment"),
        ToolEntry("gnuplot", "environment"),
        ToolEntry("vscode", "environment", ("vs-code",)),
        ToolEntry("emacs", "environment"),
        ToolEntry("vim", "environment", ("neovim",)),
        ToolEntry("aws", "cloud", ("ec2", "s3")),
    ]
)
