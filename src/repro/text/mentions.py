"""Tool-mention extraction from free-text answers."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.survey.responses import ResponseSet
from repro.text.lexicon import DEFAULT_LEXICON, Lexicon
from repro.text.tokenize import normalize_token, tokenize

__all__ = ["MentionExtractor", "MentionSummary", "extract_mentions"]


@dataclass(frozen=True, slots=True)
class MentionSummary:
    """Corpus-level mention statistics.

    Attributes
    ----------
    per_respondent:
        Mapping respondent id -> frozenset of canonical tools mentioned.
    counts:
        Mapping tool -> number of respondents mentioning it (document
        frequency, not raw token frequency).
    n_documents:
        Number of answers scanned (respondents who answered the question).
    """

    per_respondent: dict[str, frozenset[str]]
    counts: dict[str, int]
    n_documents: int

    def share(self, tool: str) -> float:
        """Fraction of answerers mentioning ``tool``."""
        if self.n_documents == 0:
            raise ValueError("no documents")
        return self.counts.get(tool, 0) / self.n_documents

    def top(self, k: int = 10) -> list[tuple[str, int]]:
        """The k most-mentioned tools (ties broken alphabetically)."""
        return sorted(self.counts.items(), key=lambda kv: (-kv[1], kv[0]))[:k]


class MentionExtractor:
    """Extracts canonical tool mentions from text via the lexicon."""

    def __init__(self, lexicon: Lexicon | None = None) -> None:
        self.lexicon = lexicon or DEFAULT_LEXICON

    def mentions_in(self, text: str) -> frozenset[str]:
        """Canonical tools mentioned in one answer."""
        found = set()
        for token in tokenize(text):
            norm = normalize_token(token)
            if norm is None:
                continue
            canonical = self.lexicon.resolve(norm)
            if canonical is not None:
                found.add(canonical)
        return frozenset(found)

    def summarize(self, response_set: ResponseSet, key: str) -> MentionSummary:
        """Mention summary over one free-text question of a response set."""
        per_respondent: dict[str, frozenset[str]] = {}
        counts: Counter[str] = Counter()
        n_documents = 0
        for response in response_set:
            text = response.get(key, None)
            if not isinstance(text, str) or not text.strip():
                continue
            n_documents += 1
            mentioned = self.mentions_in(text)
            per_respondent[response.respondent_id] = mentioned
            # Sorted so the counts dict's insertion order (which downstream
            # consumers iterate) never depends on PYTHONHASHSEED.
            counts.update(sorted(mentioned))
        return MentionSummary(
            per_respondent=per_respondent,
            counts=dict(counts),
            n_documents=n_documents,
        )


def extract_mentions(
    response_set: ResponseSet, key: str, lexicon: Lexicon | None = None
) -> MentionSummary:
    """Convenience wrapper: extract mentions for one question."""
    return MentionExtractor(lexicon).summarize(response_set, key)
