"""Tokenization and normalization for free-text answers.

Kept deliberately simple: lowercase word tokens with intra-word ``+``/``#``
(c++, f#) and ``-``/``.`` handled, version suffixes stripped during
normalization ("python3.11" -> "python3" is *not* what we want, so the
normalizer peels trailing version digits only when separated: "pytorch 2.1"
tokenizes as ["pytorch", "2.1"] and the bare version token is droppable by
the caller).
"""

from __future__ import annotations

import re

__all__ = ["tokenize", "normalize_token"]

# Words may contain letters, digits and internal + # . - characters
# (c++, f#, scikit-learn, mpi4py, 2.1).
_TOKEN_RE = re.compile(r"[a-zA-Z0-9](?:[a-zA-Z0-9+#.\-]*[a-zA-Z0-9+#])?|[a-zA-Z0-9]")

_VERSION_RE = re.compile(r"^\d+(\.\d+)*$")


def tokenize(text: str) -> list[str]:
    """Split text into lowercase tokens, preserving tool-ish punctuation."""
    if not isinstance(text, str):
        raise TypeError("text must be a string")
    return [t.lower() for t in _TOKEN_RE.findall(text)]


def normalize_token(token: str) -> str | None:
    """Canonicalize one token; returns None for droppable tokens.

    Drops bare version numbers ("2.1") and single punctuation leftovers;
    strips trailing dots ("numpy." at sentence end).
    """
    t = token.strip().lower().rstrip(".")
    if not t:
        return None
    if _VERSION_RE.match(t):
        return None
    return t
