"""Tool co-mention graph (figure F6).

Nodes are tools; an edge's weight counts respondents mentioning both tools
in the same answer. The summary reports degree centrality, the strongest
pairs, and greedy modularity communities — "the Python data stack travels
together; the classic HPC stack travels together".
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.text.mentions import MentionSummary

__all__ = ["build_cooccurrence_graph", "cooccurrence_summary", "CooccurrenceResult"]


def build_cooccurrence_graph(
    summary: MentionSummary, min_count: int = 2
) -> nx.Graph:
    """Weighted co-mention graph from a mention summary.

    Parameters
    ----------
    summary:
        Output of :func:`repro.text.extract_mentions`.
    min_count:
        Edges co-mentioned by fewer respondents are dropped (noise floor).
    """
    if min_count < 1:
        raise ValueError("min_count must be >= 1")
    graph = nx.Graph()
    # Insertion order defines edge orientation in nx iteration; sort so the
    # graph (and everything rendered from it) is hash-seed independent.
    for tool in sorted(summary.counts):
        graph.add_node(tool, count=summary.counts[tool])
    pair_counts: dict[tuple[str, str], int] = {}
    for mentioned in summary.per_respondent.values():
        tools = sorted(mentioned)
        for i, a in enumerate(tools):
            for b in tools[i + 1 :]:
                pair_counts[(a, b)] = pair_counts.get((a, b), 0) + 1
    for (a, b), weight in pair_counts.items():
        if weight >= min_count:
            graph.add_edge(a, b, weight=weight)
    return graph


@dataclass(frozen=True, slots=True)
class CooccurrenceResult:
    """Summary of the co-mention graph.

    Attributes
    ----------
    n_tools, n_edges:
        Graph size after thresholding.
    top_pairs:
        Strongest co-mention pairs as (tool_a, tool_b, weight).
    centrality:
        Weighted-degree centrality per tool (fraction of total weight).
    communities:
        Tool groups from greedy modularity maximization, largest first.
    """

    n_tools: int
    n_edges: int
    top_pairs: tuple[tuple[str, str, int], ...]
    centrality: dict[str, float]
    communities: tuple[frozenset[str], ...]


def cooccurrence_summary(graph: nx.Graph, top_k: int = 10) -> CooccurrenceResult:
    """Compute the F6 summary statistics for a co-mention graph."""
    if top_k < 1:
        raise ValueError("top_k must be >= 1")
    # Canonicalize orientation (nx yields (u, v) by insertion order) before
    # ranking, so top pairs render identically on every run.
    edges = sorted(
        ((min(a, b), max(a, b), w) for a, b, w in graph.edges(data="weight")),
        key=lambda e: (-e[2], e[0], e[1]),
    )
    top_pairs = tuple((a, b, int(w)) for a, b, w in edges[:top_k])

    total_weight = sum(w for _, _, w in graph.edges(data="weight"))
    centrality: dict[str, float] = {}
    for node in graph.nodes:
        node_weight = sum(w for _, _, w in graph.edges(node, data="weight"))
        centrality[node] = node_weight / (2.0 * total_weight) if total_weight else 0.0

    # Communities over the thresholded graph; isolated nodes form singletons.
    connected = [n for n in graph.nodes if graph.degree(n) > 0]
    sub = graph.subgraph(connected)
    if sub.number_of_edges() > 0:
        communities = tuple(
            frozenset(c)
            for c in sorted(
                nx.community.greedy_modularity_communities(sub, weight="weight"),
                key=lambda c: (-len(c), tuple(sorted(c))),
            )
        )
    else:
        communities = ()

    return CooccurrenceResult(
        n_tools=graph.number_of_nodes(),
        n_edges=graph.number_of_edges(),
        top_pairs=top_pairs,
        centrality=centrality,
        communities=communities,
    )
