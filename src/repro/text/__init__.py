"""Text mining for free-form survey answers.

The study mines two open questions ("describe your stack", "biggest
challenge") for tool mentions and co-adoption structure:

* :mod:`repro.text.tokenize` — tokenizer + normalizer robust to the casing
  and version-suffix noise real answers contain;
* :mod:`repro.text.lexicon` — the tool lexicon with aliases and categories;
* :mod:`repro.text.mentions` — extraction of per-respondent tool mentions;
* :mod:`repro.text.cooccurrence` — mention co-occurrence graph (networkx)
  and its centrality/community summaries (figure F6).
"""

from repro.text.tokenize import normalize_token, tokenize
from repro.text.lexicon import DEFAULT_LEXICON, Lexicon, ToolEntry
from repro.text.mentions import MentionExtractor, MentionSummary, extract_mentions
from repro.text.cooccurrence import (
    CooccurrenceResult,
    build_cooccurrence_graph,
    cooccurrence_summary,
)
from repro.text.topics import (
    TOPIC_KEYWORDS,
    ChallengeTopics,
    code_challenges,
)

__all__ = [
    "tokenize",
    "normalize_token",
    "ToolEntry",
    "Lexicon",
    "DEFAULT_LEXICON",
    "extract_mentions",
    "MentionExtractor",
    "MentionSummary",
    "build_cooccurrence_graph",
    "cooccurrence_summary",
    "CooccurrenceResult",
    "TOPIC_KEYWORDS",
    "ChallengeTopics",
    "code_challenges",
]
