"""Topic coding for "biggest challenge" answers.

The study hand-codes open challenge answers into a fixed codebook of
categories; this module reproduces that coding with transparent keyword
rules. Multi-label: an answer mentioning both queues and storage counts in
both categories (as two human coders would tag it).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.survey.responses import ResponseSet
from repro.text.tokenize import tokenize

__all__ = ["ChallengeTopics", "TOPIC_KEYWORDS", "code_challenges"]

# Category -> keywords (matched on normalized tokens and bigrams).
TOPIC_KEYWORDS: dict[str, tuple[str, ...]] = {
    "queue_contention": (
        "queue", "wait", "allocation", "allocations", "backlog", "demand",
    ),
    "software_installation": (
        "install", "installing", "dependency", "dependencies", "environment",
        "reproducibly", "packages", "toolchains", "toolchain", "porting",
    ),
    "performance_scaling": (
        "slow", "parallelize", "scaling", "performance", "optimize", "speed",
    ),
    "debugging": ("debug", "debugging", "crash", "segfault",),
    "storage_data": (
        "storage", "quota", "quotas", "datasets", "data", "disk",
    ),
    "skills_training": (
        "learning", "taught", "training", "curve", "skills", "engineering",
    ),
    "provenance": ("track", "provenance", "result", "version",),
}


@dataclass(frozen=True)
class ChallengeTopics:
    """Coded challenge answers.

    Attributes
    ----------
    counts:
        Mapping topic -> number of answers tagged with it.
    n_documents:
        Answers coded.
    n_uncoded:
        Answers matching no topic (reported, never silently dropped).
    per_respondent:
        Mapping respondent id -> frozenset of topics.
    """

    counts: dict[str, int]
    n_documents: int
    n_uncoded: int
    per_respondent: dict[str, frozenset[str]]

    def share(self, topic: str) -> float:
        if self.n_documents == 0:
            raise ValueError("no documents coded")
        return self.counts.get(topic, 0) / self.n_documents

    def ranked(self) -> list[tuple[str, int]]:
        """Topics by prevalence, ties alphabetical."""
        return sorted(self.counts.items(), key=lambda kv: (-kv[1], kv[0]))


def topics_in(text: str) -> frozenset[str]:
    """Topics whose keywords appear in one answer."""
    tokens = set(tokenize(text))
    found = {
        topic
        for topic, keywords in TOPIC_KEYWORDS.items()
        if tokens & set(keywords)
    }
    return frozenset(found)


def code_challenges(
    response_set: ResponseSet, key: str = "biggest_challenge"
) -> ChallengeTopics:
    """Code every answered challenge question in a response set."""
    counts: dict[str, int] = {topic: 0 for topic in TOPIC_KEYWORDS}
    per_respondent: dict[str, frozenset[str]] = {}
    n_documents = 0
    n_uncoded = 0
    for response in response_set:
        text = response.get(key, None)
        if not isinstance(text, str) or not text.strip():
            continue
        n_documents += 1
        topics = topics_in(text)
        per_respondent[response.respondent_id] = topics
        if not topics:
            n_uncoded += 1
        for topic in topics:
            counts[topic] += 1
    return ChallengeTopics(
        counts={t: c for t, c in counts.items() if c > 0},
        n_documents=n_documents,
        n_uncoded=n_uncoded,
        per_respondent=per_respondent,
    )
