"""``repro top``: a one-screen text dashboard over serve roots and fleets.

Renders entirely from the on-disk observability surfaces — ``status.json``
+ ``slo.json`` + the ``metrics/`` ring for a serve root, heartbeat /
assignment / spine-segment files for a dist run dir — so watching a
service or a fleet never touches the live processes (the same
out-of-process discipline as ``repro serve --status``).

:func:`render_top` is a pure disk-state → text function; the CLI loop
around it (``repro top``) just reprints it every interval, and
``repro top --once`` prints one frame (the CI round-trip mode).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any

from repro.obs.registry import MetricsRegistry
from repro.obs.ring import read_ring_snapshot
from repro.obs.slo import load_slo

__all__ = ["render_top", "latest_run_dir"]


def _ms(value: float | None) -> str:
    if value is None:
        return "-"
    return f"{value * 1e3:.1f}ms" if value < 1.0 else f"{value:.2f}s"


def latest_run_dir(cache_root: str | Path) -> Path | None:
    """The most recently modified ``.dist/<run_id>`` run dir, or None."""
    dist = Path(cache_root) / ".dist"
    try:
        runs = [p for p in dist.iterdir() if p.is_dir()]
    except OSError:
        return None
    if not runs:
        return None
    return max(runs, key=lambda p: p.stat().st_mtime if p.exists() else 0.0)


def render_top(
    serve_root: str | Path | None = None,
    dist_dir: str | Path | None = None,
    clock: Any = time.time,
) -> str:
    """One dashboard frame over the given serve root and/or dist run dir."""
    lines: list[str] = [f"repro top — {time.strftime('%H:%M:%S', time.localtime(clock()))}"]
    if serve_root is None and dist_dir is None:
        lines.append("nothing to watch (pass --root and/or --dist-dir)")
        return "\n".join(lines) + "\n"
    if serve_root is not None:
        lines.extend(_serve_section(Path(serve_root)))
    if dist_dir is not None:
        lines.extend(_fleet_section(Path(dist_dir)))
    return "\n".join(lines) + "\n"


# -- serve ---------------------------------------------------------------------


def _serve_section(root: Path) -> list[str]:
    from repro.serve.service import read_status

    lines = [f"== serve: {root} =="]
    status = read_status(root)
    if status is None:
        lines.append("  no status.json (service never started here?)")
        return lines
    staleness = status.get("staleness_seconds")
    lines.append(
        f"  mode {status.get('mode', '?')}  ready {'yes' if status.get('ready') else 'no'}"
        f"  cycle {status.get('cycle', 0)}"
        f"  dirty {'yes' if status.get('dirty') else 'no'}"
        f"  uptime {float(status.get('uptime_seconds') or 0.0):.1f}s"
        f"  staleness {'-' if staleness is None else f'{float(staleness):.1f}s'}"
    )
    admission = status.get("admission") or {}
    shed = int(admission.get("shed_queue_full", 0)) + int(
        admission.get("shed_deadline", 0)
    )
    lines.append(
        f"  admission: waiting {admission.get('waiting', 0)}"
        f"  requests {admission.get('requests', 0)}"
        f"  fresh {admission.get('served_fresh', 0)}"
        f"  stale {admission.get('served_stale', 0)}"
        f"  shed {shed} (queue {admission.get('shed_queue_full', 0)},"
        f" deadline {admission.get('shed_deadline', 0)})"
    )
    quarantined = status.get("quarantined") or []
    lines.append(
        "  breaker open: " + (", ".join(quarantined) if quarantined else "none")
    )
    snapshot = read_ring_snapshot(root)
    if snapshot is not None:
        registry = MetricsRegistry.from_snapshot(snapshot)
        pct = registry.percentiles("repro_request_seconds")
        count = registry.histogram_count("repro_request_seconds")
        behind = registry.value("repro_staleness_rows_behind")
        lines.append(
            f"  latency: p50 {_ms(pct['p50'])}  p95 {_ms(pct['p95'])}"
            f"  p99 {_ms(pct['p99'])}  (n={count})"
            f"  behind {int(behind)} row(s)"
        )
    slo = status.get("slo")
    if slo is None:
        lines.append(
            "  slo: declared" if load_slo(root) is not None else "  slo: none declared"
        )
    else:
        detail = status.get("slo_detail") or {}
        parts = [
            f"{name} {check.get('actual')}/{check.get('limit')}"
            f" {'ok' if check.get('ok') else 'BREACH'}"
            for name, check in sorted(detail.items())
        ]
        lines.append(f"  slo: {slo}" + (f"  [{'; '.join(parts)}]" if parts else ""))
    return lines


# -- fleet ---------------------------------------------------------------------


def _fleet_section(run_dir: Path) -> list[str]:
    from repro.dist.heartbeats import read_heartbeat
    from repro.obs.spine import load_segments

    lines = [f"== fleet: {run_dir} =="]
    if not run_dir.is_dir():
        lines.append("  run dir gone (run finished and was swept)")
        return lines
    beats: list[str] = []
    hb_dir = run_dir / "heartbeats"
    try:
        hb_paths = sorted(hb_dir.glob("*.hb"))
    except OSError:
        hb_paths = []
    for path in hb_paths:
        beat = read_heartbeat(path)
        wid = path.name[: -len(".hb")]
        if beat is None:
            beats.append(f"{wid} (torn)")
        else:
            beats.append(f"{wid} pid {beat.pid} hb {beat.counter}")
    lines.append("  workers: " + ("  ".join(beats) if beats else "none yet"))
    assigns: list[str] = []
    try:
        assign_paths = sorted((run_dir / "assign").glob("*.task"))
    except OSError:
        assign_paths = []
    from repro.dist.leases import read_assignment

    for path in assign_paths:
        assignment = read_assignment(run_dir, path.name[: -len(".task")])
        if assignment is not None:
            assigns.append(
                f"{assignment.step} -> {','.join(assignment.workers)}"
                f" (epoch {assignment.epoch})"
            )
    lines.append("  assignments: " + ("  ".join(assigns) if assigns else "none"))
    segments = load_segments(run_dir)
    if segments:
        merged = MetricsRegistry()
        parts = []
        for segment in segments:
            registry = segment.get("registry")
            if isinstance(registry, dict):
                merged.merge(registry)
            tasks = sum(
                1 for s in segment.get("spans") or [] if s.get("cat") == "wtask"
            )
            parts.append(f"{segment['worker']} {tasks} task(s)")
        pct = merged.percentiles("repro_step_wall_seconds")
        lines.append("  spine: " + "  ".join(parts))
        lines.append(
            f"  step wall: p50 {_ms(pct['p50'])}  p95 {_ms(pct['p95'])}"
            f"  p99 {_ms(pct['p99'])}"
            f"  (n={merged.histogram_count('repro_step_wall_seconds')})"
        )
    return lines
