"""Size-rotated on-disk metrics ring for the serve tier.

The resident service persists its observability on every cycle so that
out-of-process tools (``repro top``, scrapers, post-mortems) can read it
without touching the live process:

* ``metrics/registry.json`` — the current registry snapshot (pure data,
  atomically replaced); the machine surface :func:`read_ring_snapshot`
  and ``repro top`` consume;
* ``metrics/current.prom`` — appended Prometheus exposition frames, one
  per cycle, each introduced by a ``# frame <seq>`` comment; when the
  file exceeds ``rotate_bytes`` it rotates to ``ring-<n>.prom`` and the
  oldest rotated files are pruned down to ``keep`` — a bounded window of
  recent history, WAL-rotation style, never an unbounded log.

Every write is fail-open: a full disk degrades to stale metrics files,
never to a dead service (the same contract as ``status.json``).
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Any

__all__ = ["MetricsRing", "read_ring_snapshot"]

_RING_RE = re.compile(r"^ring-(\d+)\.prom$")


class MetricsRing:
    """One service's ``metrics/`` directory (see module docstring)."""

    def __init__(
        self, directory: str | Path, rotate_bytes: int = 64 << 10, keep: int = 4
    ) -> None:
        if rotate_bytes < 1:
            raise ValueError(f"rotate_bytes must be >= 1, got {rotate_bytes}")
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.rotate_bytes = rotate_bytes
        self.keep = keep
        self.current = self.directory / "current.prom"
        self.snapshot_path = self.directory / "registry.json"
        self._seq = 0

    # -- writing ---------------------------------------------------------------

    def publish(self, snapshot: dict[str, Any], text: str) -> bool:
        """Persist one cycle's registry: snapshot (replace) + frame (append).

        Returns False (never raises) when the disk refused either write.
        """
        ok = self._write_snapshot(snapshot)
        return self._append_frame(text) and ok

    def _write_snapshot(self, snapshot: dict[str, Any]) -> bool:
        tmp = self.snapshot_path.with_name(
            f"{self.snapshot_path.name}.{os.getpid()}.tmp"
        )
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(snapshot, sort_keys=True), encoding="utf-8")
            os.replace(tmp, self.snapshot_path)
            return True
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return False

    def _append_frame(self, text: str) -> bool:
        self._seq += 1
        frame = f"# frame {self._seq}\n{text}"
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            with open(self.current, "a", encoding="utf-8") as fh:
                fh.write(frame)
            if self.current.stat().st_size > self.rotate_bytes:
                self._rotate()
            return True
        except OSError:
            return False

    def _rotate(self) -> None:
        rotated = self.rotated_files()
        next_n = 1
        if rotated:
            next_n = int(_RING_RE.match(rotated[-1].name).group(1)) + 1
        os.replace(self.current, self.directory / f"ring-{next_n:06d}.prom")
        for stale in self.rotated_files()[: -self.keep]:
            try:
                stale.unlink()
            except OSError:
                pass

    # -- reading ---------------------------------------------------------------

    def rotated_files(self) -> list[Path]:
        try:
            entries = [
                p for p in self.directory.iterdir() if _RING_RE.match(p.name)
            ]
        except OSError:
            return []
        return sorted(entries, key=lambda p: int(_RING_RE.match(p.name).group(1)))


def read_ring_snapshot(root: str | Path) -> dict[str, Any] | None:
    """A service root's latest registry snapshot (None when absent/torn).

    Out-of-process like ``read_status``: reads only the atomically
    replaced ``metrics/registry.json``, so probing never interferes with
    a live (or crashed) service.
    """
    try:
        raw = json.loads(
            (Path(root) / "metrics" / "registry.json").read_text(encoding="utf-8")
        )
    except (OSError, json.JSONDecodeError):
        return None
    return raw if isinstance(raw, dict) else None
