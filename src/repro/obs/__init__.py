"""``repro.obs``: the fleet-wide observability plane.

Spans three layers of the repo:

* :mod:`repro.obs.registry` — the mergeable :class:`MetricsRegistry`
  (counters, gauges, log-bucketed histograms with exact percentile
  queries); snapshots are pure data with associative/commutative merge;
* :mod:`repro.obs.promfmt` — the one Prometheus exposition writer +
  validator shared by the registry and ``Tracer.to_prometheus``;
* :mod:`repro.obs.spine` — the cross-process trace/metrics spine for
  fleet runs (worker segment files, coordinator merge);
* :mod:`repro.obs.slo` / :mod:`repro.obs.ring` — serve-tier SLO policy
  evaluation and the size-rotated on-disk metrics ring;
* :mod:`repro.obs.top` — the ``repro top`` dashboard renderer.
"""

from repro.obs.promfmt import PromWriter, validate_prometheus
from repro.obs.registry import (
    MetricsRegistry,
    merge_snapshots,
    registry_from_metrics,
)
from repro.obs.ring import MetricsRing, read_ring_snapshot
from repro.obs.slo import SLOPolicy, evaluate_slo, load_slo
from repro.obs.spine import WorkerObs, load_segments, merge_segments, obs_dir
from repro.obs.top import render_top

__all__ = [
    "PromWriter",
    "validate_prometheus",
    "MetricsRegistry",
    "merge_snapshots",
    "registry_from_metrics",
    "MetricsRing",
    "read_ring_snapshot",
    "SLOPolicy",
    "evaluate_slo",
    "load_slo",
    "WorkerObs",
    "load_segments",
    "merge_segments",
    "obs_dir",
    "render_top",
]
