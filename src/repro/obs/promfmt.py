"""Shared Prometheus text-exposition writer and format validator.

Two surfaces render metrics as Prometheus text: the per-run
:meth:`repro.core.trace.Tracer.to_prometheus` snapshot and the fleet-wide
:class:`repro.obs.registry.MetricsRegistry`. Both route through this
module so there is exactly one place that knows the exposition format —
``# HELP``/``# TYPE`` comment lines, label-value escaping, sample-line
layout — and one validator (:func:`validate_prometheus`) that both
outputs must pass in the test suite.

Escaping follows the exposition-format spec: inside a label value a
backslash becomes ``\\``, a double quote ``\"``, and a newline the two
characters ``\n`` (label values may not contain raw newlines — a raw
newline would split the sample line and corrupt the scrape).
"""

from __future__ import annotations

import re

__all__ = [
    "escape_label",
    "escape_help",
    "sample_line",
    "PromWriter",
    "validate_prometheus",
]

#: Metric types the writer emits and the validator accepts.
PROM_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
#: One sample line: name, optional {labels}, value (int/float/nan/inf).
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[+-]?(?:\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|NaN|Inf|nan|inf))$"
)
#: One label pair inside the braces, with spec escaping in the value.
_PAIR_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\\n]|\\["\\n])*)"'
)


def escape_label(value: str) -> str:
    """Escape a label value per the exposition format (``\\``, ``"``, newline)."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def escape_help(text: str) -> str:
    """Escape a ``# HELP`` text (backslash and newline only, per spec)."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def sample_line(name: str, labels: dict[str, str] | None, value: str) -> str:
    """One sample line; ``value`` arrives pre-formatted by the caller so
    existing byte-for-byte renderings (``%.6f`` gauges, integer counters)
    survive the shared-writer refactor unchanged."""
    if not labels:
        return f"{name} {value}"
    body = ",".join(f'{k}="{escape_label(v)}"' for k, v in labels.items())
    return f"{name}{{{body}}} {value}"


class PromWriter:
    """Accumulates metric families and renders exposition text.

    Families render in insertion order (callers sort their own samples),
    every family gets its ``# HELP``/``# TYPE`` preamble even when it has
    no samples — an empty family documents that the metric *exists* and
    is zero, which is what scrapers and diff-based tests want.
    """

    def __init__(self) -> None:
        self._lines: list[str] = []

    def family(self, name: str, type_: str, help_text: str) -> None:
        if type_ not in PROM_TYPES:
            raise ValueError(f"unknown metric type {type_!r}; expected {PROM_TYPES}")
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self._lines.append(f"# HELP {name} {escape_help(help_text)}")
        self._lines.append(f"# TYPE {name} {type_}")

    def sample(
        self,
        name: str,
        labels: dict[str, str] | None,
        value: str,
    ) -> None:
        self._lines.append(sample_line(name, labels, value))

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"


def _family_of(sample_name: str) -> str:
    """The family a sample belongs to (histogram/summary series share the
    base name with ``_bucket``/``_sum``/``_count`` suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def validate_prometheus(text: str) -> list[str]:
    """Check exposition text for format problems; empty list = valid.

    Enforces what both of our writers promise: text ends with a newline;
    every ``# TYPE`` names a known type and is preceded by that family's
    ``# HELP``; every sample line parses (name, braced label pairs with
    spec escaping, numeric value); every sample belongs to a family that
    declared a ``# TYPE``; counter samples are non-negative.
    """
    problems: list[str] = []
    if not text:
        return ["empty exposition"]
    if not text.endswith("\n"):
        problems.append("exposition must end with a newline")
    helped: set[str] = set()
    typed: dict[str, str] = {}
    for n, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                problems.append(f"line {n}: malformed HELP comment")
            else:
                helped.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or not _NAME_RE.match(parts[2]):
                problems.append(f"line {n}: malformed TYPE comment")
                continue
            name, type_ = parts[2], parts[3]
            if type_ not in PROM_TYPES:
                problems.append(f"line {n}: unknown metric type {type_!r}")
            if name not in helped:
                problems.append(f"line {n}: TYPE for {name!r} without a HELP line")
            typed[name] = type_
            continue
        if line.startswith("#"):
            continue  # other comments are legal
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {n}: unparseable sample: {line!r}")
            continue
        family = _family_of(match.group("name"))
        if family not in typed and match.group("name") not in typed:
            problems.append(
                f"line {n}: sample for {match.group('name')!r} has no TYPE"
            )
        labels = match.group("labels")
        if labels:
            stripped = _PAIR_RE.sub("", labels).replace(",", "")
            if stripped:
                problems.append(f"line {n}: malformed labels {labels!r}")
        family_type = typed.get(family, typed.get(match.group("name")))
        if family_type == "counter":
            try:
                if float(match.group("value")) < 0:
                    problems.append(f"line {n}: negative counter value")
            except ValueError:  # pragma: no cover - regex already vetted it
                problems.append(f"line {n}: non-numeric value")
        if len(problems) >= 20:
            problems.append("... (further problems suppressed)")
            break
    return problems
