"""Declarative serve-tier SLOs: load ``slo.json``, judge the registry.

A service root may carry an ``slo.json`` next to ``status.json``::

    {
      "p99_latency_seconds": 0.25,
      "max_behind_rows": 500,
      "max_shed_rate": 0.2
    }

Each key is optional; an absent key (or an absent file) means that
objective is simply not declared. :class:`StudyService` evaluates the
policy on every cycle against its own metrics registry and folds the
verdict into ``status.json`` (``"slo": "ok" | "breached"`` plus the
per-objective numbers), which is what makes the SLO *operational*: the
out-of-process ``repro serve --status`` probe exits 3 on a breach without
ever touching the live process.

The three objectives map onto the serve registry like so:

* ``p99_latency_seconds`` — the exact p99 of the
  ``repro_request_seconds`` admission→answer histogram;
* ``max_behind_rows`` — the ``repro_staleness_rows_behind`` gauge
  (worst WAL-rows-behind across warm artifacts);
* ``max_shed_rate`` — shed requests over total requests, from
  ``repro_requests_total`` / ``repro_shed_total``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.obs.registry import MetricsRegistry

__all__ = ["SLOPolicy", "load_slo", "evaluate_slo", "SLO_FILENAME"]

SLO_FILENAME = "slo.json"


@dataclass(frozen=True)
class SLOPolicy:
    """The declared objectives; ``None`` = objective not declared."""

    p99_latency_seconds: float | None = None
    max_behind_rows: float | None = None
    max_shed_rate: float | None = None

    @property
    def empty(self) -> bool:
        return (
            self.p99_latency_seconds is None
            and self.max_behind_rows is None
            and self.max_shed_rate is None
        )


def load_slo(root: str | Path) -> SLOPolicy | None:
    """The root's declared SLO policy, or None when absent/unreadable.

    Malformed policy files degrade to "no SLO" rather than taking the
    service down — an operator typo must not turn into an outage.
    """
    path = Path(root) / SLO_FILENAME
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(raw, dict):
        return None

    def _num(key: str) -> float | None:
        value = raw.get(key)
        return float(value) if isinstance(value, (int, float)) else None

    policy = SLOPolicy(
        p99_latency_seconds=_num("p99_latency_seconds"),
        max_behind_rows=_num("max_behind_rows"),
        max_shed_rate=_num("max_shed_rate"),
    )
    return None if policy.empty else policy


def evaluate_slo(
    policy: SLOPolicy, registry: MetricsRegistry
) -> dict[str, Any]:
    """Judge the registry against the policy.

    Returns ``{"ok": bool, "checks": {objective: {limit, actual, ok}}}``
    with one entry per *declared* objective. Objectives with no data yet
    (no requests served) pass vacuously — an idle service is not in
    breach.
    """
    checks: dict[str, dict[str, Any]] = {}

    if policy.p99_latency_seconds is not None:
        p99 = registry.percentile("repro_request_seconds", 99)
        checks["p99_latency_seconds"] = {
            "limit": policy.p99_latency_seconds,
            "actual": p99,
            "ok": p99 is None or p99 <= policy.p99_latency_seconds,
        }
    if policy.max_behind_rows is not None:
        behind = registry.value("repro_staleness_rows_behind")
        checks["max_behind_rows"] = {
            "limit": policy.max_behind_rows,
            "actual": behind,
            "ok": behind <= policy.max_behind_rows,
        }
    if policy.max_shed_rate is not None:
        requests = registry.value("repro_requests_total")
        shed = registry.value("repro_shed_total", reason="queue_full") + registry.value(
            "repro_shed_total", reason="deadline"
        )
        rate = (shed / requests) if requests > 0 else 0.0
        checks["max_shed_rate"] = {
            "limit": policy.max_shed_rate,
            "actual": round(rate, 6),
            "ok": rate <= policy.max_shed_rate,
        }
    return {"ok": all(c["ok"] for c in checks.values()), "checks": checks}
