"""Mergeable metrics registry: counters, gauges, log-bucketed histograms.

The fleet-wide half of the observability plane. Every process that
observes anything — dist workers, the coordinator, the serve loop —
records into its own :class:`MetricsRegistry`; registries never share
memory. What crosses process boundaries is a :meth:`~MetricsRegistry.snapshot`:
pure JSON-able data whose merge is **associative and commutative**, so a
coordinator can fold per-worker snapshots in whatever order the
filesystem hands them over and always arrive at the same fleet registry.

Histograms are log-bucketed (each bucket spans ~9% of value space, base
``2**(1/8)``) with exact rank-selection percentile queries over the
bucket counts: ``percentile`` walks the cumulative counts to the target
rank and answers the bucket's upper bound clamped to the observed max.
Because bucket indices are fixed at observe time, the answer is a pure
function of the merged counts — merge order can never shift a p99.

Rendering goes through :mod:`repro.obs.promfmt` (one exposition writer
for the whole repo). ``to_text(normalize=True)`` follows the PR-5
normalization precedent: timing-dependent families are stripped — gauges
are dropped wholesale and histograms keep only their observation count —
so a fixed seed/DAG renders byte-identically across
sequential/thread/process/dist executors, and the determinism suite
diffs exactly that.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Iterable, Mapping

from repro.obs.promfmt import PromWriter

__all__ = [
    "MetricsRegistry",
    "merge_snapshots",
    "registry_from_metrics",
]

SNAPSHOT_SCHEMA = 1

#: Histogram bucket base: boundaries at ``_BASE ** i``, ~9% per bucket.
_BASE = 2.0 ** 0.125
_LOG_BASE = math.log(_BASE)
#: Bucket-index clamp. ``_BASE**-192`` ~ 6e-8 s, ``_BASE**192`` ~ 1.7e7 s:
#: far wider than any latency this repo can observe, so the clamp exists
#: only to keep degenerate inputs (0, inf) in a finite index space.
_MIN_IDX, _MAX_IDX = -192, 192

_Key = tuple[str, tuple[tuple[str, str], ...]]


def _key(name: str, labels: Mapping[str, Any]) -> _Key:
    return name, tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _bucket_index(value: float) -> int:
    if value <= 0.0 or not math.isfinite(value):
        return _MIN_IDX if value <= 0.0 else _MAX_IDX
    return max(_MIN_IDX, min(_MAX_IDX, math.floor(math.log(value) / _LOG_BASE)))


def _fmt(value: float) -> str:
    """Canonical sample-value text: integral floats render as integers."""
    value = float(value)
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class _Histogram:
    __slots__ = ("buckets", "count", "sum", "min", "max")

    def __init__(self) -> None:
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        idx = _bucket_index(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def percentile(self, q: float) -> float | None:
        """Rank-selection percentile over the bucket counts (``q`` in 0..100)."""
        if self.count == 0:
            return None
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in 0..100, got {q}")
        rank = max(1, math.ceil(q / 100.0 * self.count))
        cumulative = 0
        for idx in sorted(self.buckets):
            cumulative += self.buckets[idx]
            if cumulative >= rank:
                return min(_BASE ** (idx + 1), self.max)
        return self.max  # pragma: no cover - cumulative always reaches count

    def to_data(self) -> dict[str, Any]:
        return {
            "buckets": {str(i): c for i, c in sorted(self.buckets.items())},
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    def merge_data(self, data: Mapping[str, Any]) -> None:
        for raw_idx, c in (data.get("buckets") or {}).items():
            idx = int(raw_idx)
            self.buckets[idx] = self.buckets.get(idx, 0) + int(c)
        self.count += int(data.get("count", 0) or 0)
        self.sum += float(data.get("sum", 0.0) or 0.0)
        if data.get("min") is not None:
            self.min = min(self.min, float(data["min"]))
        if data.get("max") is not None:
            self.max = max(self.max, float(data["max"]))


#: ``{family: (type, help)}`` defaults for families this repo records, so
#: snapshots merged from processes that never touched a family still
#: render it with the right preamble.
_WELL_KNOWN: dict[str, tuple[str, str]] = {
    "repro_steps_total": ("counter", "Steps executed, by outcome."),
    "repro_step_wall_seconds": ("histogram", "Per-step wall time."),
    "repro_requests_total": ("counter", "Artifact requests received."),
    "repro_request_seconds": ("histogram", "Admission-to-answer request latency."),
    "repro_shed_total": ("counter", "Requests shed by admission control, by reason."),
    "repro_degraded_total": ("counter", "Non-fresh answers served, by reason."),
    "repro_queue_depth": ("gauge", "Requests currently waiting on a recompute."),
    "repro_staleness_rows_behind": (
        "gauge",
        "WAL rows the most-behind artifact trails the frontier by.",
    ),
    "repro_worker_up": ("gauge", "Fleet worker liveness (value = pid)."),
    "repro_worker_tasks": ("gauge", "Tasks executed, per fleet worker."),
}


class MetricsRegistry:
    """Thread-safe counters + gauges + log-bucketed histograms (see module
    docstring for merge and normalization semantics)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, tuple[str, str]] = {}
        self._counters: dict[_Key, float] = {}
        self._gauges: dict[_Key, float] = {}
        self._histograms: dict[_Key, _Histogram] = {}

    # -- declaring -------------------------------------------------------------

    def describe(self, name: str, type_: str, help_text: str = "") -> None:
        """Declare a family's type and help text (first declaration wins)."""
        with self._lock:
            self._families.setdefault(name, (type_, help_text))

    def _auto(self, name: str, type_: str) -> None:
        if name not in self._families:
            known = _WELL_KNOWN.get(name)
            self._families[name] = known if known else (type_, "")

    # -- recording -------------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        key = _key(name, labels)
        with self._lock:
            self._auto(name, "counter")
            self._counters[key] = self._counters.get(key, 0.0) + amount

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        key = _key(name, labels)
        with self._lock:
            self._auto(name, "gauge")
            self._gauges[key] = float(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        key = _key(name, labels)
        with self._lock:
            self._auto(name, "histogram")
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = _Histogram()
            hist.observe(float(value))

    # -- querying --------------------------------------------------------------

    def value(self, name: str, **labels: Any) -> float:
        """Current counter/gauge value (0.0 when the series never recorded)."""
        key = _key(name, labels)
        with self._lock:
            if key in self._counters:
                return self._counters[key]
            return self._gauges.get(key, 0.0)

    def histogram_count(self, name: str, **labels: Any) -> int:
        with self._lock:
            hist = self._histograms.get(_key(name, labels))
            return hist.count if hist is not None else 0

    def percentile(self, name: str, q: float, **labels: Any) -> float | None:
        with self._lock:
            hist = self._histograms.get(_key(name, labels))
            return hist.percentile(q) if hist is not None else None

    def percentiles(
        self, name: str, qs: Iterable[float] = (50, 95, 99), **labels: Any
    ) -> dict[str, float | None]:
        return {f"p{g:g}": self.percentile(name, g, **labels) for g in qs}

    # -- snapshots and merge ---------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """The registry as pure data (JSON-able, merge-able, atomic-writable).

        Series are ``[name, [[label, value], ...], payload]`` triples with
        sorted label pairs — structured, so merging never has to parse a
        rendered series key back apart.
        """
        with self._lock:
            return {
                "schema": SNAPSHOT_SCHEMA,
                "families": {
                    name: {"type": t, "help": h}
                    for name, (t, h) in sorted(self._families.items())
                },
                "counters": [
                    [name, [list(p) for p in pairs], value]
                    for (name, pairs), value in sorted(self._counters.items())
                ],
                "gauges": [
                    [name, [list(p) for p in pairs], value]
                    for (name, pairs), value in sorted(self._gauges.items())
                ],
                "histograms": [
                    [name, [list(p) for p in pairs], hist.to_data()]
                    for (name, pairs), hist in sorted(self._histograms.items())
                ],
            }

    def merge(self, other: "MetricsRegistry | Mapping[str, Any]") -> None:
        """Fold another registry (or snapshot) into this one.

        Counters add, histograms add bucket-wise (min/max fold through
        min/max), gauges take the max — the one commutative combine that
        makes sense for level-style gauges (queue depth, rows behind),
        where the fleet-level answer is the worst case any process saw.
        """
        snap = other.snapshot() if isinstance(other, MetricsRegistry) else other
        with self._lock:
            for name, meta in (snap.get("families") or {}).items():
                self._families.setdefault(
                    str(name), (str(meta.get("type", "untyped")), str(meta.get("help", "")))
                )
            for name, pairs, value in snap.get("counters") or []:
                key = (str(name), tuple((str(k), str(v)) for k, v in pairs))
                self._counters[key] = self._counters.get(key, 0.0) + float(value)
            for name, pairs, value in snap.get("gauges") or []:
                key = (str(name), tuple((str(k), str(v)) for k, v in pairs))
                current = self._gauges.get(key)
                value = float(value)
                self._gauges[key] = value if current is None else max(current, value)
            for name, pairs, data in snap.get("histograms") or []:
                key = (str(name), tuple((str(k), str(v)) for k, v in pairs))
                hist = self._histograms.get(key)
                if hist is None:
                    hist = self._histograms[key] = _Histogram()
                hist.merge_data(data)

    @classmethod
    def from_snapshot(cls, snap: Mapping[str, Any]) -> "MetricsRegistry":
        registry = cls()
        registry.merge(snap)
        return registry

    # -- rendering -------------------------------------------------------------

    def to_text(self, normalize: bool = False) -> str:
        """Prometheus exposition text via the shared writer.

        ``normalize=True`` strips everything timing- or host-dependent:
        gauge families vanish, histograms keep only ``_count``. What
        remains (counter values, observation counts) is a pure function
        of seed + DAG, so the determinism suite can diff it byte-for-byte
        across executor modes and merge orders.
        """
        with self._lock:
            writer = PromWriter()
            for name in sorted(self._families):
                type_, help_text = self._families[name]
                if normalize and type_ == "gauge":
                    continue
                writer.family(name, type_, help_text or name)
                if type_ == "histogram":
                    self._render_histogram(writer, name, normalize)
                    continue
                store = self._counters if type_ == "counter" else self._gauges
                for (series, pairs), value in sorted(store.items()):
                    if series != name:
                        continue
                    writer.sample(name, dict(pairs), _fmt(value))
            return writer.render()

    def _render_histogram(self, writer: PromWriter, name: str, normalize: bool) -> None:
        for (series, pairs), hist in sorted(self._histograms.items()):
            if series != name:
                continue
            labels = dict(pairs)
            if not normalize:
                cumulative = 0
                for idx in sorted(hist.buckets):
                    cumulative += hist.buckets[idx]
                    le = format(_BASE ** (idx + 1), ".6g")
                    writer.sample(
                        f"{name}_bucket", dict(labels, le=le), str(cumulative)
                    )
                writer.sample(
                    f"{name}_bucket", dict(labels, le="+Inf"), str(hist.count)
                )
                writer.sample(f"{name}_sum", labels, _fmt(hist.sum))
            writer.sample(f"{name}_count", labels, str(hist.count))


def merge_snapshots(snapshots: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Fold snapshots into one merged snapshot (order never matters)."""
    merged = MetricsRegistry()
    for snap in snapshots:
        merged.merge(snap)
    return merged.snapshot()


def registry_from_metrics(metrics: Any) -> MetricsRegistry:
    """The canonical per-run registry, derived from an ``ExecutorMetrics``.

    Gives the in-process executors (sequential/thread/process) the same
    registry families the dist workers record on the spine —
    ``repro_steps_total{outcome=}`` and the ``repro_step_wall_seconds``
    histogram — so a clean run's merged fleet registry and an in-process
    run's registry render byte-identically under ``normalize=True``.
    """
    registry = MetricsRegistry()
    registry.describe(*(("repro_steps_total",) + _WELL_KNOWN["repro_steps_total"]))
    registry.describe(
        *(("repro_step_wall_seconds",) + _WELL_KNOWN["repro_step_wall_seconds"])
    )
    for step in getattr(metrics, "steps", []):
        registry.inc("repro_steps_total", outcome=step.outcome)
        registry.observe("repro_step_wall_seconds", step.wall_seconds)
    return registry
