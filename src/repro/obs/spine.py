"""The cross-process trace/metrics spine for fleet-mode runs.

PR 5's tracer collects spans losslessly from threads and pool processes,
but dist workers are strangers: forked *or* externally joined via ``repro
worker``, possibly on another host, sharing nothing with the coordinator
but the run directory. The spine closes that gap with files:

* every worker owns ``<run_dir>/obs/<worker_id>.segment.json`` and
  atomically **replaces** it after each task and once more at exit. The
  segment is cumulative — the whole span list plus the current registry
  snapshot — so a reader never has to stitch increments and a torn or
  missed flush costs nothing but recency;
* the coordinator calls :func:`merge_segments` on its way out (after the
  fleet has drained, before the run dir is swept): worker spans land on
  the run tracer as true per-worker lanes (``tid="dist:<worker>"``) with
  the worker's real pid tagged on, and the registry snapshots fold into
  one fleet-level registry published on ``ExecutorMetrics.backend_stats``.

Clocks: workers timestamp spans with wall-clock (``time.time()``), the
one clock every host shares approximately; the merge rebases onto the
tracer's own epoch. Span categories are ``wtask``/``worker`` — ephemeral
under normalized export (like the ``dist`` scheduling events), because
which worker ran what, and whether a killed worker's last flush survived,
is OS-timing, not seed + DAG.

Everything here is fail-open: a flush that cannot write, or a segment
that cannot parse, degrades to missing observability — never to a failed
run.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any

from repro.obs.registry import MetricsRegistry

__all__ = ["WorkerObs", "obs_dir", "load_segments", "merge_segments"]

SEGMENT_SCHEMA = 1


def obs_dir(run_dir: str | Path) -> Path:
    return Path(run_dir) / "obs"


def _atomic_write_json(path: Path, payload: dict[str, Any]) -> bool:
    """tmp + replace; False (never raises) on I/O failure — losing one
    observability flush must not kill a worker mid-task.

    Deliberately does NOT create parent directories: after the
    coordinator sweeps the run dir a straggler's final flush must fail
    open, not resurrect ``.dist/<run_id>/`` as residue in the cache.
    """
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)
        return True
    except OSError:
        try:
            tmp.unlink()
        except OSError:
            pass
        return False


class WorkerObs:
    """One worker's spine endpoint: span buffer + registry + flusher.

    Records one ``wtask`` span per executed task (and one ``worker``
    lifecycle span covering join → last flush, so even a worker that
    never won an assignment is visible in the merged timeline), counts
    the same families the in-process executors derive from their
    ``ExecutorMetrics`` (``repro_steps_total{outcome=}``, the
    ``repro_step_wall_seconds`` histogram), and keeps fleet-only facts in
    gauges — normalization drops gauges, so per-worker identity never
    leaks into determinism-diffed renderings.
    """

    def __init__(self, run_dir: str | Path, worker_id: str) -> None:
        self.worker_id = worker_id
        self.pid = os.getpid()
        self.path = obs_dir(run_dir) / f"{worker_id}.segment.json"
        try:
            # Eager: the run dir is alive at join time. flush() never
            # mkdirs, so a post-sweep straggler cannot resurrect it.
            self.path.parent.mkdir(exist_ok=True)
        except OSError:
            pass
        self.started_ts = time.time()
        self.registry = MetricsRegistry()
        self.registry.set_gauge("repro_worker_up", self.pid, worker=worker_id)
        self._spans: list[dict[str, Any]] = []
        self._tasks = 0

    def record_task(
        self,
        step: str,
        epoch: int,
        outcome: str,
        attempts: int,
        start_ts: float,
        end_ts: float,
    ) -> None:
        self._tasks += 1
        self._spans.append(
            {
                "name": f"task:{step}",
                "cat": "wtask",
                "start_ts": start_ts,
                "end_ts": end_ts,
                "args": {
                    "step": step,
                    "epoch": epoch,
                    "outcome": outcome,
                    "attempts": attempts,
                },
            }
        )
        self.registry.inc("repro_steps_total", outcome=outcome)
        self.registry.observe("repro_step_wall_seconds", max(end_ts - start_ts, 0.0))
        self.registry.set_gauge("repro_worker_tasks", self._tasks, worker=self.worker_id)

    def flush(self) -> bool:
        """Atomically replace this worker's segment file (fail-open)."""
        now = time.time()
        spans = list(self._spans)
        spans.append(
            {
                "name": f"worker:{self.worker_id}",
                "cat": "worker",
                "start_ts": self.started_ts,
                "end_ts": now,
                "args": {"tasks": self._tasks},
            }
        )
        return _atomic_write_json(
            self.path,
            {
                "schema": SEGMENT_SCHEMA,
                "worker": self.worker_id,
                "pid": self.pid,
                "spans": spans,
                "registry": self.registry.snapshot(),
            },
        )


def load_segments(run_dir: str | Path) -> list[dict[str, Any]]:
    """Every readable worker segment under the run dir, sorted by worker.

    Torn, vanished, or malformed files are skipped — each segment is
    replaced atomically, so a bad read means a writer died mid-era and
    the previous (or no) era is the truth we have.
    """
    directory = obs_dir(run_dir)
    segments: list[dict[str, Any]] = []
    try:
        paths = sorted(directory.glob("*.segment.json"))
    except OSError:
        return segments
    for path in paths:
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(raw, dict) and raw.get("worker"):
            segments.append(raw)
    return segments


def merge_segments(
    run_dir: str | Path, tracer: Any | None = None
) -> dict[str, Any]:
    """Fold every worker segment into the tracer + one fleet registry.

    Returns ``{"workers": {worker_id: pid}, "registry": snapshot}`` for
    ``ExecutorMetrics.backend_stats``. Span timestamps rebase from wall
    clock onto the tracer's epoch (clamped non-negative: a skewed worker
    clock may not push events before the run started).
    """
    merged = MetricsRegistry()
    workers: dict[str, int] = {}
    for segment in load_segments(run_dir):
        worker = str(segment["worker"])
        pid = int(segment.get("pid", 0) or 0)
        workers[worker] = pid
        registry = segment.get("registry")
        if isinstance(registry, dict):
            merged.merge(registry)
        if tracer is None:
            continue
        for span in segment.get("spans") or []:
            try:
                start = max(float(span["start_ts"]) - tracer.epoch, 0.0)
                end = max(float(span["end_ts"]) - tracer.epoch, start)
                args = dict(span.get("args") or {})
            except (KeyError, TypeError, ValueError):
                continue
            tracer.add_span(
                str(span.get("name", "task")),
                str(span.get("cat", "wtask")),
                start,
                end,
                tid=f"dist:{worker}",
                worker=worker,
                worker_pid=pid,
                **args,
            )
    return {"workers": workers, "registry": merged.snapshot()}
