"""Figure-series model: plot-ready data with an ASCII fallback."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["FigureSeries", "ascii_bar_chart"]


def ascii_bar_chart(labels, values, width: int = 40, value_fmt=lambda v: f"{v:.2f}") -> str:
    """Horizontal ASCII bar chart, scaled to the maximum value."""
    labels = list(labels)
    values = [float(v) for v in values]
    if len(labels) != len(values):
        raise ValueError("labels and values length mismatch")
    if not labels:
        raise ValueError("empty chart")
    if any(v < 0 for v in values):
        raise ValueError("bar chart values must be non-negative")
    peak = max(values) or 1.0
    label_w = max(len(l) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(0, round(width * value / peak))
        lines.append(f"{label.ljust(label_w)}  {bar} {value_fmt(value)}")
    return "\n".join(lines)


@dataclass(frozen=True)
class FigureSeries:
    """One figure's data: named (x, y) series plus axis metadata.

    ``kind`` is a rendering hint ("line", "bar", "cdf", "scatter",
    "histogram"); exporters are free to ignore it.
    """

    title: str
    x_label: str
    y_label: str
    series: dict[str, tuple[np.ndarray, np.ndarray]]
    kind: str = "line"
    notes: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.series:
            raise ValueError(f"figure {self.title!r} has no series")
        for name, (x, y) in self.series.items():
            x = np.asarray(x)
            y = np.asarray(y)
            if x.shape != y.shape:
                raise ValueError(
                    f"series {name!r}: x shape {x.shape} != y shape {y.shape}"
                )
            if x.size == 0:
                raise ValueError(f"series {name!r} is empty")

    @property
    def series_names(self) -> tuple[str, ...]:
        return tuple(self.series)

    def to_dict(self) -> dict:
        """JSON-serializable export for external plotting."""
        return {
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "kind": self.kind,
            "notes": list(self.notes),
            "series": {
                name: {"x": np.asarray(x).tolist(), "y": np.asarray(y).tolist()}
                for name, (x, y) in self.series.items()
            },
        }

    def render_ascii(self, width: int = 60, height: int = 12) -> str:
        """Coarse ASCII plot: each series as its own mini-panel.

        Good enough to see shapes in a terminal; real plots come from
        :meth:`to_dict` + the user's plotting stack.
        """
        parts = [f"{self.title}  ({self.kind})", f"y: {self.y_label}   x: {self.x_label}"]
        for name, (x, y) in self.series.items():
            x = np.asarray(x, dtype=float)
            y = np.asarray(y, dtype=float)
            parts.append(f"-- {name} (n={x.size})")
            if x.size == 1:
                parts.append(f"   single point: ({x[0]:.3g}, {y[0]:.3g})")
                continue
            # Resample y onto `width` columns and draw one row per level.
            cols = np.interp(
                np.linspace(x.min(), x.max(), width), x, y
            )
            lo, hi = float(cols.min()), float(cols.max())
            span = hi - lo or 1.0
            levels = np.clip(((cols - lo) / span * (height - 1)).round(), 0, height - 1)
            grid = [[" "] * width for _ in range(height)]
            for col, level in enumerate(levels.astype(int)):
                grid[height - 1 - level][col] = "*"
            parts.append(f"   max {hi:.3g}")
            parts.extend("   |" + "".join(row) for row in grid)
            parts.append(f"   min {lo:.3g}")
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)
