"""Whole-report assembly: every artifact in one markdown document.

``build_report(study)`` renders the complete study report — front matter,
methodology summary, every table and figure in registry order, and a data-
quality appendix — as GitHub-flavored markdown, the format the repository's
EXPERIMENTS.md workflow consumes.
"""

from __future__ import annotations

from repro.analysis.quality import quality_report
from repro.core.metrics import ExecutorMetrics
from repro.core.study import Study
from repro.report.experiments import EXPERIMENTS, run_all_experiments_with_metrics
from repro.report.figures import FigureSeries
from repro.report.tables import Table, fmt_p, fmt_pct

__all__ = ["build_report", "render_report"]

_ORDER = (
    "T1", "T2", "F1", "T3", "F2", "T4", "T6", "T7", "T8",
    "F3", "F4", "T5", "F5", "F7", "F6", "F8",
    # extension experiments, when registered
    "X1", "X2", "X3", "X4", "X5", "X6", "X7", "X8", "X9", "X10",
)


def _front_matter(study: Study) -> list[str]:
    report = study.validation_report()
    months = study.window_seconds / (30.0 * 86400.0)
    return [
        "# Computation for Research: Practices and Trends — study report",
        "",
        "## Study overview",
        "",
        f"* baseline cohort ({study.baseline_cohort}): {len(study.baseline)} respondents",
        f"* current cohort ({study.current_cohort}): {len(study.current)} respondents",
        f"* survey completion rate: {fmt_pct(study.responses.completion_rate())}",
        f"* response validation: {'clean ingest' if report.ok else 'FATAL ISSUES'} "
        f"({len(report.issues)} quality flags)",
        f"* telemetry: {len(study.telemetry)} jobs over {months:.0f} months on "
        f"cluster '{study.cluster.name}' "
        f"({study.cluster.total_cores} cores, {study.cluster.total_gpus} GPUs)",
        "",
    ]


def _figure_block(figure: FigureSeries) -> list[str]:
    lines = [f"### {figure.title}", ""]
    lines.append("```")
    lines.append(figure.render_ascii(width=64, height=10))
    lines.append("```")
    lines.append("")
    for note in figure.notes:
        lines.append(f"_{note}_")
    if figure.notes:
        lines.append("")
    return lines


def _quality_appendix(study: Study) -> list[str]:
    quality = quality_report(study.responses)
    lines = ["## Appendix: data quality", ""]
    lines.append("Worst item nonresponse (rate of applicable respondents skipping):")
    lines.append("")
    for row in quality.worst_items(5):
        lines.append(
            f"* `{row.key}` ({row.cohort}): {fmt_pct(row.rate.estimate)} "
            f"of {row.n_applicable}"
        )
    lines.append("")
    for cohort, (q25, q50, q75) in sorted(quality.completion_quartiles.items()):
        lines.append(
            f"* completion quartiles {cohort}: "
            f"{fmt_pct(q25)} / {fmt_pct(q50)} / {fmt_pct(q75)}"
        )
    lines.append("")
    test = quality.field_missingness_test
    verdict = "differs" if test.significant() else "does not significantly differ"
    lines.append(
        f"Completion {verdict} across fields "
        f"(Kruskal-Wallis p = {fmt_p(test.p_value)})."
    )
    lines.append("")
    return lines


def _placeholder_block(eid: str, error: str) -> list[str]:
    """Clearly-marked stand-in for an experiment that failed to regenerate.

    The section keeps its slot in the document (same id comment, same
    position in ``_ORDER``) so a degraded report diffs cleanly against a
    healthy one: everything is identical except the failed sections.
    """
    experiment = EXPERIMENTS[eid]
    return [
        f"### {eid}: {experiment.title} — UNAVAILABLE",
        "",
        "> **This experiment failed to regenerate and was skipped.**",
        f"> error: `{error}`",
        ">",
        "> Every other section of this report is unaffected. Re-run without",
        "> `--keep-going` to abort on the first failure instead.",
        "",
    ]


def build_report(
    study: Study,
    include_quality_appendix: bool = True,
    *,
    max_workers: int | None = None,
    executor: str = "auto",
    on_error: str = "raise",
    metrics_out: list[ExecutorMetrics] | None = None,
) -> str:
    """Render the full study report as markdown.

    Artifact regeneration fans out over the experiment executor
    (``max_workers`` defaults to ``os.cpu_count()``); the document itself
    is assembled in registry order, so the rendered markdown is identical
    for every executor mode. Pass a list as ``metrics_out`` to receive the
    executor's :class:`~repro.core.metrics.ExecutorMetrics`.

    With ``on_error="keep_going"`` a failing experiment no longer aborts
    the document: its section renders as a clearly-marked placeholder
    carrying the captured error, and the inspectable failure list lands in
    the metrics (``metrics.steps_failed``, per-step ``outcome``/``error``).
    """
    artifacts, metrics = run_all_experiments_with_metrics(
        study, max_workers=max_workers, executor=executor, on_error=on_error
    )
    if metrics_out is not None:
        metrics_out.append(metrics)
    failures = {m.name: m.error for m in metrics.steps if m.outcome == "failed"}
    return render_report(
        study, artifacts, failures,
        include_quality_appendix=include_quality_appendix,
    )


def render_report(
    study: Study,
    artifacts: dict,
    failures: dict[str, str] | None = None,
    *,
    include_quality_appendix: bool = True,
) -> str:
    """Assemble the markdown document from already-produced artifacts.

    The rendering half of :func:`build_report`, split out so the durable
    path (``repro report --durable`` running
    :func:`repro.report.experiments.report_pipeline`) can render from
    pipeline outputs — including artifacts replayed from journal + cache
    on ``--resume`` — and produce a document byte-identical to the
    in-process path.
    """
    failures = failures or {}
    lines = _front_matter(study)
    if failures:
        failed_ids = ", ".join(sorted(failures))
        lines.append(
            f"> **DEGRADED REPORT** — {len(failures)} experiment(s) failed to "
            f"regenerate ({failed_ids}); their sections below are placeholders."
        )
        lines.append("")
    lines.append("## Results")
    lines.append("")
    for eid in _ORDER:
        artifact = artifacts.get(eid)
        if artifact is None:
            if eid in failures:
                lines.append(f"<!-- experiment {eid}: {EXPERIMENTS[eid].description} -->")
                lines.extend(_placeholder_block(eid, failures[eid]))
            continue
        lines.append(f"<!-- experiment {eid}: {EXPERIMENTS[eid].description} -->")
        if isinstance(artifact, Table):
            lines.append(artifact.render_markdown())
            lines.append("")
        else:
            lines.extend(_figure_block(artifact))
    if include_quality_appendix:
        lines.extend(_quality_appendix(study))
    return "\n".join(lines)
