"""Whole-report assembly: every artifact in one markdown document.

``build_report(study)`` renders the complete study report — front matter,
methodology summary, every table and figure in registry order, and a data-
quality appendix — as GitHub-flavored markdown, the format the repository's
EXPERIMENTS.md workflow consumes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.quality import quality_report
from repro.core.metrics import ExecutorMetrics
from repro.core.study import Study
from repro.report.experiments import EXPERIMENTS, run_all_experiments_with_metrics
from repro.report.figures import FigureSeries
from repro.report.tables import Table, fmt_p, fmt_pct

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (audit imports report)
    from repro.audit.concordance import ConcordanceReport

__all__ = ["build_report", "render_report", "render_report_card"]

_ORDER = (
    "T1", "T2", "F1", "T3", "F2", "T4", "T6", "T7", "T8",
    "F3", "F4", "T5", "F5", "F7", "F6", "F8",
    # extension experiments, when registered
    "X1", "X2", "X3", "X4", "X5", "X6", "X7", "X8", "X9", "X10",
)


def _front_matter(study: Study) -> list[str]:
    report = study.validation_report()
    months = study.window_seconds / (30.0 * 86400.0)
    return [
        "# Computation for Research: Practices and Trends — study report",
        "",
        "## Study overview",
        "",
        f"* baseline cohort ({study.baseline_cohort}): {len(study.baseline)} respondents",
        f"* current cohort ({study.current_cohort}): {len(study.current)} respondents",
        f"* survey completion rate: {fmt_pct(study.responses.completion_rate())}",
        f"* response validation: {'clean ingest' if report.ok else 'FATAL ISSUES'} "
        f"({len(report.issues)} quality flags)",
        f"* telemetry: {len(study.telemetry)} jobs over {months:.0f} months on "
        f"cluster '{study.cluster.name}' "
        f"({study.cluster.total_cores} cores, {study.cluster.total_gpus} GPUs)",
        "",
    ]


def _figure_block(figure: FigureSeries) -> list[str]:
    lines = [f"### {figure.title}", ""]
    lines.append("```")
    lines.append(figure.render_ascii(width=64, height=10))
    lines.append("```")
    lines.append("")
    for note in figure.notes:
        lines.append(f"_{note}_")
    if figure.notes:
        lines.append("")
    return lines


def _quality_appendix(study: Study) -> list[str]:
    quality = quality_report(study.responses)
    lines = ["## Appendix: data quality", ""]
    lines.append("Worst item nonresponse (rate of applicable respondents skipping):")
    lines.append("")
    for row in quality.worst_items(5):
        lines.append(
            f"* `{row.key}` ({row.cohort}): {fmt_pct(row.rate.estimate)} "
            f"of {row.n_applicable}"
        )
    lines.append("")
    for cohort, (q25, q50, q75) in sorted(quality.completion_quartiles.items()):
        lines.append(
            f"* completion quartiles {cohort}: "
            f"{fmt_pct(q25)} / {fmt_pct(q50)} / {fmt_pct(q75)}"
        )
    lines.append("")
    test = quality.field_missingness_test
    verdict = "differs" if test.significant() else "does not significantly differ"
    lines.append(
        f"Completion {verdict} across fields "
        f"(Kruskal-Wallis p = {fmt_p(test.p_value)})."
    )
    lines.append("")
    return lines


def _placeholder_block(eid: str, error: str) -> list[str]:
    """Clearly-marked stand-in for an experiment that failed to regenerate.

    The section keeps its slot in the document (same id comment, same
    position in ``_ORDER``) so a degraded report diffs cleanly against a
    healthy one: everything is identical except the failed sections.
    """
    experiment = EXPERIMENTS[eid]
    return [
        f"### {eid}: {experiment.title} — UNAVAILABLE",
        "",
        "> **This experiment failed to regenerate and was skipped.**",
        f"> error: `{error}`",
        ">",
        "> Every other section of this report is unaffected. Re-run without",
        "> `--keep-going` to abort on the first failure instead.",
        "",
    ]


def build_report(
    study: Study,
    include_quality_appendix: bool = True,
    *,
    max_workers: int | None = None,
    executor: str = "auto",
    on_error: str = "raise",
    metrics_out: list[ExecutorMetrics] | None = None,
) -> str:
    """Render the full study report as markdown.

    Artifact regeneration fans out over the experiment executor
    (``max_workers`` defaults to ``os.cpu_count()``); the document itself
    is assembled in registry order, so the rendered markdown is identical
    for every executor mode. Pass a list as ``metrics_out`` to receive the
    executor's :class:`~repro.core.metrics.ExecutorMetrics`.

    With ``on_error="keep_going"`` a failing experiment no longer aborts
    the document: its section renders as a clearly-marked placeholder
    carrying the captured error, and the inspectable failure list lands in
    the metrics (``metrics.steps_failed``, per-step ``outcome``/``error``).
    """
    artifacts, metrics = run_all_experiments_with_metrics(
        study, max_workers=max_workers, executor=executor, on_error=on_error
    )
    if metrics_out is not None:
        metrics_out.append(metrics)
    failures = {m.name: m.error for m in metrics.steps if m.outcome == "failed"}
    return render_report(
        study, artifacts, failures,
        include_quality_appendix=include_quality_appendix,
    )


def render_report(
    study: Study,
    artifacts: dict,
    failures: dict[str, str] | None = None,
    *,
    include_quality_appendix: bool = True,
) -> str:
    """Assemble the markdown document from already-produced artifacts.

    The rendering half of :func:`build_report`, split out so the durable
    path (``repro report --durable`` running
    :func:`repro.report.experiments.report_pipeline`) can render from
    pipeline outputs — including artifacts replayed from journal + cache
    on ``--resume`` — and produce a document byte-identical to the
    in-process path.
    """
    failures = failures or {}
    lines = _front_matter(study)
    if failures:
        failed_ids = ", ".join(sorted(failures))
        lines.append(
            f"> **DEGRADED REPORT** — {len(failures)} experiment(s) failed to "
            f"regenerate ({failed_ids}); their sections below are placeholders."
        )
        lines.append("")
    lines.append("## Results")
    lines.append("")
    for eid in _ORDER:
        artifact = artifacts.get(eid)
        if artifact is None:
            if eid in failures:
                lines.append(f"<!-- experiment {eid}: {EXPERIMENTS[eid].description} -->")
                lines.extend(_placeholder_block(eid, failures[eid]))
            continue
        lines.append(f"<!-- experiment {eid}: {EXPERIMENTS[eid].description} -->")
        if isinstance(artifact, Table):
            lines.append(artifact.render_markdown())
            lines.append("")
        else:
            lines.extend(_figure_block(artifact))
    if include_quality_appendix:
        lines.extend(_quality_appendix(study))
    return "\n".join(lines)


# -- reproducibility report card ----------------------------------------------

_VERDICT_HEADLINE = {
    "concordant": "CONCORDANT — every artifact byte-identical across all runs",
    "drift": "EXPECTED DRIFT — all divergence attributed to the declared scenario",
    "divergent": "DIVERGENT — unexplained byte drift detected",
}


def _card_matrix(report: "ConcordanceReport", normalize: bool) -> list[str]:
    lines = ["## Audit matrix", ""]
    if normalize:
        # Executor/worker labels are stripped like PR-5's normalized
        # Perfetto export (`_TIMING_ARGS`), so the same audit rendered
        # from any executor mode emits identical bytes.
        header = "| run | perturbation |"
        rule = "| --- | --- |"
    else:
        header = "| run | executor | perturbation | wall (s) | outcomes | run id |"
        rule = "| --- | --- | --- | --- | --- | --- |"
    lines += [header, rule]
    for record in report.runs:
        leg = record.perturbation
        flags = []
        if leg.warm_cache:
            flags.append("warm cache")
        if leg.crash_resume:
            flags.append(
                f"SIGKILL+resume ({record.resumed_steps} steps replayed)"
                if not normalize
                else "SIGKILL+resume"
            )
        if leg.fault_steps:
            flags.append(f"transient faults: {', '.join(leg.fault_steps)}")
        if leg.drift:
            flags.append(f"drift: {leg.drift}")
        perturbation = "; ".join(flags) if flags else "none (baseline conditions)"
        if normalize:
            lines.append(f"| {record.name} | {perturbation} |")
        else:
            outcomes = ", ".join(
                f"{k}={v}" for k, v in sorted(record.outcome_counts.items())
            )
            lines.append(
                f"| {record.name} | {leg.executor} | {perturbation} "
                f"| {record.wall_seconds:.2f} | {outcomes} | {record.run_id} |"
            )
    lines.append("")
    return lines


def _card_concordance(report: "ConcordanceReport") -> list[str]:
    legs = [r.name for r in report.runs[1:]]
    lines = ["## Concordance matrix", ""]
    lines.append(
        "Baseline digest per step; other runs show `=` on byte-identity or "
        "their own digest on divergence."
    )
    lines.append("")
    header = "| step | baseline | " + " | ".join(legs) + " | status |"
    rule = "| --- | --- | " + " | ".join("---" for _ in legs) + " | --- |"
    lines += [header, rule]
    for step in report.steps:
        cells = []
        for leg in legs:
            digest = step.digests.get(leg, "")
            if digest == step.baseline_digest:
                cells.append("=")
            else:
                cells.append(f"`{digest or 'missing'}`")
        if step.concordant:
            status = "ok"
        elif step.expected:
            status = "expected"
        else:
            status = "**UNEXPLAINED**"
        lines.append(
            f"| {step.step} | `{step.baseline_digest}` | "
            + " | ".join(cells)
            + f" | {status} |"
        )
    lines.append("")
    return lines


def _card_experiments(report: "ConcordanceReport") -> list[str]:
    lines = ["## Experiment sections", ""]
    for step in report.steps:
        if not step.step.startswith("exp:"):
            continue
        eid = step.step.removeprefix("exp:")
        title = EXPERIMENTS[eid].title if eid in EXPERIMENTS else eid
        if step.concordant:
            lines.append(f"* **PASS** — {step.step}: {title}")
        elif step.expected:
            lines.append(
                f"* **DRIFT** — {step.step}: {title} "
                f"(diverged on {', '.join(step.divergent_runs)}; "
                f"attributed to declared drift)"
            )
        else:
            lines.append(
                f"* **FAIL** — {step.step}: {title} "
                f"(unexplained divergence on {', '.join(step.divergent_runs)})"
            )
    lines.append("")
    return lines


def _card_divergence(report: "ConcordanceReport") -> list[str]:
    if report.concordant:
        return []
    lines = ["## Divergence localization", ""]
    lines.append(f"* first divergent step: `{report.first_divergence}`")
    subtree = report.affected_subtree()
    lines.append(f"* affected subtree: {' → '.join(f'`{s}`' for s in subtree)}")
    lines.append(
        "* localized: yes (single root cause)"
        if report.localized()
        else "* localized: NO — divergence outside the first step's subtree "
        "(at least two independent causes)"
    )
    if report.drift:
        lines.append("")
        lines.append(f"### Drift attribution: `{report.drift}`")
        lines.append("")
        lines.append(f"{report.drift_description}")
        lines.append("")
        origin = ", ".join(f"`{s}`" for s in report.drift_origin)
        lines.append(f"* declared entry point: {origin}")
        expected = ", ".join(f"`{s}`" for s in report.expected_steps) or "none"
        lines.append(f"* attributed (key-changed) steps: {expected}")
    unexplained = report.unexplained_steps
    if unexplained:
        lines.append(
            f"* **unexplained steps: {', '.join(f'`{s}`' for s in unexplained)}** "
            "— same cache key, different bytes; no declared cause"
        )
    lines.append("")
    return lines


def _card_timings(report: "ConcordanceReport") -> list[str]:
    if not report.timings:
        return []
    lines = ["## Timing deltas (trace-derived compute, seconds)", ""]
    legs = [r.name for r in report.runs[1:]]
    header = "| step | baseline | " + " | ".join(legs) + " |"
    rule = "| --- | --- | " + " | ".join("---" for _ in legs) + " |"
    lines += [header, rule]
    for delta in report.timings:
        cells = []
        for leg in legs:
            value = delta.seconds.get(leg)
            if value is None:
                cells.append("—")
                continue
            ratio = delta.ratio(leg)
            cells.append(
                f"{value:.3f}" + (f" ({ratio:.1f}x)" if ratio is not None else "")
            )
        lines.append(
            f"| {delta.step} | {delta.baseline_seconds:.3f} | "
            + " | ".join(cells)
            + " |"
        )
    lines.append("")
    return lines


def render_report_card(
    report: "ConcordanceReport", *, normalize: bool = False
) -> str:
    """Render a :class:`~repro.audit.concordance.ConcordanceReport` as the
    per-run reproducibility report card (markdown).

    ``normalize=True`` mirrors the PR-5 Perfetto contract: every timing-,
    host- and run-dependent field (wall seconds, run ids, executor and
    worker labels, the timing-delta section) is stripped, so a fixed
    seed/matrix renders byte-identically no matter which executor modes
    produced it — the audit determinism suite diffs exactly this output.
    """
    lines = [
        "# Reproducibility report card",
        "",
        f"**Verdict: {_VERDICT_HEADLINE[report.verdict]}**",
        "",
        f"* runs compared: {len(report.runs)} "
        f"(baseline: {report.baseline.name})",
        f"* steps audited: {len(report.steps)} "
        f"({sum(1 for s in report.steps if s.step.startswith('exp:'))} experiments)",
        f"* divergent steps: {len(report.divergent_steps)}",
        "",
    ]
    lines += _card_matrix(report, normalize)
    lines += _card_concordance(report)
    lines += _card_experiments(report)
    lines += _card_divergence(report)
    if not normalize:
        lines += _card_timings(report)
    text = "\n".join(lines)
    return text if text.endswith("\n") else text + "\n"
