"""Report layer: tables, figure series, and the experiment registry.

* :mod:`repro.report.tables` — :class:`Table` with ASCII/markdown renderers
  and the formatting helpers the study's tables share;
* :mod:`repro.report.figures` — :class:`FigureSeries`, a plot-ready data
  container with an ASCII fallback renderer;
* :mod:`repro.report.experiments` — the registry mapping every experiment id
  (T1..T8, F1..F8) to the function regenerating it from a
  :class:`~repro.core.Study`.
"""

from repro.report.tables import Table, fmt_ci, fmt_pct, fmt_p, significance_stars
from repro.report.figures import FigureSeries, ascii_bar_chart
from repro.report.experiments import (
    EXPERIMENTS,
    Experiment,
    run_all_experiments,
    run_experiment,
)
import repro.report.extensions  # noqa: F401  (registers X1-X10 on import)
from repro.report.document import build_report
from repro.report.svg import figure_to_svg

__all__ = [
    "Table",
    "fmt_pct",
    "fmt_ci",
    "fmt_p",
    "significance_stars",
    "FigureSeries",
    "ascii_bar_chart",
    "Experiment",
    "EXPERIMENTS",
    "run_experiment",
    "run_all_experiments",
    "build_report",
    "figure_to_svg",
]
