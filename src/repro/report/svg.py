"""Dependency-free SVG rendering of figure series.

The artifact pipeline runs in offline environments without matplotlib, so
this module renders :class:`~repro.report.FigureSeries` to standalone SVG:
line/CDF plots as polylines, bar/histogram figures as grouped rects, and
scatter figures as circles — with axes, tick labels, and a legend.
"""

from __future__ import annotations

from xml.sax.saxutils import escape

import numpy as np

from repro.report.figures import FigureSeries

__all__ = ["figure_to_svg", "PALETTE"]

PALETTE = (
    "#4477aa",
    "#ee6677",
    "#228833",
    "#ccbb44",
    "#66ccee",
    "#aa3377",
    "#bbbbbb",
    "#222222",
)

_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 64, 16, 36, 44


def _bounds(figure: FigureSeries) -> tuple[float, float, float, float]:
    xs = np.concatenate([np.asarray(x, dtype=float) for x, _ in figure.series.values()])
    ys = np.concatenate([np.asarray(y, dtype=float) for _, y in figure.series.values()])
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(min(ys.min(), 0.0)), float(ys.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    return x_lo, x_hi, y_lo, y_hi


class _Scale:
    def __init__(self, figure: FigureSeries, width: int, height: int) -> None:
        self.x_lo, self.x_hi, self.y_lo, self.y_hi = _bounds(figure)
        self.plot_w = width - _MARGIN_L - _MARGIN_R
        self.plot_h = height - _MARGIN_T - _MARGIN_B

    def x(self, value: float) -> float:
        frac = (value - self.x_lo) / (self.x_hi - self.x_lo)
        return _MARGIN_L + frac * self.plot_w

    def y(self, value: float) -> float:
        frac = (value - self.y_lo) / (self.y_hi - self.y_lo)
        return _MARGIN_T + (1.0 - frac) * self.plot_h


def _axes(figure: FigureSeries, scale: _Scale, width: int, height: int) -> list[str]:
    x0, y0 = _MARGIN_L, _MARGIN_T
    x1, y1 = width - _MARGIN_R, height - _MARGIN_B
    parts = [
        f'<rect x="{x0}" y="{y0}" width="{x1 - x0}" height="{y1 - y0}" '
        'fill="none" stroke="#888" stroke-width="1"/>',
        f'<text x="{(x0 + x1) / 2:.0f}" y="{height - 8}" text-anchor="middle" '
        f'class="lbl">{escape(figure.x_label[:80])}</text>',
        f'<text x="14" y="{(y0 + y1) / 2:.0f}" text-anchor="middle" class="lbl" '
        f'transform="rotate(-90 14 {(y0 + y1) / 2:.0f})">'
        f"{escape(figure.y_label[:60])}</text>",
        f'<text x="{x0}" y="{_MARGIN_T - 12}" class="title">'
        f"{escape(figure.title)}</text>",
    ]
    # Min/max tick labels on both axes.
    parts.append(
        f'<text x="{x0}" y="{y1 + 16}" class="tick">{scale.x_lo:.3g}</text>'
    )
    parts.append(
        f'<text x="{x1}" y="{y1 + 16}" text-anchor="end" class="tick">'
        f"{scale.x_hi:.3g}</text>"
    )
    parts.append(
        f'<text x="{x0 - 6}" y="{y1}" text-anchor="end" class="tick">'
        f"{scale.y_lo:.3g}</text>"
    )
    parts.append(
        f'<text x="{x0 - 6}" y="{y0 + 10}" text-anchor="end" class="tick">'
        f"{scale.y_hi:.3g}</text>"
    )
    return parts


def _legend(figure: FigureSeries) -> list[str]:
    parts = []
    x = _MARGIN_L + 8
    y = _MARGIN_T + 14
    for i, name in enumerate(figure.series_names):
        color = PALETTE[i % len(PALETTE)]
        parts.append(
            f'<rect x="{x}" y="{y - 9 + i * 16}" width="10" height="10" '
            f'fill="{color}"/>'
        )
        parts.append(
            f'<text x="{x + 14}" y="{y + i * 16}" class="tick">'
            f"{escape(str(name))}</text>"
        )
    return parts


def _line_marks(figure: FigureSeries, scale: _Scale) -> list[str]:
    parts = []
    for i, (name, (xs, ys)) in enumerate(figure.series.items()):
        color = PALETTE[i % len(PALETTE)]
        points = " ".join(
            f"{scale.x(float(x)):.1f},{scale.y(float(y)):.1f}"
            for x, y in zip(np.asarray(xs, dtype=float), np.asarray(ys, dtype=float))
        )
        parts.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            'stroke-width="1.8"/>'
        )
    return parts


def _scatter_marks(figure: FigureSeries, scale: _Scale) -> list[str]:
    parts = []
    for i, (name, (xs, ys)) in enumerate(figure.series.items()):
        color = PALETTE[i % len(PALETTE)]
        for x, y in zip(np.asarray(xs, dtype=float), np.asarray(ys, dtype=float)):
            parts.append(
                f'<circle cx="{scale.x(float(x)):.1f}" cy="{scale.y(float(y)):.1f}" '
                f'r="3.5" fill="{color}" fill-opacity="0.8"/>'
            )
    return parts


def _bar_marks(figure: FigureSeries, scale: _Scale) -> list[str]:
    parts = []
    n_series = len(figure.series)
    # Bar width from the minimum x spacing of the first series.
    first_x = np.asarray(next(iter(figure.series.values()))[0], dtype=float)
    spacing = float(np.diff(np.sort(first_x)).min()) if first_x.size > 1 else 1.0
    group_w = abs(scale.x(spacing) - scale.x(0.0)) * 0.8
    bar_w = max(1.0, group_w / max(n_series, 1))
    baseline = scale.y(max(0.0, scale.y_lo))
    for i, (name, (xs, ys)) in enumerate(figure.series.items()):
        color = PALETTE[i % len(PALETTE)]
        for x, y in zip(np.asarray(xs, dtype=float), np.asarray(ys, dtype=float)):
            top = scale.y(float(y))
            left = scale.x(float(x)) - group_w / 2 + i * bar_w
            height = abs(baseline - top)
            parts.append(
                f'<rect x="{left:.1f}" y="{min(top, baseline):.1f}" '
                f'width="{bar_w:.1f}" height="{height:.1f}" fill="{color}" '
                'fill-opacity="0.85"/>'
            )
    return parts


def figure_to_svg(figure: FigureSeries, width: int = 640, height: int = 360) -> str:
    """Render a figure to a standalone SVG document string."""
    if width < 160 or height < 120:
        raise ValueError("svg too small to draw axes")
    scale = _Scale(figure, width, height)
    if figure.kind in ("bar", "histogram"):
        marks = _bar_marks(figure, scale)
    elif figure.kind == "scatter":
        marks = _scatter_marks(figure, scale)
    else:  # line, cdf, anything else: polylines
        marks = _line_marks(figure, scale)
    notes = []
    for i, note in enumerate(figure.notes[:2]):
        notes.append(
            f'<text x="{_MARGIN_L}" y="{height - 26 + i * 12}" class="tick">'
            f"{escape(note[:110])}</text>"
        )
    body = "\n".join(_axes(figure, scale, width, height) + marks + _legend(figure) + notes)
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">\n'
        "<style>"
        ".title{font:bold 13px sans-serif} .lbl{font:11px sans-serif} "
        ".tick{font:10px sans-serif; fill:#444}"
        "</style>\n"
        f'<rect width="{width}" height="{height}" fill="white"/>\n'
        f"{body}\n</svg>\n"
    )
