"""Extension experiments (X1-X5): analyses beyond the paper's core set.

These cover the optional/extension analyses DESIGN.md calls out: the
queueing curve, within-person (panel) adoption, weighted-vs-raw estimates,
submission rhythm, and walltime-request accuracy. They register into the
same registry as T1-T8/F1-F8 and get the same per-experiment benches.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.balance import cohort_balance
from repro.analysis.environment import environment_summary
from repro.analysis.panel import paired_multi_change, paired_yes_no_change
from repro.cluster.capacity import gpu_capacity_outlook
from repro.cluster.health import failure_rates_by, waste_summary
from repro.text.topics import code_challenges
from repro.cluster.usage import arrival_profile, monthly_wait_and_load, walltime_accuracy
from repro.core.calibration import population_field_shares, profile_2011, profile_2024
from repro.core.study import Study
from repro.core.trends import TrendEngine
from repro.core.weighting import WeightedTrendEngine
from repro.report.experiments import EXPERIMENTS, Experiment
from repro.report.figures import FigureSeries
from repro.report.tables import Table, fmt_p, fmt_pct, significance_stars

__all__ = ["register_extensions"]


def x1_wait_vs_load(study: Study) -> FigureSeries:
    """X1: the queueing curve — monthly median wait against offered load."""
    series = {}
    for name in ("cpu", "gpu"):
        if name not in study.cluster:
            continue
        part = study.cluster[name]
        data = monthly_wait_and_load(study.telemetry, name, part.total_cores)
        series[name] = (data["load"], data["median_wait_h"])
    if not series:
        raise ValueError("no cpu/gpu partitions in telemetry")
    return FigureSeries(
        title="X1: median queue wait vs offered load, by month",
        x_label="offered load (fraction of partition core-capacity)",
        y_label="median wait (h)",
        series=series,
        kind="scatter",
        notes=("each point is one month of one partition",),
    )


_PANEL_SIZE = 150


def _panel_for(study: Study):
    # The panel is an auxiliary synthesized sample (the real study links
    # repeat respondents by email hash); seeded independently of the study
    # so panel size changes never perturb the main cohorts.
    from repro.synth.panel import generate_panel

    return generate_panel(
        profile_2011(),
        profile_2024(),
        study.responses.questionnaire,
        _PANEL_SIZE,
        np.random.default_rng(20112024),
    )


def x2_panel_adoption(study: Study) -> Table:
    """X2: within-person adoption among panel respondents (McNemar)."""
    panel = _panel_for(study)
    changes = [
        paired_yes_no_change(panel, "uses_ml", label="machine learning"),
        paired_yes_no_change(panel, "uses_gpu", label="GPU use"),
        paired_yes_no_change(panel, "uses_containers", label="containers"),
        paired_multi_change(panel, "languages", "python", label="python"),
        paired_multi_change(panel, "languages", "fortran", label="fortran"),
    ]
    rows = []
    for change in changes:
        p = change.test.p_value
        rows.append(
            (
                change.label,
                str(change.n_pairs),
                str(change.adopters),
                str(change.abandoners),
                f"{change.net_change:+.1%}" if change.n_pairs else "-",
                f"{fmt_p(p)}{significance_stars(p)}",
            )
        )
    return Table(
        title="X2: within-person practice changes (panel respondents)",
        columns=("practice", "pairs", "adopted", "abandoned", "net", "McNemar p"),
        rows=tuple(rows),
        notes=(f"panel of {_PANEL_SIZE} respondents answering both waves",),
    )


def x3_weighted_vs_raw(study: Study) -> Table:
    """X3: post-stratified vs raw headline estimates."""
    targets = {"field": population_field_shares()}
    raw = TrendEngine(study.responses, study.baseline_cohort, study.current_cohort)
    weighted = WeightedTrendEngine(
        study.responses, targets, study.baseline_cohort, study.current_cohort
    )
    rows = []
    for key in ("uses_parallelism", "uses_cluster", "uses_gpu", "uses_ml", "uses_containers"):
        raw_row = raw.yes_no_trend(key)
        w_row = weighted.yes_no_trend(key)
        rows.append(
            (
                key,
                fmt_pct(raw_row.current.estimate),
                fmt_pct(w_row.current.estimate),
                f"{100 * (w_row.current.estimate - raw_row.current.estimate):+.1f}pp",
                str(w_row.n_current),
            )
        )
    return Table(
        title="X3: raw vs post-stratified 2024 estimates",
        columns=("practice", "raw", "weighted", "design shift", "effective n"),
        rows=tuple(rows),
        notes=("raking margin: field of research to campus population shares",),
    )


def x4_arrival_rhythm(study: Study) -> FigureSeries:
    """X4: submission rhythm — hour-of-day and day-of-week profiles."""
    profile = arrival_profile(study.telemetry)
    hourly = profile["hourly"].astype(float)
    weekly = profile["weekly"].astype(float)
    return FigureSeries(
        title="X4: submission rhythm",
        x_label="hour of day (hourly series) / day of week (weekly series, 0=Mon)",
        y_label="submissions",
        series={
            "hourly": (np.arange(24, dtype=float), hourly),
            "weekly": (np.arange(7, dtype=float), weekly),
        },
        kind="bar",
        notes=(
            f"peak hour {int(hourly.argmax())}:00 at "
            f"{hourly.max() / max(hourly.min(), 1):.1f}x the trough",
        ),
    )


def x5_walltime_accuracy(study: Study) -> Table:
    """X5: walltime-request accuracy over completed jobs."""
    overall = walltime_accuracy(study.telemetry)
    rows = [
        (
            "all partitions",
            str(int(overall["n"])),
            f"{overall['q25']:.2f}",
            f"{overall['median']:.2f}",
            f"{overall['q75']:.2f}",
            fmt_pct(overall["near_miss_share"]),
        )
    ]
    for name in study.telemetry.partitions():
        part = study.telemetry.by_partition(name)
        try:
            acc = walltime_accuracy(part)
        except ValueError:
            continue
        rows.append(
            (
                name,
                str(int(acc["n"])),
                f"{acc['q25']:.2f}",
                f"{acc['median']:.2f}",
                f"{acc['q75']:.2f}",
                fmt_pct(acc["near_miss_share"]),
            )
        )
    return Table(
        title="X5: walltime-request accuracy (runtime / requested)",
        columns=("partition", "n", "q25", "median", "q75", "near-miss (>0.9)"),
        rows=tuple(rows),
        notes=("completed jobs with a recorded time limit",),
    )


def x6_work_environment(study: Study) -> Table:
    """X6: OS, editors, weekly hours, training, and open-source trends."""
    summary = environment_summary(
        study.responses, study.baseline_cohort, study.current_cohort
    )
    rows = []
    ct = summary.os_by_cohort
    shares = ct.row_shares()
    for i, os_name in enumerate(ct.row_labels):
        rendered = " / ".join(
            f"{cohort}: {fmt_pct(shares[i, j])}"
            for j, cohort in enumerate(ct.col_labels)
        )
        rows.append((f"os: {os_name}", rendered))
    for row in summary.editor_trends.sorted_by_delta():
        p = row.adjusted_p if row.adjusted_p is not None else row.p_value
        rows.append(
            (
                f"editor: {row.label}",
                f"{fmt_pct(row.baseline.estimate)} -> {fmt_pct(row.current.estimate)} "
                f"({fmt_p(p)}{significance_stars(p)})",
            )
        )
    for cohort, s in sorted(summary.hours_per_week.items()):
        rows.append((f"hours/week ({cohort})", f"median {s.median:.0f}, q75 {s.q75:.0f}"))
    for trend in (summary.hpc_training, summary.open_source):
        p = trend.p_value
        rows.append(
            (
                trend.label,
                f"{fmt_pct(trend.baseline.estimate)} -> {fmt_pct(trend.current.estimate)} "
                f"({fmt_p(p)}{significance_stars(p)})",
            )
        )
    return Table(
        title="X6: work environment",
        columns=("item", "value"),
        rows=tuple(rows),
        notes=("editor family Holm-corrected; HPC training among cluster users",),
    )


def x7_challenge_topics(study: Study) -> Table:
    """X7: coded "biggest challenge" topics by cohort."""
    rows = []
    per_cohort = {
        cohort: code_challenges(subset)
        for cohort, subset in study.responses.split_cohorts().items()
    }
    cohorts = sorted(per_cohort)
    # Tie-break equal counts by name: a bare count sort would fall back to
    # set iteration order, which is hash-seed-dependent (caught by the
    # golden-artifact suite).
    all_topics = sorted(
        {topic for coded in per_cohort.values() for topic in coded.counts},
        key=lambda t: (-sum(per_cohort[c].counts.get(t, 0) for c in cohorts), t),
    )
    for topic in all_topics:
        cells = [topic]
        for cohort in cohorts:
            coded = per_cohort[cohort]
            if coded.n_documents:
                cells.append(
                    f"{coded.counts.get(topic, 0)} ({fmt_pct(coded.share(topic))})"
                )
            else:
                cells.append("-")
        rows.append(tuple(cells))
    notes = tuple(
        f"{cohort}: {per_cohort[cohort].n_documents} answers coded, "
        f"{per_cohort[cohort].n_uncoded} uncoded"
        for cohort in cohorts
    )
    return Table(
        title="X7: biggest-challenge topics by cohort (multi-label coding)",
        columns=("topic", *cohorts),
        rows=tuple(rows),
        notes=notes,
    )


def x8_waste_and_failures(study: Study) -> Table:
    """X8: wasted core-hours and failure rates by partition."""
    waste = waste_summary(study.telemetry)
    rows = [
        (
            "wasted core-hours (all states)",
            f"{sum(waste.wasted_core_hours.values()):,.0f} of "
            f"{waste.total_core_hours:,.0f} ({fmt_pct(waste.waste_fraction)})",
        )
    ]
    for state, hours in sorted(waste.wasted_core_hours.items()):
        rows.append((f"  {state.lower()}", f"{hours:,.0f} core-hours"))
    for partition, interval in failure_rates_by(study.telemetry, "partition").items():
        rows.append(
            (
                f"failure rate: {partition}",
                f"{fmt_pct(interval.estimate)} "
                f"[{fmt_pct(interval.low)}, {fmt_pct(interval.high)}]",
            )
        )
    return Table(
        title="X8: wasted capacity and failure rates",
        columns=("quantity", "value"),
        rows=tuple(rows),
        notes=("failure rate counts FAILED + TIMEOUT terminal states",),
    )


def x9_capacity_outlook(study: Study) -> Table:
    """X9: GPU capacity projection from the fitted demand growth."""
    outlook = gpu_capacity_outlook(study.telemetry, study.cluster["gpu"])
    util_now = (
        outlook.current_monthly_gpu_hours / outlook.capacity_monthly_gpu_hours
    )
    saturation = (
        f"{outlook.months_to_saturation:.0f} months"
        if np.isfinite(outlook.months_to_saturation)
        else "never (no growth)"
    )
    doubling = (
        f"{outlook.months_bought_by_doubling:.0f} months"
        if np.isfinite(outlook.months_bought_by_doubling)
        else "-"
    )
    rows = (
        ("current demand", f"{outlook.current_monthly_gpu_hours:,.0f} GPU-h/month"),
        ("capacity", f"{outlook.capacity_monthly_gpu_hours:,.0f} GPU-h/month"),
        ("current load", fmt_pct(util_now)),
        ("fitted growth", f"{100 * outlook.growth_per_month:+.1f}%/month"),
        ("projected saturation", saturation),
        ("time bought by doubling capacity", doubling),
    )
    return Table(
        title="X9: GPU capacity outlook",
        columns=("quantity", "value"),
        rows=rows,
        notes=(
            "exponential projection from the telemetry window; "
            "a capacity doubling buys log2/log(1+g) months regardless of size",
        ),
    )


def x10_cohort_balance(study: Study) -> Table:
    """X10: covariate balance between the waves (methods companion to T1)."""
    report = cohort_balance(
        study.responses, study.baseline_cohort, study.current_cohort
    )
    rows = []
    for row in report.rows:
        rows.append(
            (
                row.covariate,
                f"{row.mean_a:.2f}",
                f"{row.mean_b:.2f}",
                f"{row.std_diff:+.2f}",
                "ok" if row.balanced else "IMBALANCED",
            )
        )
    return Table(
        title="X10: cohort covariate balance",
        columns=(
            "covariate",
            report.cohort_a,
            report.cohort_b,
            "std diff",
            "|d|<0.1",
        ),
        rows=tuple(rows),
        notes=(
            f"max |standardized difference| = {report.max_abs_std_diff:.2f}; "
            "category rows are indicator means",
        ),
    )


_EXTENSIONS = (
    Experiment("X1", "Wait vs load", "figure", x1_wait_vs_load,
               "Queueing curve: monthly median wait against offered load."),
    Experiment("X2", "Panel adoption", "table", x2_panel_adoption,
               "Within-person adoption among panel respondents (McNemar)."),
    Experiment("X3", "Weighted vs raw", "table", x3_weighted_vs_raw,
               "Post-stratified vs raw headline estimates."),
    Experiment("X4", "Submission rhythm", "figure", x4_arrival_rhythm,
               "Hour-of-day / day-of-week submission profiles."),
    Experiment("X5", "Walltime accuracy", "table", x5_walltime_accuracy,
               "Requested-vs-actual runtime accuracy."),
    Experiment("X6", "Work environment", "table", x6_work_environment,
               "OS, editors, weekly hours, training, open-source trends."),
    Experiment("X7", "Challenge topics", "table", x7_challenge_topics,
               "Coded biggest-challenge topics per cohort."),
    Experiment("X8", "Waste and failures", "table", x8_waste_and_failures,
               "Wasted core-hours and failure rates by partition."),
    Experiment("X9", "Capacity outlook", "table", x9_capacity_outlook,
               "GPU saturation projection from fitted demand growth."),
    Experiment("X10", "Cohort balance", "table", x10_cohort_balance,
               "Standardized demographic differences between waves."),
)


def register_extensions() -> None:
    """Idempotently add X1-X5 to the experiment registry."""
    for experiment in _EXTENSIONS:
        EXPERIMENTS.setdefault(experiment.id, experiment)


register_extensions()
