"""The experiment registry: every table and figure, regenerable by id.

Each experiment is a pure function ``Study -> Table | FigureSeries``. The
registry powers the examples, the benchmark harness (one bench per entry),
and EXPERIMENTS.md. Ids follow DESIGN.md: T1-T8 tables, F1-F8 figures.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence, Union

import numpy as np

from repro.analysis.concordance import gpu_concordance
from repro.analysis.demographics import demographics_table
from repro.analysis.languages import language_shares, language_trend_series
from repro.analysis.ml_adoption import ml_adoption_summary
from repro.analysis.parallelism import (
    gpu_adoption_by_field,
    parallel_mode_trends,
    parallelism_rates,
)
from repro.analysis.practices import practices_trends
from repro.analysis.storage import storage_summary
from repro.analysis.telemetry import (
    cpu_hours_figure,
    gpu_growth_figure,
    job_width_figure,
    queue_wait_table,
    runtime_figure,
)
from repro.analysis.training import training_summary
from repro.core.metrics import ExecutorMetrics, RunReport, StepOutcome
from repro.core.study import Study
from repro.core.trends import TrendRow
from repro.report.figures import FigureSeries
from repro.report.tables import Table, fmt_ci, fmt_p, fmt_pct, significance_stars
from repro.text.cooccurrence import build_cooccurrence_graph, cooccurrence_summary
from repro.text.mentions import extract_mentions

__all__ = [
    "Experiment",
    "EXPERIMENTS",
    "run_experiment",
    "run_all_experiments",
    "run_all_experiments_with_metrics",
    "report_pipeline",
]

Artifact = Union[Table, FigureSeries]


@dataclass(frozen=True)
class Experiment:
    """One registered experiment.

    Attributes
    ----------
    id:
        Stable identifier (``T1``..``T8``, ``F1``..``F8``).
    title:
        Human title used in the rendered artifact.
    kind:
        ``"table"`` or ``"figure"``.
    fn:
        ``Study -> Table | FigureSeries``.
    description:
        One-line summary used in EXPERIMENTS.md.
    """

    id: str
    title: str
    kind: str
    fn: Callable[[Study], Artifact]
    description: str


def _trend_row_cells(row: TrendRow) -> tuple[str, ...]:
    p = row.adjusted_p if row.adjusted_p is not None else row.p_value
    return (
        row.label,
        f"{fmt_pct(row.baseline.estimate)} {fmt_ci(row.baseline.low, row.baseline.high)}",
        f"{fmt_pct(row.current.estimate)} {fmt_ci(row.current.low, row.current.high)}",
        f"{100.0 * row.delta:+.1f}pp",
        f"{fmt_p(p)}{significance_stars(p)}",
    )


_TREND_COLUMNS = ("practice", "2011", "2024", "change", "p (adj)")


# -- T1 ---------------------------------------------------------------------


def t1_demographics(study: Study) -> Table:
    result = demographics_table(study.responses)
    ct = result.field_by_cohort
    shares = ct.row_shares()
    rows = []
    for i, field_name in enumerate(ct.row_labels):
        cells = [field_name]
        for j, cohort in enumerate(ct.col_labels):
            cells.append(f"{int(ct.counts[i, j])} ({fmt_pct(shares[i, j])})")
        rows.append(tuple(cells))
    years = "; ".join(
        f"{cohort}: median {s.median:.0f}y" for cohort, s in sorted(result.years_programming.items())
    )
    return Table(
        title="T1: respondent demographics by field",
        columns=("field", *ct.col_labels),
        rows=tuple(rows),
        notes=(
            f"n = {result.response_counts}",
            f"years programming: {years}",
            f"field x cohort chi2 p = {fmt_p(ct.test.p_value)}",
        ),
    )


# -- T2 / F1 ------------------------------------------------------------------


def t2_languages(study: Study) -> Table:
    shares = language_shares(study.responses)
    cohorts = sorted(shares)
    by_language: dict[str, dict[str, str]] = {}
    for cohort in cohorts:
        for s in shares[cohort]:
            by_language.setdefault(s.language, {})[cohort] = (
                f"{fmt_pct(s.interval.estimate)} {fmt_ci(s.interval.low, s.interval.high)}"
            )
    rows = [
        (language, *[cells.get(c, "-") for c in cohorts])
        for language, cells in by_language.items()
    ]
    # Sort by current-cohort share, descending (how the paper lists them).
    current = cohorts[-1]
    current_share = {
        s.language: s.interval.estimate for s in shares[current]
    }
    rows.sort(key=lambda r: -current_share.get(r[0], 0.0))
    return Table(
        title="T2: programming language use by cohort (multi-select)",
        columns=("language", *cohorts),
        rows=tuple(rows),
        notes=("shares of respondents answering the languages item; Wilson 95% CIs",),
    )


def f1_language_trend(study: Study) -> FigureSeries:
    table = language_trend_series(study.responses)
    labels = [row.label for row in table]
    x = np.arange(len(labels), dtype=float)
    series = {
        "2011": (x, np.array([row.baseline.estimate for row in table])),
        "2024": (x, np.array([row.current.estimate for row in table])),
    }
    return FigureSeries(
        title="F1: language popularity, 2011 vs 2024",
        x_label="language (sorted by |change|): " + ", ".join(labels),
        y_label="share of respondents",
        series=series,
        kind="bar",
        notes=("Holm-corrected two-proportion tests; see T2 for CIs",),
    )


# -- T3 / F2 ---------------------------------------------------------------------


def t3_parallelism(study: Study) -> Table:
    headline = parallelism_rates(study.responses)
    modes = parallel_mode_trends(study.responses)
    rows = [
        _trend_row_cells(headline.uses_parallelism),
        _trend_row_cells(headline.uses_cluster),
        _trend_row_cells(headline.uses_gpu),
    ]
    rows.extend(_trend_row_cells(row) for row in modes.sorted_by_delta())
    return Table(
        title="T3: parallelism modality use by cohort",
        columns=_TREND_COLUMNS,
        rows=tuple(rows),
        notes=(
            "headline rows over all respondents; modality rows over parallel users",
            "modality family Holm-corrected",
        ),
    )


def f2_gpu_by_field(study: Study) -> FigureSeries:
    adoption = gpu_adoption_by_field(study.responses, cohort=study.current_cohort)
    if not adoption:
        raise ValueError("no field passes the minimum-n filter for F2")
    x = np.arange(len(adoption), dtype=float)
    estimates = np.array([a.interval.estimate for a in adoption])
    lows = np.array([a.interval.low for a in adoption])
    highs = np.array([a.interval.high for a in adoption])
    return FigureSeries(
        title="F2: GPU adoption by field (2024 cohort)",
        x_label="field: " + ", ".join(a.field for a in adoption),
        y_label="share reporting GPU use",
        series={"estimate": (x, estimates), "ci_low": (x, lows), "ci_high": (x, highs)},
        kind="bar",
        notes=(f"fields with n >= 5 answerers; Wilson 95% CIs",),
    )


# -- T4 -----------------------------------------------------------------------


def t4_ml_frameworks(study: Study) -> Table:
    summary = ml_adoption_summary(study.responses)
    rows = [_trend_row_cells(summary.adoption)]
    framework_rows = sorted(
        summary.framework_shares.items(), key=lambda kv: -kv[1].estimate
    )
    for framework, interval in framework_rows:
        rows.append(
            (
                f"  {framework}",
                "-",
                f"{fmt_pct(interval.estimate)} {fmt_ci(interval.low, interval.high)}",
                "-",
                "-",
            )
        )
    return Table(
        title="T4: machine-learning adoption and frameworks",
        columns=_TREND_COLUMNS,
        rows=tuple(rows),
        notes=(
            f"framework shares among the {summary.n_ml_users} 2024 ML users "
            "who listed frameworks",
        ),
    )


# -- T6 / T7 / T8 -----------------------------------------------------------------


def t6_practices(study: Study) -> Table:
    table = practices_trends(study.responses)
    return Table(
        title="T6: software-engineering practice adoption",
        columns=_TREND_COLUMNS,
        rows=tuple(_trend_row_cells(row) for row in table),
        notes=("family Holm-corrected",),
    )


def t7_training(study: Study) -> Table:
    summary = training_summary(study.responses)
    ct = summary.training_by_cohort
    shares = ct.row_shares()
    rows = []
    for i, label in enumerate(ct.row_labels):
        cells = [label]
        for j in range(len(ct.col_labels)):
            cells.append(f"{int(ct.counts[i, j])} ({fmt_pct(shares[i, j])})")
        rows.append(tuple(cells))
    means = "; ".join(f"{c}: {m:.2f}/5" for c, m in sorted(summary.expertise_means.items()))
    return Table(
        title="T7: training background and self-rated expertise",
        columns=("training", *ct.col_labels),
        rows=tuple(rows),
        notes=(
            f"mean expertise {means}",
            f"Mann-Whitney p = {fmt_p(summary.expertise_test.p_value)}, "
            f"rank-biserial = {summary.expertise_effect:+.2f}",
        ),
    )


def t8_storage(study: Study) -> Table:
    summary = storage_summary(study.responses)
    ct = summary.scale_by_cohort
    shares = ct.row_shares()
    rows = []
    for i, label in enumerate(ct.row_labels):
        cells = [label]
        for j in range(len(ct.col_labels)):
            cells.append(f"{int(ct.counts[i, j])} ({fmt_pct(shares[i, j])})")
        rows.append(tuple(cells))
    return Table(
        title="T8: typical project data scale by cohort",
        columns=("data scale", *ct.col_labels),
        rows=tuple(rows),
        notes=(
            f"ordinal shift: Mann-Whitney p = {fmt_p(summary.scale_shift_test.p_value)}, "
            f"rank-biserial = {summary.scale_shift_effect:+.2f}",
            "storage-location trends reported in the locations panel",
        ),
    )


# -- telemetry figures --------------------------------------------------------------


def f3_cpu_hours(study: Study) -> FigureSeries:
    per_field = cpu_hours_figure(study)
    total = per_field.pop("__total__")
    months = np.arange(total.size, dtype=float)
    series = {name: (months, hours) for name, hours in per_field.items()}
    series["total"] = (months, total)
    return FigureSeries(
        title="F3: monthly CPU-hours by field",
        x_label="month of study window",
        y_label="CPU-hours",
        series=series,
        kind="line",
    )


def f4_job_width_cdf(study: Study) -> FigureSeries:
    dists = job_width_figure(study)
    series = {name: (dist.widths, dist.cdf) for name, dist in dists.items()}
    notes = []
    for name, dist in dists.items():
        biggest = max(dist.weighted_share.items(), key=lambda kv: kv[1])
        notes.append(
            f"{name}: width class {biggest[0]} holds {fmt_pct(biggest[1])} of core-hours"
        )
    return FigureSeries(
        title="F4: job width CDF, CPU vs GPU jobs",
        x_label="cores per job",
        y_label="fraction of jobs <= width",
        series=series,
        kind="cdf",
        notes=tuple(notes),
    )


def t5_queue_wait(study: Study) -> Table:
    stats = queue_wait_table(study)
    columns = ("partition", "n", "median (h)", "mean (h)", "p95 (h)")
    rows = []
    for partition in sorted(stats):
        s = stats[partition]
        rows.append(
            (
                partition,
                f"{int(s['n'])}",
                f"{s['median_h']:.2f}",
                f"{s['mean_h']:.2f}",
                f"{s['p95_h']:.2f}",
            )
        )
    width_notes = []
    for partition in sorted(stats):
        per_width = {
            k.removeprefix("median_h["). removesuffix("]"): v
            for k, v in stats[partition].items()
            if k.startswith("median_h[")
        }
        if per_width:
            rendered = ", ".join(f"{w}: {v:.2f}h" for w, v in per_width.items())
            width_notes.append(f"{partition} median by width: {rendered}")
    return Table(
        title="T5: queue wait by partition",
        columns=columns,
        rows=tuple(rows),
        notes=tuple(width_notes),
    )


def f5_gpu_growth(study: Study) -> FigureSeries:
    result = gpu_growth_figure(study)
    months = np.arange(result.monthly_gpu_hours.size, dtype=float)
    fit = result.monthly_gpu_hours[0] * (1.0 + result.growth_per_month) ** months
    return FigureSeries(
        title="F5: monthly GPU-hours growth",
        x_label="month of study window",
        y_label="GPU-hours",
        series={
            "gpu_hours": (months, result.monthly_gpu_hours),
            "exponential_fit": (months, fit),
        },
        kind="line",
        notes=(
            f"fitted growth {100 * result.growth_per_month:+.1f}%/month "
            f"(95% bootstrap CI [{100 * result.growth_ci.low:+.1f}, "
            f"{100 * result.growth_ci.high:+.1f}])",
        ),
    )


def f7_runtime_dist(study: Study) -> FigureSeries:
    hist = runtime_figure(study)
    bins = hist.pop("__bins__")
    centers = (bins[:-1] + bins[1:]) / 2.0
    series = {name: (centers, counts.astype(float)) for name, counts in hist.items()}
    return FigureSeries(
        title="F7: job runtime distribution by field",
        x_label="log10(runtime hours)",
        y_label="jobs",
        series=series,
        kind="histogram",
    )


# -- text / concordance ------------------------------------------------------------


def f6_tool_network(study: Study) -> Table:
    mentions = extract_mentions(study.current, "stack_description")
    graph = build_cooccurrence_graph(mentions)
    summary = cooccurrence_summary(graph)
    rows = [
        (a, b, str(w)) for a, b, w in summary.top_pairs
    ]
    communities = "; ".join(
        "{" + ", ".join(sorted(c)[:6]) + ("...}" if len(c) > 6 else "}")
        for c in summary.communities[:4]
    )
    return Table(
        title="F6: strongest tool co-mentions (2024 stack descriptions)",
        columns=("tool a", "tool b", "co-mentions"),
        rows=tuple(rows),
        notes=(
            f"{summary.n_tools} tools, {summary.n_edges} edges over "
            f"{mentions.n_documents} answers",
            f"communities: {communities}",
        ),
    )


def f8_concordance(study: Study) -> FigureSeries:
    result = gpu_concordance(study)
    return FigureSeries(
        title="F8: survey-reported GPU use vs telemetry GPU-hours share",
        x_label="survey share reporting GPU use (field): "
        + ", ".join(result.fields),
        y_label="share of GPU-hours",
        series={"fields": (result.survey_share, result.telemetry_share)},
        kind="scatter",
        notes=(
            f"Spearman rho = {result.spearman_rho:+.2f} (p = {fmt_p(result.p_value)})",
        ),
    )


# -- registry ----------------------------------------------------------------------

EXPERIMENTS: dict[str, Experiment] = {
    e.id: e
    for e in (
        Experiment("T1", "Respondent demographics", "table", t1_demographics,
                   "Field and career-stage composition per cohort."),
        Experiment("T2", "Language use", "table", t2_languages,
                   "Multi-select language shares with Wilson CIs per cohort."),
        Experiment("F1", "Language trend", "figure", f1_language_trend,
                   "2011-vs-2024 language shares, Holm-corrected."),
        Experiment("T3", "Parallelism modalities", "table", t3_parallelism,
                   "Parallelism/cluster/GPU adoption plus per-modality trends."),
        Experiment("F2", "GPU adoption by field", "figure", f2_gpu_by_field,
                   "Per-field GPU adoption in the 2024 cohort."),
        Experiment("T4", "ML frameworks", "table", t4_ml_frameworks,
                   "ML adoption trend and framework shares among ML users."),
        Experiment("T5", "Queue waits", "table", t5_queue_wait,
                   "Queue-wait statistics per partition and width class."),
        Experiment("T6", "Engineering practices", "table", t6_practices,
                   "VCS/testing/CI/container adoption trends."),
        Experiment("T7", "Training background", "table", t7_training,
                   "How respondents learned to program; expertise comparison."),
        Experiment("T8", "Data scale", "table", t8_storage,
                   "Ordinal data-scale distribution shift between cohorts."),
        Experiment("F3", "CPU-hours by field", "figure", f3_cpu_hours,
                   "Monthly CPU-hours per field over the telemetry window."),
        Experiment("F4", "Job width CDF", "figure", f4_job_width_cdf,
                   "Width distributions for CPU vs GPU jobs."),
        Experiment("F5", "GPU-hours growth", "figure", f5_gpu_growth,
                   "Monthly GPU-hours with fitted exponential growth."),
        Experiment("F6", "Tool co-mention network", "table", f6_tool_network,
                   "Strongest tool co-mentions and communities (rendered as a table)."),
        Experiment("F7", "Runtime distributions", "figure", f7_runtime_dist,
                   "Log-runtime histograms by field."),
        Experiment("F8", "Survey-telemetry concordance", "figure", f8_concordance,
                   "Reported GPU use vs measured GPU-hours, by field."),
    )
}


def run_experiment(experiment_id: str, study: Study) -> Artifact:
    """Regenerate one experiment's artifact."""
    try:
        experiment = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    return experiment.fn(study)


def _run_experiment_chunk(
    ids: tuple[str, ...], study: Study, on_error: str = "raise"
) -> dict[str, tuple[str, object]]:
    """Worker-side body of the process fan-out: run a slice of the registry.

    The study pickles over once per worker (not once per experiment); the
    extensions import re-registers X1..X10 in the fresh interpreter.
    Returns ``{id: ("ok", artifact)}`` entries; with ``on_error=
    "keep_going"`` a failing experiment becomes ``("failed", repr(exc))``
    instead of poisoning the whole chunk.
    """
    import repro.report.extensions  # noqa: F401  (registers X* in the worker)

    out: dict[str, tuple[str, object]] = {}
    for eid in ids:
        if on_error == "keep_going":
            try:
                out[eid] = ("ok", EXPERIMENTS[eid].fn(study))
            except Exception as exc:
                out[eid] = ("failed", repr(exc))
        else:
            out[eid] = ("ok", EXPERIMENTS[eid].fn(study))
    return out


def _resolve_fanout(executor: str, max_workers: int | None, study: Study, n: int) -> tuple[str, int]:
    if executor not in ("auto", "sequential", "thread", "process"):
        raise ValueError(f"unknown executor {executor!r}")
    workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
    if workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    workers = min(workers, n)
    if executor == "sequential" or workers <= 1:
        return "sequential", 1
    if executor == "auto":
        try:
            pickle.dumps(study, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return "thread", workers
        return "process", workers
    return executor, workers


def run_all_experiments_with_metrics(
    study: Study,
    max_workers: int | None = None,
    executor: str = "auto",
    on_error: str = "raise",
) -> tuple[dict[str, Artifact], ExecutorMetrics]:
    """Regenerate every artifact plus the executor's timing record.

    Every registered experiment is a pure function of the study, so the
    whole registry fans out over a process pool (``executor="process"`` /
    ``"auto"``), a thread pool (``"thread"``), or runs inline
    (``"sequential"`` or ``max_workers=1``). Output is identical across
    modes — the golden-artifact suite enforces byte-equality — and the
    returned dict is always keyed in sorted-id order.

    ``on_error="keep_going"`` degrades gracefully instead of aborting: a
    failing experiment is dropped from the returned dict and recorded in
    the metrics with ``outcome="failed"`` and the captured error, so
    :func:`repro.report.document.build_report` can render a placeholder
    section for exactly the failed ids.
    """
    if on_error not in ("raise", "keep_going"):
        raise ValueError(f"unknown on_error {on_error!r}")
    ids = sorted(EXPERIMENTS)
    mode, workers = _resolve_fanout(executor, max_workers, study, len(ids))
    metrics = ExecutorMetrics(mode=mode, max_workers=workers)
    t0 = time.perf_counter()
    artifacts: dict[str, Artifact] = {}

    def run_one(eid: str) -> Artifact | None:
        """Run one experiment inline, recording its metric; None on failure."""
        # Every experiment is ready at t0 (they all depend only on the
        # study), so time spent before starting is pure queue wait.
        started = time.perf_counter()
        try:
            artifact = EXPERIMENTS[eid].fn(study)
        except Exception as exc:
            if on_error == "raise":
                raise
            finished = time.perf_counter()
            metrics.record(
                eid, "", False, finished - started, started - t0, finished - t0,
                outcome="failed", error=repr(exc),
                queue_seconds=started - t0, compute_seconds=finished - started,
            )
            return None
        finished = time.perf_counter()
        metrics.record(
            eid, "", False, finished - started, started - t0, finished - t0,
            queue_seconds=started - t0, compute_seconds=finished - started,
        )
        return artifact

    if mode == "sequential":
        for eid in ids:
            artifact = run_one(eid)
            if artifact is not None:
                artifacts[eid] = artifact
    elif mode == "thread":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            artifacts = {
                eid: artifact
                for eid, artifact in zip(ids, pool.map(run_one, ids))
                if artifact is not None
            }
    else:
        # Round-robin chunks balance the slow table/figure mix across
        # workers while shipping the study to each worker exactly once.
        chunks = [tuple(ids[i::workers]) for i in range(workers)]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            started = time.perf_counter()
            for chunk, result in zip(
                chunks,
                pool.map(
                    _run_experiment_chunk,
                    chunks,
                    [study] * len(chunks),
                    [on_error] * len(chunks),
                ),
            ):
                finished = time.perf_counter()
                share = (finished - started) / max(len(chunk), 1)
                for eid in chunk:
                    status, payload = result[eid]
                    if status == "ok":
                        artifacts[eid] = payload
                        metrics.record(eid, "", False, share, started - t0, finished - t0)
                    else:
                        metrics.record(
                            eid, "", False, share, started - t0, finished - t0,
                            outcome="failed", error=str(payload),
                        )
        artifacts = {eid: artifacts[eid] for eid in ids if eid in artifacts}
    metrics.wall_seconds = time.perf_counter() - t0
    metrics.run_report = RunReport(
        outcomes=tuple(
            StepOutcome(m.name, m.outcome, m.attempts, m.error, m.wall_seconds)
            for m in metrics.steps
        )
    )
    return artifacts, metrics


def run_all_experiments(
    study: Study,
    max_workers: int | None = None,
    executor: str = "auto",
    on_error: str = "raise",
) -> dict[str, Artifact]:
    """Regenerate every artifact, keyed by experiment id (sorted order)."""
    artifacts, _ = run_all_experiments_with_metrics(
        study, max_workers=max_workers, executor=executor, on_error=on_error
    )
    return artifacts


# -- the durable report pipeline ----------------------------------------------


def _experiment_step(context, experiment_id, fn_fingerprint=""):
    """Pipeline-step wrapper around one registry entry.

    ``fn_fingerprint`` exists purely for the cache key: the wrapper is the
    same function for every experiment, so the underlying experiment
    function's code fingerprint must ride along in the params or editing
    an experiment would not invalidate its artifact.
    """
    if experiment_id.startswith("X"):
        # Extension experiments register on import; core ids must not
        # trigger the import (mirrors the CLI, which only knows T*/F*).
        import repro.report.extensions  # noqa: F401
    return EXPERIMENTS[experiment_id].fn(context["study"])


def report_pipeline(
    cache=None,
    *,
    experiment_ids: Sequence[str] | None = None,
    retry=None,
    timeout: float | None = None,
    **study_kwargs,
):
    """Build the full durable report pipeline: study stages + experiments.

    Extends :func:`repro.core.study_pipeline.study_pipeline` with one
    ``exp:<id>`` step per registered experiment (``depends_on=
    ("study",)``), so ``repro report --durable`` can run the entire report
    as a journaled, cache-addressed DAG and ``--resume`` can recover it
    after a crash: completed experiments replay from the cache, only the
    in-flight frontier re-executes.
    """
    from repro.core.pipeline import Pipeline, PipelineStep, fingerprint_callable
    from repro.core.study_pipeline import study_pipeline

    base = study_pipeline(cache=cache, retry=retry, timeout=timeout, **study_kwargs)
    ids = sorted(EXPERIMENTS) if experiment_ids is None else list(experiment_ids)
    unknown = [eid for eid in ids if eid not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments {unknown}; known: {sorted(EXPERIMENTS)}")
    steps = list(base.steps)
    for eid in ids:
        steps.append(
            PipelineStep(
                name=f"exp:{eid}",
                fn=_experiment_step,
                params={
                    "experiment_id": eid,
                    "fn_fingerprint": fingerprint_callable(EXPERIMENTS[eid].fn),
                },
                depends_on=("study",),
            )
        )
    return Pipeline(steps, base.cache, default_retry=retry, default_timeout=timeout)
