"""Table model and renderers."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Table", "fmt_pct", "fmt_ci", "fmt_p", "significance_stars"]


def fmt_pct(value: float, digits: int = 1) -> str:
    """Format a proportion as a percentage string."""
    return f"{100.0 * value:.{digits}f}%"


def fmt_ci(low: float, high: float, digits: int = 1) -> str:
    """Format a proportion CI as ``[lo%, hi%]``."""
    return f"[{100.0 * low:.{digits}f}%, {100.0 * high:.{digits}f}%]"


def fmt_p(p: float) -> str:
    """Format a p-value the way the tables print them."""
    if p < 0.001:
        return "<0.001"
    return f"{p:.3f}"


def significance_stars(p: float) -> str:
    """Conventional significance stars."""
    if p < 0.001:
        return "***"
    if p < 0.01:
        return "**"
    if p < 0.05:
        return "*"
    return ""


@dataclass(frozen=True)
class Table:
    """A rendered-table-in-waiting.

    Attributes
    ----------
    title:
        Experiment title ("T2: programming language use ...").
    columns:
        Column headers.
    rows:
        Row tuples of strings (pre-formatted by the experiment function).
    notes:
        Footnotes printed under the table.
    """

    title: str
    columns: tuple[str, ...]
    rows: tuple[tuple[str, ...], ...]
    notes: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.columns:
            raise ValueError("table has no columns")
        for i, row in enumerate(self.rows):
            if len(row) != len(self.columns):
                raise ValueError(
                    f"row {i} has {len(row)} cells, expected {len(self.columns)}"
                )

    @property
    def shape(self) -> tuple[int, int]:
        return (len(self.rows), len(self.columns))

    def column(self, name: str) -> tuple[str, ...]:
        """All cells of one named column."""
        try:
            j = self.columns.index(name)
        except ValueError:
            raise KeyError(f"no column {name!r}") from None
        return tuple(row[j] for row in self.rows)

    def render_ascii(self) -> str:
        """Monospace rendering with aligned columns."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for j, cell in enumerate(row):
                widths[j] = max(widths[j], len(cell))

        def line(cells) -> str:
            return "  ".join(cell.ljust(w) for cell, w in zip(cells, widths)).rstrip()

        rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
        parts = [self.title, rule, line(self.columns), rule]
        parts.extend(line(row) for row in self.rows)
        parts.append(rule)
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def to_csv(self) -> str:
        """CSV rendering (title and notes excluded; header row included)."""
        import csv
        import io

        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.columns)
        writer.writerows(self.rows)
        return buf.getvalue()

    def to_dict(self) -> dict:
        """JSON-serializable export."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(r) for r in self.rows],
            "notes": list(self.notes),
        }

    def render_markdown(self) -> str:
        """GitHub-flavored markdown rendering."""
        parts = [f"### {self.title}", ""]
        parts.append("| " + " | ".join(self.columns) + " |")
        parts.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            parts.append("| " + " | ".join(row) + " |")
        if self.notes:
            parts.append("")
            parts.extend(f"_{note}_" for note in self.notes)
        return "\n".join(parts)
