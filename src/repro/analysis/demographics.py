"""T1: respondent demographics by field and career stage."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.crosstab import COHORT, CrossTab, crosstab
from repro.stats.descriptive import Summary, summarize
from repro.survey.responses import ResponseSet

__all__ = ["DemographicsResult", "demographics_table"]


@dataclass(frozen=True)
class DemographicsResult:
    """Demographic composition of the study's cohorts.

    Attributes
    ----------
    field_by_cohort, stage_by_cohort:
        Cross-tabs of field / career stage against cohort.
    years_programming:
        Per-cohort summary of programming experience.
    response_counts:
        Respondents per cohort.
    """

    field_by_cohort: CrossTab
    stage_by_cohort: CrossTab
    years_programming: dict[str, Summary]
    response_counts: dict[str, int]


def demographics_table(responses: ResponseSet) -> DemographicsResult:
    """Compute T1 over a multi-cohort response set."""
    years: dict[str, Summary] = {}
    counts: dict[str, int] = {}
    for cohort, subset in responses.split_cohorts().items():
        counts[cohort] = len(subset)
        values = subset.numeric_column("years_programming")
        values = values[~np.isnan(values)]
        if values.size:
            years[cohort] = summarize(values)
    return DemographicsResult(
        field_by_cohort=crosstab(responses, "field", COHORT),
        stage_by_cohort=crosstab(responses, "career_stage", COHORT),
        years_programming=years,
        response_counts=counts,
    )
