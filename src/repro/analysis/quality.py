"""Survey data-quality analysis: nonresponse structure.

Before trusting the trend tables, the study characterizes who skipped what:
per-item nonresponse by cohort, the completion-rate distribution, and
whether missingness correlates with demographics (differential nonresponse,
which weighting cannot fully fix and the limitations section must report).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.intervals import BinomialInterval, wilson_interval
from repro.stats.tests import TestResult
from repro.survey.responses import ResponseSet

__all__ = ["ItemNonresponse", "QualityReport", "quality_report"]


@dataclass(frozen=True, slots=True)
class ItemNonresponse:
    """Nonresponse for one item in one cohort.

    ``n_applicable`` counts respondents the skip logic showed the item to;
    the rate's denominator is applicability, not the whole cohort, so gated
    follow-ups aren't spuriously flagged.
    """

    key: str
    cohort: str
    n_applicable: int
    n_missing: int
    rate: BinomialInterval


@dataclass(frozen=True)
class QualityReport:
    """Cohort-level data-quality summary.

    Attributes
    ----------
    item_nonresponse:
        Per (item, cohort) nonresponse rows, worst first.
    completion_quartiles:
        Per-cohort (q25, median, q75) of per-respondent completion.
    field_missingness_test:
        Kruskal-Wallis test of per-respondent completion rates across
        fields for the pooled set — significant means differential
        nonresponse by field (a limitation weighting cannot fix).
    """

    item_nonresponse: tuple[ItemNonresponse, ...]
    completion_quartiles: dict[str, tuple[float, float, float]]
    field_missingness_test: TestResult

    def worst_items(self, k: int = 5) -> tuple[ItemNonresponse, ...]:
        return self.item_nonresponse[:k]


def _completion_rates(subset: ResponseSet) -> np.ndarray:
    rates = []
    questionnaire = subset.questionnaire
    for response in subset:
        applicable = questionnaire.applicable_keys(response.answers)
        if not applicable:
            rates.append(1.0)
            continue
        answered = sum(1 for key in applicable if response.answered(key))
        rates.append(answered / len(applicable))
    return np.array(rates, dtype=float)


def quality_report(responses: ResponseSet) -> QualityReport:
    """Build the quality report over a multi-cohort response set."""
    if len(responses) == 0:
        raise ValueError("empty response set")
    questionnaire = responses.questionnaire

    rows: list[ItemNonresponse] = []
    for cohort, subset in responses.split_cohorts().items():
        applicable_count = {key: 0 for key in questionnaire.keys}
        missing_count = {key: 0 for key in questionnaire.keys}
        for response in subset:
            for key in questionnaire.applicable_keys(response.answers):
                applicable_count[key] += 1
                if not response.answered(key):
                    missing_count[key] += 1
        for key in questionnaire.keys:
            n_app = applicable_count[key]
            if n_app == 0:
                continue
            rows.append(
                ItemNonresponse(
                    key=key,
                    cohort=cohort,
                    n_applicable=n_app,
                    n_missing=missing_count[key],
                    rate=wilson_interval(missing_count[key], n_app),
                )
            )
    rows.sort(key=lambda r: -r.rate.estimate)

    quartiles: dict[str, tuple[float, float, float]] = {}
    for cohort, subset in responses.split_cohorts().items():
        if len(subset) == 0:
            continue
        rates = _completion_rates(subset)
        q25, q50, q75 = np.quantile(rates, [0.25, 0.5, 0.75])
        quartiles[cohort] = (float(q25), float(q50), float(q75))

    # Differential nonresponse: do completion rates depend on field?
    per_field: dict[str, list[float]] = {}
    for response in responses:
        field = response.get("field", None)
        if field is None:
            continue
        applicable = questionnaire.applicable_keys(response.answers)
        if not applicable:
            continue
        answered = sum(1 for key in applicable if response.answered(key))
        per_field.setdefault(str(field), []).append(answered / len(applicable))
    groups = [np.array(v) for v in per_field.values() if len(v) >= 2]
    pooled = np.concatenate(groups) if groups else np.array([])
    if len(groups) >= 2 and np.unique(pooled).size > 1:
        from scipy import stats as _sps

        stat, p = _sps.kruskal(*groups)
        test = TestResult(
            name="kruskal",
            statistic=float(stat),
            p_value=float(p),
            dof=len(groups) - 1,
        )
    else:
        test = TestResult(name="kruskal", statistic=0.0, p_value=1.0, dof=0)

    return QualityReport(
        item_nonresponse=tuple(rows),
        completion_quartiles=quartiles,
        field_missingness_test=test,
    )
