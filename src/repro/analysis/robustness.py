"""Seed-sweep robustness of the headline claims.

EXPERIMENTS.md asserts the shape claims hold across seeds; this module
automates that assertion: regenerate the survey under many seeds and report,
per headline claim, how often its direction and its significance held.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.calibration import profile_2011, profile_2024
from repro.core.instrument import build_instrument
from repro.core.trends import TrendEngine, TrendRow

__all__ = ["ClaimResult", "headline_robustness", "HEADLINE_CLAIMS"]


@dataclass(frozen=True)
class ClaimResult:
    """How one claim fared across the sweep.

    Attributes
    ----------
    claim:
        Claim label.
    n_seeds:
        Sweep size.
    direction_held, significant:
        How many seeds the expected direction held / the row was significant
        at the given alpha.
    mean_delta:
        Mean observed change across seeds.
    """

    claim: str
    n_seeds: int
    direction_held: int
    significant: int
    mean_delta: float

    @property
    def direction_rate(self) -> float:
        return self.direction_held / self.n_seeds

    @property
    def significance_rate(self) -> float:
        return self.significant / self.n_seeds


# (label, row extractor, expected sign)
HEADLINE_CLAIMS: tuple[tuple[str, Callable[[TrendEngine], TrendRow], int], ...] = (
    ("python use rises", lambda e: e.multi_choice_trend("languages")["python"], +1),
    ("matlab use falls", lambda e: e.multi_choice_trend("languages")["matlab"], -1),
    ("fortran use falls", lambda e: e.multi_choice_trend("languages")["fortran"], -1),
    ("GPU use rises", lambda e: e.yes_no_trend("uses_gpu"), +1),
    ("ML use rises", lambda e: e.yes_no_trend("uses_ml"), +1),
    ("git becomes default", lambda e: e.single_choice_trend("vcs", "git"), +1),
    ("containers appear", lambda e: e.yes_no_trend("uses_containers"), +1),
    ("parallelism rises", lambda e: e.yes_no_trend("uses_parallelism"), +1),
)


def headline_robustness(
    seeds: Sequence[int],
    n_baseline: int = 120,
    n_current: int = 200,
    alpha: float = 0.05,
    claims=HEADLINE_CLAIMS,
) -> list[ClaimResult]:
    """Sweep the survey generator over ``seeds`` and score each claim."""
    from repro.synth.generator import generate_study

    if not seeds:
        raise ValueError("need at least one seed")
    questionnaire = build_instrument()
    tallies = {
        label: {"direction": 0, "significant": 0, "delta_sum": 0.0}
        for label, _, _ in claims
    }
    for seed in seeds:
        responses = generate_study(
            {
                "2011": (profile_2011(), n_baseline),
                "2024": (profile_2024(), n_current),
            },
            questionnaire,
            seed=int(seed),
        )
        engine = TrendEngine(responses)
        for label, extract, sign in claims:
            row = extract(engine)
            tally = tallies[label]
            if row.delta * sign > 0:
                tally["direction"] += 1
            if row.significant(alpha) and row.delta * sign > 0:
                tally["significant"] += 1
            tally["delta_sum"] += row.delta
    return [
        ClaimResult(
            claim=label,
            n_seeds=len(seeds),
            direction_held=tallies[label]["direction"],
            significant=tallies[label]["significant"],
            mean_delta=tallies[label]["delta_sum"] / len(seeds),
        )
        for label, _, _ in claims
    ]
