"""Per-field practice portraits.

The paper's discussion walks through fields one at a time ("astrophysicists
are MPI-and-Fortran people; neuroscientists are GPU-and-Python people").
This module computes those portraits from the current wave.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.survey.responses import ResponseSet

__all__ = ["FieldProfile", "field_profiles"]


@dataclass(frozen=True)
class FieldProfile:
    """One field's practice portrait (current wave).

    Attributes
    ----------
    field, n:
        Field name and answerer count.
    top_languages:
        Up to three most-used languages with shares.
    gpu_share, cluster_share, ml_share:
        Adoption shares among answerers of the respective items.
    distinguishing:
        The practice whose share most exceeds the wave-wide share
        (what makes this field different), as (label, field share, overall
        share).
    """

    field: str
    n: int
    top_languages: tuple[tuple[str, float], ...]
    gpu_share: float
    cluster_share: float
    ml_share: float
    distinguishing: tuple[str, float, float]


def _yes_share(subset: ResponseSet, key: str) -> float:
    col = np.asarray(subset.column(key), dtype=object)
    if col.size == 0:
        return float("nan")
    n_answered = int((col != None).sum())  # noqa: E711 — element-wise over objects
    if n_answered == 0:
        return float("nan")
    return float((col == "yes").sum()) / n_answered


def _language_shares(subset: ResponseSet) -> dict[str, float]:
    question = subset.questionnaire["languages"]
    matrix = subset.selection_matrix("languages")
    answered = subset.answered_mask("languages")
    n = int(answered.sum())
    if n == 0:
        return {}
    return {
        option: float(matrix[answered, j].mean())
        for j, option in enumerate(question.options)
    }


def field_profiles(
    responses: ResponseSet, cohort: str = "2024", min_n: int = 8
) -> list[FieldProfile]:
    """Portraits for every field with at least ``min_n`` respondents."""
    wave = responses.by_cohort(cohort)
    if len(wave) == 0:
        raise ValueError(f"no responses in cohort {cohort!r}")
    overall = {
        "GPU use": _yes_share(wave, "uses_gpu"),
        "cluster use": _yes_share(wave, "uses_cluster"),
        "ML use": _yes_share(wave, "uses_ml"),
        "parallelism": _yes_share(wave, "uses_parallelism"),
    }

    profiles: list[FieldProfile] = []
    fields = sorted({r.get("field") for r in wave if r.answered("field")})
    for field_name in fields:
        subset = wave.filter(lambda r: r.get("field") == field_name)
        if len(subset) < min_n:
            continue
        lang_shares = _language_shares(subset)
        top_languages = tuple(
            sorted(lang_shares.items(), key=lambda kv: -kv[1])[:3]
        )
        shares = {
            "GPU use": _yes_share(subset, "uses_gpu"),
            "cluster use": _yes_share(subset, "uses_cluster"),
            "ML use": _yes_share(subset, "uses_ml"),
            "parallelism": _yes_share(subset, "uses_parallelism"),
        }
        # Most-distinguishing practice: largest excess over the wave share.
        label, excess = max(
            (
                (name, shares[name] - overall[name])
                for name in shares
                if not (np.isnan(shares[name]) or np.isnan(overall[name]))
            ),
            key=lambda kv: kv[1],
            default=("GPU use", 0.0),
        )
        profiles.append(
            FieldProfile(
                field=str(field_name),
                n=len(subset),
                top_languages=top_languages,
                gpu_share=shares["GPU use"],
                cluster_share=shares["cluster use"],
                ml_share=shares["ML use"],
                distinguishing=(label, shares[label], overall[label]),
            )
        )
    profiles.sort(key=lambda p: -p.n)
    return profiles
