"""Telemetry experiments (F3, F4, F5, F7, T5) bound to a Study."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.records import JobTable
from repro.cluster.usage import (
    WidthDistribution,
    cpu_hours_by_field_month,
    gpu_hours_monthly,
    job_width_distribution,
    monthly_growth_rate,
    runtime_distribution_by_field,
    wait_stats_by_partition,
)
from repro.core.study import Study
from repro.stats.bootstrap import BootstrapResult, bootstrap_ci

__all__ = [
    "cpu_hours_figure",
    "job_width_figure",
    "queue_wait_table",
    "gpu_growth_figure",
    "runtime_figure",
]


def cpu_hours_figure(study: Study, top_fields: int = 6) -> dict[str, np.ndarray]:
    """F3: monthly CPU-hours for the top consuming fields.

    Remaining fields are folded into an "other" series so the figure stays
    readable; includes the total as ``"__total__"``.
    """
    if top_fields < 1:
        raise ValueError("top_fields must be >= 1")
    per_field = cpu_hours_by_field_month(study.telemetry)
    if not per_field:
        raise ValueError("telemetry is empty")
    ranked = sorted(per_field.items(), key=lambda kv: -kv[1].sum())
    keep = ranked[:top_fields]
    rest = ranked[top_fields:]
    out = {name: series for name, series in keep}
    if rest:
        out["other"] = np.sum([series for _, series in rest], axis=0)
    out["__total__"] = np.sum(list(per_field.values()), axis=0)
    return out


def job_width_figure(study: Study) -> dict[str, WidthDistribution]:
    """F4: job-width CDFs for CPU vs GPU partitions."""
    cpu = study.telemetry.mask(study.telemetry.gpus == 0)
    gpu = study.telemetry.gpu_jobs()
    out: dict[str, WidthDistribution] = {}
    if len(cpu):
        out["cpu"] = job_width_distribution(cpu)
    if len(gpu):
        out["gpu"] = job_width_distribution(gpu)
    if not out:
        raise ValueError("telemetry is empty")
    return out


def queue_wait_table(study: Study) -> dict[str, dict[str, float]]:
    """T5: queue-wait statistics per partition and width class."""
    if len(study.telemetry) == 0:
        raise ValueError("telemetry is empty")
    return wait_stats_by_partition(study.telemetry)


@dataclass(frozen=True)
class GpuGrowthFigure:
    """F5 contents: the monthly series, fitted growth, and a bootstrap CI.

    The CI is over months: monthly totals are resampled and the growth rate
    refitted, giving a (conservative) spread for the fitted rate.
    """

    monthly_gpu_hours: np.ndarray
    growth_per_month: float
    growth_ci: BootstrapResult


def gpu_growth_figure(study: Study, n_resamples: int = 500) -> GpuGrowthFigure:
    """F5: GPU-hours growth over the study window."""
    series = gpu_hours_monthly(study.telemetry.gpu_jobs())
    # Drop a trailing partial month (jobs starting in the last days spill
    # into an extra bucket with little accumulation).
    expected_months = int(round(study.window_seconds / (30.0 * 86400.0)))
    series = series[:expected_months]
    if series.size < 3:
        raise ValueError("need at least 3 months of telemetry for F5")
    growth = monthly_growth_rate(series)

    months = np.arange(series.size)

    def refit(idx_sample) -> float:
        idx = np.sort(np.asarray(idx_sample, dtype=int))
        x, y = months[idx], series[idx]
        good = y > 0
        if good.sum() < 2 or np.unique(x[good]).size < 2:
            return growth
        slope = np.polyfit(x[good], np.log(y[good]), 1)[0]
        return float(np.expm1(slope))

    ci = bootstrap_ci(
        months,
        statistic=lambda sample, axis=None: refit(sample)
        if axis is None
        else np.apply_along_axis(refit, 1, sample),
        n_resamples=n_resamples,
        rng=np.random.default_rng(0),
    )
    return GpuGrowthFigure(
        monthly_gpu_hours=series, growth_per_month=growth, growth_ci=ci
    )


def runtime_figure(study: Study, top_fields: int = 6) -> dict[str, np.ndarray]:
    """F7: log-runtime histograms for the top fields (shared bins)."""
    if len(study.telemetry) == 0:
        raise ValueError("telemetry is empty")
    hist = runtime_distribution_by_field(study.telemetry)
    bins = hist.pop("__bins__")
    ranked = sorted(hist.items(), key=lambda kv: -kv[1].sum())[:top_fields]
    out = dict(ranked)
    out["__bins__"] = bins
    return out
