"""Cohort covariate balance (the methods-section companion to T1).

Before attributing differences to time, the study must show the two waves
sample comparable populations. This module computes standardized differences
for the demographic covariates; |d| < 0.1 is the conventional "balanced"
threshold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.survey.responses import ResponseSet

__all__ = ["BalanceRow", "BalanceReport", "cohort_balance"]


@dataclass(frozen=True, slots=True)
class BalanceRow:
    """Standardized difference for one covariate (or category indicator)."""

    covariate: str
    mean_a: float
    mean_b: float
    std_diff: float

    @property
    def balanced(self) -> bool:
        return abs(self.std_diff) < 0.1


@dataclass(frozen=True)
class BalanceReport:
    """All balance rows for a cohort pair, worst first."""

    cohort_a: str
    cohort_b: str
    rows: tuple[BalanceRow, ...]

    @property
    def max_abs_std_diff(self) -> float:
        return max(abs(r.std_diff) for r in self.rows)

    @property
    def balanced(self) -> bool:
        return all(r.balanced for r in self.rows)

    def imbalanced(self) -> tuple[BalanceRow, ...]:
        return tuple(r for r in self.rows if not r.balanced)


def _std_diff(a: np.ndarray, b: np.ndarray) -> float:
    mean_a, mean_b = a.mean(), b.mean()
    var = (a.var(ddof=1) + b.var(ddof=1)) / 2.0 if a.size > 1 and b.size > 1 else 0.0
    if var <= 0:
        return 0.0 if mean_a == mean_b else math.inf
    return float((mean_b - mean_a) / math.sqrt(var))


def cohort_balance(
    responses: ResponseSet,
    cohort_a: str = "2011",
    cohort_b: str = "2024",
    categorical: tuple[str, ...] = ("field", "career_stage"),
    numeric: tuple[str, ...] = ("years_programming",),
) -> BalanceReport:
    """Standardized differences between two cohorts' demographics.

    Categorical covariates contribute one indicator row per category;
    numeric covariates one row each. Missing answers are excluded per
    covariate.
    """
    sub_a = responses.by_cohort(cohort_a)
    sub_b = responses.by_cohort(cohort_b)
    if len(sub_a) == 0 or len(sub_b) == 0:
        raise ValueError("both cohorts must be non-empty")

    rows: list[BalanceRow] = []
    for key in categorical:
        col_a = [v for v in sub_a.column(key) if v is not None]
        col_b = [v for v in sub_b.column(key) if v is not None]
        if not col_a or not col_b:
            continue
        for category in sorted(set(col_a) | set(col_b)):
            ind_a = np.array([v == category for v in col_a], dtype=float)
            ind_b = np.array([v == category for v in col_b], dtype=float)
            rows.append(
                BalanceRow(
                    covariate=f"{key}={category}",
                    mean_a=float(ind_a.mean()),
                    mean_b=float(ind_b.mean()),
                    std_diff=_std_diff(ind_a, ind_b),
                )
            )
    for key in numeric:
        values_a = sub_a.numeric_column(key)
        values_b = sub_b.numeric_column(key)
        values_a = values_a[~np.isnan(values_a)]
        values_b = values_b[~np.isnan(values_b)]
        if values_a.size == 0 or values_b.size == 0:
            continue
        rows.append(
            BalanceRow(
                covariate=key,
                mean_a=float(values_a.mean()),
                mean_b=float(values_b.mean()),
                std_diff=_std_diff(values_a, values_b),
            )
        )
    if not rows:
        raise ValueError("no covariates could be compared")
    rows.sort(key=lambda r: -abs(r.std_diff))
    return BalanceReport(cohort_a=cohort_a, cohort_b=cohort_b, rows=tuple(rows))
