"""T6: software-engineering practice adoption by cohort."""

from __future__ import annotations

from repro.core.trends import TrendEngine, TrendRow, TrendTable

from repro.survey.responses import ResponseSet

__all__ = ["practices_trends"]


def practices_trends(
    responses: ResponseSet,
    baseline_cohort: str = "2011",
    current_cohort: str = "2024",
) -> TrendTable:
    """T6: VCS, testing, and container practice trends as one family.

    Rows: git use, any version control, unit testing (with or without CI),
    CI specifically, and containers — the five practices the study tracks.
    All five are tested together and Holm-corrected.
    """
    engine = TrendEngine(responses, baseline_cohort, current_cohort)

    rows: list[TrendRow] = [
        engine.single_choice_trend("vcs", "git", label="uses git"),
    ]

    # "any VCS" needs a custom count: every answer except 'none'.
    def any_vcs_counts(cohort):
        col = cohort.column("vcs")
        answered = [v for v in col if v is not None]
        return sum(1 for v in answered if v != "none"), len(answered)

    s_a, n_a = any_vcs_counts(engine.baseline)
    s_b, n_b = any_vcs_counts(engine.current)
    rows.append(engine._row("any version control", s_a, n_a, s_b, n_b))

    def testing_counts(cohort, values):
        col = cohort.column("testing")
        answered = [v for v in col if v is not None]
        return sum(1 for v in answered if v in values), len(answered)

    unit_values = ("unit_tests", "unit_tests_and_ci")
    s_a, n_a = testing_counts(engine.baseline, unit_values)
    s_b, n_b = testing_counts(engine.current, unit_values)
    rows.append(engine._row("unit testing", s_a, n_a, s_b, n_b))

    s_a, n_a = testing_counts(engine.baseline, ("unit_tests_and_ci",))
    s_b, n_b = testing_counts(engine.current, ("unit_tests_and_ci",))
    rows.append(engine._row("continuous integration", s_a, n_a, s_b, n_b))

    rows.append(engine.yes_no_trend("uses_containers", label="containers"))

    return TrendTable(
        title="T6: engineering practices", rows=tuple(rows)
    ).corrected("holm")
