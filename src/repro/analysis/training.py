"""T7: training background and self-rated expertise."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.crosstab import COHORT, CrossTab, crosstab
from repro.stats.effects import rank_biserial
from repro.stats.tests import TestResult, mann_whitney_u
from repro.survey.responses import ResponseSet

__all__ = ["TrainingSummary", "training_summary"]


@dataclass(frozen=True)
class TrainingSummary:
    """T7 contents.

    Attributes
    ----------
    training_by_cohort:
        Cross-tab of how respondents learned to program, by cohort.
    expertise_means:
        Per-cohort mean self-rated expertise (1-5).
    expertise_test:
        Mann-Whitney comparison of the two cohorts' expertise ratings.
    expertise_effect:
        Rank-biserial correlation (positive = current cohort rates higher).
    """

    training_by_cohort: CrossTab
    expertise_means: dict[str, float]
    expertise_test: TestResult
    expertise_effect: float


def training_summary(
    responses: ResponseSet,
    baseline_cohort: str = "2011",
    current_cohort: str = "2024",
) -> TrainingSummary:
    """Compute T7."""
    table = crosstab(responses, "training", COHORT)

    def ratings(cohort_label: str) -> np.ndarray:
        values = responses.by_cohort(cohort_label).numeric_column("expertise")
        return values[~np.isnan(values)]

    baseline = ratings(baseline_cohort)
    current = ratings(current_cohort)
    if baseline.size == 0 or current.size == 0:
        raise ValueError("both cohorts need expertise ratings")
    means = {
        baseline_cohort: float(baseline.mean()),
        current_cohort: float(current.mean()),
    }
    return TrainingSummary(
        training_by_cohort=table,
        expertise_means=means,
        expertise_test=mann_whitney_u(current, baseline),
        expertise_effect=rank_biserial(current, baseline),
    )
