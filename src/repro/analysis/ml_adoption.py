"""T4: machine-learning adoption and framework use."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.trends import TrendEngine, TrendRow
from repro.stats.intervals import BinomialInterval, wilson_interval
from repro.survey.responses import ResponseSet

__all__ = ["MLAdoptionSummary", "ml_adoption_summary"]


@dataclass(frozen=True)
class MLAdoptionSummary:
    """T4: ML adoption trend plus framework shares among 2024 ML users.

    Attributes
    ----------
    adoption:
        uses_ml trend row between cohorts.
    framework_shares:
        Mapping framework -> Wilson interval of its share among current-
        cohort ML users who listed frameworks.
    n_ml_users:
        Number of current-cohort respondents who answered the framework
        item (the denominators).
    """

    adoption: TrendRow
    framework_shares: dict[str, BinomialInterval]
    n_ml_users: int


def ml_adoption_summary(
    responses: ResponseSet,
    baseline_cohort: str = "2011",
    current_cohort: str = "2024",
    confidence: float = 0.95,
) -> MLAdoptionSummary:
    """Compute T4."""
    engine = TrendEngine(responses, baseline_cohort, current_cohort)
    adoption = engine.yes_no_trend("uses_ml")

    current = responses.by_cohort(current_cohort)
    question = current.questionnaire["ml_frameworks"]
    matrix = current.selection_matrix("ml_frameworks")
    answered = current.answered_mask("ml_frameworks")
    n = int(answered.sum())
    shares: dict[str, BinomialInterval] = {}
    if n > 0:
        for j, framework in enumerate(question.options):
            count = int(matrix[answered, j].sum())
            shares[framework] = wilson_interval(count, n, confidence)
    return MLAdoptionSummary(
        adoption=adoption, framework_shares=shares, n_ml_users=n
    )
