"""X6: work-environment practices (OS, editors, hours, training, OSS)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.crosstab import COHORT, CrossTab, crosstab
from repro.core.trends import TrendEngine, TrendRow, TrendTable
from repro.stats.descriptive import Summary, summarize
from repro.survey.responses import ResponseSet

__all__ = ["EnvironmentSummary", "environment_summary"]


@dataclass(frozen=True)
class EnvironmentSummary:
    """Work-environment panel.

    Attributes
    ----------
    os_by_cohort:
        Primary development OS cross-tab.
    editor_trends:
        Editor/IDE multi-select trend family (Holm-corrected).
    hours_per_week:
        Per-cohort summaries of weekly computational hours.
    hpc_training:
        Trend among cluster users (the item is gated on cluster use).
    open_source:
        Open-source contribution trend.
    """

    os_by_cohort: CrossTab
    editor_trends: TrendTable
    hours_per_week: dict[str, Summary]
    hpc_training: TrendRow
    open_source: TrendRow


def environment_summary(
    responses: ResponseSet,
    baseline_cohort: str = "2011",
    current_cohort: str = "2024",
) -> EnvironmentSummary:
    """Compute the work-environment panel."""
    engine = TrendEngine(responses, baseline_cohort, current_cohort)
    hours: dict[str, Summary] = {}
    for cohort, subset in responses.split_cohorts().items():
        values = subset.numeric_column("hours_per_week")
        values = values[~np.isnan(values)]
        if values.size:
            hours[cohort] = summarize(values)
    return EnvironmentSummary(
        os_by_cohort=crosstab(responses, "primary_os", COHORT),
        editor_trends=engine.multi_choice_trend(
            "editors", title="editor/IDE use"
        ).corrected("holm"),
        hours_per_week=hours,
        hpc_training=engine.yes_no_trend("hpc_training", label="HPC training"),
        open_source=engine.yes_no_trend(
            "contributes_open_source", label="open-source contribution"
        ),
    )
