"""F8: survey-vs-telemetry concordance.

The study's cross-validation check: fields whose respondents *say* they use
GPUs should be the fields whose groups *burn* GPU-hours. This joins the
2024 survey's per-field GPU adoption with the telemetry's per-field
GPU-hour shares and reports a rank correlation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as _sps

from repro.analysis.parallelism import gpu_adoption_by_field
from repro.core.study import Study

__all__ = ["ConcordanceResult", "gpu_concordance"]


@dataclass(frozen=True)
class ConcordanceResult:
    """F8 contents.

    Attributes
    ----------
    fields:
        Fields present in both sources, sorted alphabetically.
    survey_share:
        Per-field share of respondents reporting GPU use.
    telemetry_share:
        Per-field share of total GPU-hours.
    spearman_rho, p_value:
        Rank correlation between the two vectors.
    """

    fields: tuple[str, ...]
    survey_share: np.ndarray
    telemetry_share: np.ndarray
    spearman_rho: float
    p_value: float


def gpu_concordance(study: Study, min_n: int = 5) -> ConcordanceResult:
    """Compute F8 for a study."""
    adoption = gpu_adoption_by_field(
        study.responses, cohort=study.current_cohort, min_n=min_n
    )
    survey = {a.field: a.interval.estimate for a in adoption}

    gpu_jobs = study.telemetry.gpu_jobs()
    if len(gpu_jobs) == 0:
        raise ValueError("no GPU jobs in telemetry")
    hours = gpu_jobs.gpu_hours
    total = float(hours.sum())
    # One bincount over the field dictionary codes replaces a mask pass
    # per field; categories are sorted, matching the old fields() order.
    block = gpu_jobs.cat("field")
    per_field = np.bincount(block.codes, weights=hours, minlength=len(block.categories))
    telemetry = {
        field_name: float(per_field[code] / total)
        for code, field_name in enumerate(block.categories)
    }

    common = tuple(sorted(set(survey) & set(telemetry)))
    if len(common) < 3:
        raise ValueError(
            f"need >= 3 fields present in both sources, got {len(common)}"
        )
    survey_vec = np.array([survey[f] for f in common])
    telemetry_vec = np.array([telemetry[f] for f in common])
    rho, p = _sps.spearmanr(survey_vec, telemetry_vec)
    return ConcordanceResult(
        fields=common,
        survey_share=survey_vec,
        telemetry_share=telemetry_vec,
        spearman_rho=float(rho),
        p_value=float(p),
    )
