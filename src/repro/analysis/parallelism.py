"""T3 / F2: parallelism modality use and GPU adoption by field."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.trends import TrendEngine, TrendRow, TrendTable
from repro.stats.intervals import BinomialInterval, wilson_interval
from repro.survey.responses import ResponseSet

__all__ = ["parallelism_rates", "parallel_mode_trends", "gpu_adoption_by_field"]


@dataclass(frozen=True)
class ParallelismRates:
    """Headline parallelism adoption rows (T3 top panel)."""

    uses_parallelism: TrendRow
    uses_cluster: TrendRow
    uses_gpu: TrendRow


def parallelism_rates(
    responses: ResponseSet,
    baseline_cohort: str = "2011",
    current_cohort: str = "2024",
) -> ParallelismRates:
    """Overall parallelism/cluster/GPU adoption trends."""
    engine = TrendEngine(responses, baseline_cohort, current_cohort)
    return ParallelismRates(
        uses_parallelism=engine.yes_no_trend("uses_parallelism"),
        uses_cluster=engine.yes_no_trend("uses_cluster"),
        uses_gpu=engine.yes_no_trend("uses_gpu"),
    )


def parallel_mode_trends(
    responses: ResponseSet,
    baseline_cohort: str = "2011",
    current_cohort: str = "2024",
) -> TrendTable:
    """T3 bottom panel: per-modality trends among *parallel users*.

    Denominators are respondents shown the parallel-modes item (skip logic
    restricts it to parallelism users), matching how the paper reports
    "share of parallel users employing MPI".
    """
    engine = TrendEngine(responses, baseline_cohort, current_cohort)
    return engine.multi_choice_trend(
        "parallel_modes", title="T3: parallel modes among parallel users"
    ).corrected("holm")


@dataclass(frozen=True, slots=True)
class FieldAdoption:
    """GPU adoption within one field (one F2 bar)."""

    field: str
    interval: BinomialInterval
    count: int
    n: int


def gpu_adoption_by_field(
    responses: ResponseSet,
    cohort: str = "2024",
    min_n: int = 5,
    confidence: float = 0.95,
) -> list[FieldAdoption]:
    """F2: share of each field's respondents reporting GPU use.

    Fields with fewer than ``min_n`` answerers are omitted (their intervals
    would span most of [0, 1] and the paper suppresses them too). Sorted by
    adoption, descending.
    """
    subset = responses.by_cohort(cohort)
    fields = subset.column("field")
    gpu = subset.column("uses_gpu")
    # Factorize once and bincount, instead of one O(n) scan per field.
    # np.unique returns labels sorted, matching the old sorted(set(...))
    # iteration, so tie order after the stable adoption sort is unchanged.
    valid = np.array([f is not None for f in fields], dtype=bool)
    answered = np.array([g is not None for g in gpu], dtype=bool)[valid]
    yes = np.array([g == "yes" for g in gpu], dtype=bool)[valid]
    if not valid.any():
        return []
    labels, codes = np.unique(
        np.asarray([f for f in fields if f is not None], dtype=str), return_inverse=True
    )
    ns = np.bincount(codes[answered], minlength=labels.size)
    counts = np.bincount(codes[answered & yes], minlength=labels.size)
    out: list[FieldAdoption] = []
    for code, field_name in enumerate(labels):
        n = int(ns[code])
        if n < min_n:
            continue
        count = int(counts[code])
        out.append(
            FieldAdoption(
                field=str(field_name),
                interval=wilson_interval(count, n, confidence),
                count=count,
                n=n,
            )
        )
    out.sort(key=lambda a: -a.interval.estimate)
    return out
