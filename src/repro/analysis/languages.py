"""T2 / F1: programming-language use by cohort."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.crosstab import COHORT, CrossTab, crosstab
from repro.core.trends import TrendEngine, TrendTable
from repro.stats.intervals import BinomialInterval, wilson_interval
from repro.survey.responses import ResponseSet

__all__ = [
    "LanguageShare",
    "language_shares",
    "language_trend_series",
    "primary_language_table",
]


@dataclass(frozen=True, slots=True)
class LanguageShare:
    """One language's multi-select share within one cohort."""

    language: str
    cohort: str
    interval: BinomialInterval
    count: int
    n: int


def language_shares(
    responses: ResponseSet, confidence: float = 0.95
) -> dict[str, list[LanguageShare]]:
    """Per-cohort language shares with Wilson intervals (table T2).

    Denominator per cohort: respondents who answered the languages item.
    """
    question = responses.questionnaire["languages"]
    out: dict[str, list[LanguageShare]] = {}
    for cohort, subset in responses.split_cohorts().items():
        matrix = subset.selection_matrix("languages")
        answered = subset.answered_mask("languages")
        n = int(answered.sum())
        if n == 0:
            out[cohort] = []
            continue
        shares = []
        for j, language in enumerate(question.options):
            count = int(matrix[answered, j].sum())
            shares.append(
                LanguageShare(
                    language=language,
                    cohort=cohort,
                    interval=wilson_interval(count, n, confidence),
                    count=count,
                    n=n,
                )
            )
        out[cohort] = shares
    return out


def language_trend_series(
    responses: ResponseSet,
    baseline_cohort: str = "2011",
    current_cohort: str = "2024",
) -> TrendTable:
    """F1: the language trend family, Holm-corrected and delta-sorted."""
    engine = TrendEngine(responses, baseline_cohort, current_cohort)
    return engine.multi_choice_trend("languages", title="F1: language trend").corrected(
        "holm"
    ).sorted_by_delta()


def primary_language_table(responses: ResponseSet) -> CrossTab:
    """Primary-language x cohort cross-tab (T2's companion panel)."""
    return crosstab(responses, "primary_language", COHORT)
