"""T8: data scale and storage locations."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.crosstab import COHORT, CrossTab, crosstab
from repro.core.instrument import DATA_SCALES
from repro.core.trends import TrendEngine, TrendTable
from repro.stats.effects import rank_biserial
from repro.stats.tests import TestResult, mann_whitney_u
from repro.survey.responses import ResponseSet

__all__ = ["StorageSummary", "storage_summary"]


@dataclass(frozen=True)
class StorageSummary:
    """T8 contents.

    Attributes
    ----------
    scale_by_cohort:
        Cross-tab of the ordinal data-scale answer by cohort.
    scale_shift_test:
        Mann-Whitney on the ordinal scale codes (did data get bigger?).
    scale_shift_effect:
        Rank-biserial (positive = current cohort reports larger data).
    locations:
        Storage-location trend family (multi-select), Holm-corrected.
    """

    scale_by_cohort: CrossTab
    scale_shift_test: TestResult
    scale_shift_effect: float
    locations: TrendTable


def _ordinal_codes(responses: ResponseSet, cohort: str) -> np.ndarray:
    order = {scale: i for i, scale in enumerate(DATA_SCALES)}
    col = responses.by_cohort(cohort).column("data_scale")
    return np.array([order[v] for v in col if v is not None], dtype=float)


def storage_summary(
    responses: ResponseSet,
    baseline_cohort: str = "2011",
    current_cohort: str = "2024",
) -> StorageSummary:
    """Compute T8."""
    baseline = _ordinal_codes(responses, baseline_cohort)
    current = _ordinal_codes(responses, current_cohort)
    if baseline.size == 0 or current.size == 0:
        raise ValueError("both cohorts need data_scale answers")
    engine = TrendEngine(responses, baseline_cohort, current_cohort)
    return StorageSummary(
        scale_by_cohort=crosstab(responses, "data_scale", COHORT),
        scale_shift_test=mann_whitney_u(current, baseline),
        scale_shift_effect=rank_biserial(current, baseline),
        locations=engine.multi_choice_trend(
            "storage_locations", title="T8: storage locations"
        ).corrected("holm"),
    )
