"""Cross-tabulation engine.

:func:`crosstab` is the vectorized engine every categorical table uses:
answers are factorized to integer codes once, the count matrix falls out of
one ``bincount`` over combined codes, and the chi-square / Cramér's V ride
along. :func:`crosstab_loop` is the straightforward per-respondent loop kept
as the reference implementation; the ablation bench
(``bench_ablation_crosstab``) measures the gap, and a test pins equality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.effects import cramers_v
from repro.stats.tests import TestResult, chi_square_test
from repro.survey.questions import SingleChoiceQuestion
from repro.survey.responses import ResponseSet

__all__ = ["CrossTab", "crosstab", "crosstab_loop"]

COHORT = "__cohort__"  # pseudo-key: cross-tab against the cohort label


@dataclass(frozen=True)
class CrossTab:
    """A two-way count table with tests.

    Attributes
    ----------
    row_labels, col_labels:
        Category labels, rows = ``row_key`` values, cols = ``col_key``.
    counts:
        Integer count matrix, shape (rows, cols); only respondents who
        answered both items are counted.
    test:
        Chi-square test of independence (over non-empty margins).
    effect:
        Cramér's V, or 0.0 when the table is degenerate.
    """

    row_key: str
    col_key: str
    row_labels: tuple[str, ...]
    col_labels: tuple[str, ...]
    counts: np.ndarray
    test: TestResult
    effect: float

    @property
    def n(self) -> int:
        return int(self.counts.sum())

    def row_shares(self) -> np.ndarray:
        """Counts normalized within each column (shares of each cohort)."""
        totals = self.counts.sum(axis=0, keepdims=True).astype(float)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(totals > 0, self.counts / totals, 0.0)

    def row(self, label: str) -> np.ndarray:
        try:
            i = self.row_labels.index(label)
        except ValueError:
            raise KeyError(f"no row {label!r}") from None
        return self.counts[i]


def _column_values(response_set: ResponseSet, key: str) -> np.ndarray:
    """Answer values for a real question or the cohort pseudo-key."""
    if key == COHORT:
        return np.array([r.cohort for r in response_set], dtype=object)
    question = response_set.questionnaire[key]
    if not isinstance(question, SingleChoiceQuestion):
        raise TypeError(f"cross-tab requires single-choice questions, got {key!r}")
    return response_set.column(key)


def _finalize(
    row_key: str,
    col_key: str,
    row_labels: tuple[str, ...],
    col_labels: tuple[str, ...],
    counts: np.ndarray,
) -> CrossTab:
    if counts.size == 0 or counts.sum() == 0:
        raise ValueError(f"cross-tab {row_key!r} x {col_key!r} has no joint answers")
    if counts.shape[0] >= 2 and counts.shape[1] >= 2:
        test = chi_square_test(counts)
        effect = cramers_v(counts)
    else:
        test = TestResult(name="chi2", statistic=0.0, p_value=1.0, dof=0)
        effect = 0.0
    return CrossTab(
        row_key=row_key,
        col_key=col_key,
        row_labels=row_labels,
        col_labels=col_labels,
        counts=counts,
        test=test,
        effect=effect,
    )


def crosstab(response_set: ResponseSet, row_key: str, col_key: str = COHORT) -> CrossTab:
    """Vectorized two-way cross-tabulation.

    Respondents missing either answer are excluded. Labels are sorted.
    """
    rows = _column_values(response_set, row_key)
    cols = _column_values(response_set, col_key)
    present = (rows != None) & (cols != None)  # noqa: E711 — element-wise over objects
    rows = rows[present].astype(str)
    cols = cols[present].astype(str)
    if rows.size == 0:
        raise ValueError(f"cross-tab {row_key!r} x {col_key!r} has no joint answers")
    row_labels, row_codes = np.unique(rows, return_inverse=True)
    col_labels, col_codes = np.unique(cols, return_inverse=True)
    combined = row_codes * col_labels.size + col_codes
    counts = np.bincount(combined, minlength=row_labels.size * col_labels.size)
    counts = counts.reshape(row_labels.size, col_labels.size)
    return _finalize(
        row_key, col_key, tuple(row_labels.tolist()), tuple(col_labels.tolist()), counts
    )


def crosstab_loop(response_set: ResponseSet, row_key: str, col_key: str = COHORT) -> CrossTab:
    """Reference per-respondent loop implementation (ablation baseline).

    Produces results identical to :func:`crosstab`.
    """
    pairs: list[tuple[str, str]] = []
    for r in response_set:
        row_value = r.cohort if row_key == COHORT else r.get(row_key, None)
        col_value = r.cohort if col_key == COHORT else r.get(col_key, None)
        if row_key != COHORT:
            question = response_set.questionnaire[row_key]
            if not isinstance(question, SingleChoiceQuestion):
                raise TypeError(f"cross-tab requires single-choice questions, got {row_key!r}")
        if row_value is not None and col_value is not None and row_value and col_value:
            pairs.append((str(row_value), str(col_value)))
    if not pairs:
        raise ValueError(f"cross-tab {row_key!r} x {col_key!r} has no joint answers")
    row_labels = tuple(sorted({p[0] for p in pairs}))
    col_labels = tuple(sorted({p[1] for p in pairs}))
    counts = np.zeros((len(row_labels), len(col_labels)), dtype=np.int64)
    row_index = {v: i for i, v in enumerate(row_labels)}
    col_index = {v: i for i, v in enumerate(col_labels)}
    for rv, cv in pairs:
        counts[row_index[rv], col_index[cv]] += 1
    return _finalize(row_key, col_key, row_labels, col_labels, counts)
