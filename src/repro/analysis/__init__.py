"""Analysis layer: turns study data into the numbers the tables report.

One module per experiment family:

* :mod:`repro.analysis.crosstab` — vectorized cross-tabulation engine (and a
  reference loop implementation for the ablation bench);
* :mod:`repro.analysis.demographics` — T1;
* :mod:`repro.analysis.languages` — T2 / F1;
* :mod:`repro.analysis.parallelism` — T3 / F2;
* :mod:`repro.analysis.ml_adoption` — T4;
* :mod:`repro.analysis.practices` — T6;
* :mod:`repro.analysis.training` — T7;
* :mod:`repro.analysis.storage` — T8;
* :mod:`repro.analysis.telemetry` — F3/F4/F5/F7/T5 over the job table;
* :mod:`repro.analysis.concordance` — F8, the survey-vs-telemetry join.
"""

from repro.analysis.crosstab import CrossTab, crosstab, crosstab_loop
from repro.analysis.demographics import DemographicsResult, demographics_table
from repro.analysis.languages import (
    LanguageShare,
    language_shares,
    language_trend_series,
    primary_language_table,
)
from repro.analysis.parallelism import (
    gpu_adoption_by_field,
    parallel_mode_trends,
    parallelism_rates,
)
from repro.analysis.ml_adoption import ml_adoption_summary
from repro.analysis.practices import practices_trends
from repro.analysis.training import training_summary
from repro.analysis.storage import storage_summary
from repro.analysis.telemetry import (
    cpu_hours_figure,
    gpu_growth_figure,
    job_width_figure,
    queue_wait_table,
    runtime_figure,
)
from repro.analysis.concordance import gpu_concordance
from repro.analysis.panel import (
    PairedChange,
    paired_multi_change,
    paired_yes_no_change,
)
from repro.analysis.quality import ItemNonresponse, QualityReport, quality_report
from repro.analysis.environment import EnvironmentSummary, environment_summary
from repro.analysis.balance import BalanceReport, BalanceRow, cohort_balance
from repro.analysis.field_profiles import FieldProfile, field_profiles
from repro.analysis.robustness import (
    HEADLINE_CLAIMS,
    ClaimResult,
    headline_robustness,
)

__all__ = [
    "CrossTab",
    "crosstab",
    "crosstab_loop",
    "DemographicsResult",
    "demographics_table",
    "LanguageShare",
    "language_shares",
    "language_trend_series",
    "primary_language_table",
    "parallelism_rates",
    "parallel_mode_trends",
    "gpu_adoption_by_field",
    "ml_adoption_summary",
    "practices_trends",
    "training_summary",
    "storage_summary",
    "cpu_hours_figure",
    "job_width_figure",
    "queue_wait_table",
    "gpu_growth_figure",
    "runtime_figure",
    "gpu_concordance",
    "PairedChange",
    "paired_yes_no_change",
    "paired_multi_change",
    "ItemNonresponse",
    "QualityReport",
    "quality_report",
    "EnvironmentSummary",
    "environment_summary",
    "BalanceRow",
    "BalanceReport",
    "cohort_balance",
    "FieldProfile",
    "field_profiles",
    "ClaimResult",
    "HEADLINE_CLAIMS",
    "headline_robustness",
]
