"""Paired (panel) analysis: within-person practice changes.

For respondents who answered both waves, changes can be tested within
person with McNemar's test — far more powerful than the between-cohort
comparison because concordant respondents cancel out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stats.tests import TestResult, mcnemar_test
from repro.survey.questions import MultiChoiceQuestion, SingleChoiceQuestion
from repro.synth.panel import PanelResponses

__all__ = ["PairedChange", "paired_yes_no_change", "paired_multi_change"]


@dataclass(frozen=True, slots=True)
class PairedChange:
    """Within-person change in one binary practice.

    Attributes
    ----------
    label:
        Practice label.
    n_pairs:
        Panel respondents who answered the item in both waves.
    n00, n01, n10, n11:
        The 2x2 paired table: first index = wave A answer, second = wave B
        (1 = adopted the practice).
    test:
        McNemar's test over the discordant pairs.
    """

    label: str
    n_pairs: int
    n00: int
    n01: int
    n10: int
    n11: int
    test: TestResult

    @property
    def adopters(self) -> int:
        """People who picked the practice up between waves."""
        return self.n01

    @property
    def abandoners(self) -> int:
        return self.n10

    @property
    def net_change(self) -> float:
        """Net adoption change as a fraction of pairs."""
        if self.n_pairs == 0:
            raise ValueError("no pairs")
        return (self.n01 - self.n10) / self.n_pairs


def _paired_flags(panel: PanelResponses, flag) -> PairedChange | tuple:
    counts = {"00": 0, "01": 0, "10": 0, "11": 0}
    for ra, rb in panel.pairs():
        a = flag(ra)
        b = flag(rb)
        if a is None or b is None:
            continue
        counts[f"{int(a)}{int(b)}"] += 1
    return counts


def paired_yes_no_change(
    panel: PanelResponses, key: str, label: str | None = None
) -> PairedChange:
    """Within-person change for a yes/no item."""
    questionnaire = panel.wave_a.questionnaire
    question = questionnaire[key]
    if not isinstance(question, SingleChoiceQuestion) or set(question.options) != {
        "yes",
        "no",
    }:
        raise TypeError(f"{key!r} is not a yes/no item")

    def flag(response):
        value = response.get(key, None)
        if value is None:
            return None
        return value == "yes"

    counts = _paired_flags(panel, flag)
    n_pairs = sum(counts.values())
    return PairedChange(
        label=label or key,
        n_pairs=n_pairs,
        n00=counts["00"],
        n01=counts["01"],
        n10=counts["10"],
        n11=counts["11"],
        test=mcnemar_test(counts["01"], counts["10"]),
    )


def paired_multi_change(
    panel: PanelResponses, key: str, option: str, label: str | None = None
) -> PairedChange:
    """Within-person change for one option of a multi-select item."""
    questionnaire = panel.wave_a.questionnaire
    question = questionnaire[key]
    if not isinstance(question, MultiChoiceQuestion):
        raise TypeError(f"{key!r} is not multi-choice")
    if option not in question.options:
        raise ValueError(f"{option!r} is not an option of {key!r}")

    def flag(response):
        value = response.get(key, None)
        if value is None:
            return None
        return option in value

    counts = _paired_flags(panel, flag)
    n_pairs = sum(counts.values())
    return PairedChange(
        label=label or f"{key}={option}",
        n_pairs=n_pairs,
        n00=counts["00"],
        n01=counts["01"],
        n10=counts["10"],
        n11=counts["11"],
        test=mcnemar_test(counts["01"], counts["10"]),
    )
