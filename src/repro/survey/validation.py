"""Response validation against a questionnaire.

The validator distinguishes four issue kinds so ingest pipelines can decide
which are fatal (unknown keys, type errors) and which are quality signals
(missing required answers, answers to questions skip logic hid).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.survey.responses import MISSING, Response, ResponseSet
from repro.survey.schema import Questionnaire

__all__ = [
    "IssueKind",
    "ValidationIssue",
    "ValidationReport",
    "validate_response",
    "validate_response_set",
]


class IssueKind(enum.Enum):
    UNKNOWN_KEY = "unknown_key"
    INVALID_VALUE = "invalid_value"
    MISSING_REQUIRED = "missing_required"
    NOT_APPLICABLE = "not_applicable"


@dataclass(frozen=True, slots=True)
class ValidationIssue:
    """One problem found in one response."""

    respondent_id: str
    question_key: str
    kind: IssueKind
    message: str


@dataclass(frozen=True, slots=True)
class ValidationReport:
    """All issues for a response set, with convenience filters."""

    issues: tuple[ValidationIssue, ...]
    n_responses: int

    @property
    def ok(self) -> bool:
        """True when no *fatal* issues (unknown keys / invalid values) exist."""
        return not any(
            i.kind in (IssueKind.UNKNOWN_KEY, IssueKind.INVALID_VALUE)
            for i in self.issues
        )

    @property
    def clean(self) -> bool:
        """True when there are no issues of any kind."""
        return not self.issues

    def of_kind(self, kind: IssueKind) -> tuple[ValidationIssue, ...]:
        return tuple(i for i in self.issues if i.kind == kind)

    def by_respondent(self) -> dict[str, list[ValidationIssue]]:
        out: dict[str, list[ValidationIssue]] = {}
        for issue in self.issues:
            out.setdefault(issue.respondent_id, []).append(issue)
        return out


def validate_response(
    questionnaire: Questionnaire, response: Response
) -> list[ValidationIssue]:
    """Validate one response; returns its issues (possibly empty)."""
    issues: list[ValidationIssue] = []
    rid = response.respondent_id

    known = set(questionnaire.keys)
    for key in response.answers:
        if key not in known:
            issues.append(
                ValidationIssue(rid, key, IssueKind.UNKNOWN_KEY, f"unknown key {key!r}")
            )

    applicable = set(questionnaire.applicable_keys(response.answers))
    for q in questionnaire.questions:
        raw = response.answers.get(q.key, MISSING)
        answered = raw is not MISSING
        if q.key not in applicable:
            if answered:
                issues.append(
                    ValidationIssue(
                        rid,
                        q.key,
                        IssueKind.NOT_APPLICABLE,
                        "answered a question hidden by skip logic",
                    )
                )
            continue
        if not answered:
            if q.required:
                issues.append(
                    ValidationIssue(
                        rid, q.key, IssueKind.MISSING_REQUIRED, "required answer missing"
                    )
                )
            continue
        if not q.accepts(raw):
            issues.append(
                ValidationIssue(
                    rid,
                    q.key,
                    IssueKind.INVALID_VALUE,
                    f"value {raw!r} not admissible for {q.kind.value} question",
                )
            )
    return issues


def validate_response_set(response_set: ResponseSet) -> ValidationReport:
    """Validate every response in the set against its questionnaire."""
    issues: list[ValidationIssue] = []
    for response in response_set:
        issues.extend(validate_response(response_set.questionnaire, response))
    return ValidationReport(issues=tuple(issues), n_responses=len(response_set))
