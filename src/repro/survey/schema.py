"""Questionnaire schema: sections, ordering, and skip logic.

Skip logic is deliberately simple — a question may be gated on a single
earlier answer via :class:`ShowIf` — which matches how the study's follow-up
questions work ("if you use a cluster, which scheduler?") and keeps
applicability decidable by a single pass over answers.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from repro.survey.questions import (
    MultiChoiceQuestion,
    Question,
    SingleChoiceQuestion,
)

__all__ = ["SchemaError", "ShowIf", "Section", "Questionnaire"]


class SchemaError(ValueError):
    """Raised for structurally invalid questionnaires."""


@dataclass(frozen=True, slots=True)
class ShowIf:
    """Gate: show the question only if an earlier answer matches.

    For a single-choice gate, matches when the answer equals any of
    ``values``; for a multi-choice gate, matches when the selection
    intersects ``values``.
    """

    question_key: str
    values: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise SchemaError(f"ShowIf on {self.question_key!r} has no values")

    def matches(self, answer) -> bool:
        """Whether a concrete answer satisfies the gate."""
        if answer is None:
            return False
        if isinstance(answer, (list, tuple, set, frozenset)):
            return bool(set(answer) & set(self.values))
        return answer in self.values


@dataclass(frozen=True, slots=True)
class Section:
    """A titled group of questions, rendered together."""

    title: str
    question_keys: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.title.strip():
            raise SchemaError("section title is empty")
        if not self.question_keys:
            raise SchemaError(f"section {self.title!r} has no questions")


class Questionnaire:
    """An ordered, validated survey instrument.

    Parameters
    ----------
    name:
        Instrument identifier (e.g. ``"practice-survey-2024"``).
    questions:
        Questions in presentation order; keys must be unique.
    sections:
        Optional grouping; every listed key must exist, and a question may
        appear in at most one section.
    skip_logic:
        Mapping from a gated question's key to its :class:`ShowIf`. Gates must
        reference *earlier* choice questions (no forward or self references),
        so applicability is resolvable in one forward pass.
    """

    def __init__(
        self,
        name: str,
        questions: Iterable[Question],
        sections: Iterable[Section] = (),
        skip_logic: Mapping[str, ShowIf] | None = None,
    ) -> None:
        if not name.strip():
            raise SchemaError("questionnaire name is empty")
        self.name = name
        self._questions: list[Question] = list(questions)
        if not self._questions:
            raise SchemaError("questionnaire has no questions")
        keys = [q.key for q in self._questions]
        dupes = {k for k in keys if keys.count(k) > 1}
        if dupes:
            raise SchemaError(f"duplicate question keys: {sorted(dupes)}")
        self._by_key: dict[str, Question] = {q.key: q for q in self._questions}
        self._order: dict[str, int] = {k: i for i, k in enumerate(keys)}

        self.sections: tuple[Section, ...] = tuple(sections)
        seen_in_section: set[str] = set()
        for sec in self.sections:
            for k in sec.question_keys:
                if k not in self._by_key:
                    raise SchemaError(f"section {sec.title!r} references unknown key {k!r}")
                if k in seen_in_section:
                    raise SchemaError(f"question {k!r} appears in multiple sections")
                seen_in_section.add(k)

        self.skip_logic: dict[str, ShowIf] = dict(skip_logic or {})
        for gated, gate in self.skip_logic.items():
            if gated not in self._by_key:
                raise SchemaError(f"skip logic gates unknown question {gated!r}")
            if gate.question_key not in self._by_key:
                raise SchemaError(
                    f"skip logic for {gated!r} references unknown question "
                    f"{gate.question_key!r}"
                )
            if self._order[gate.question_key] >= self._order[gated]:
                raise SchemaError(
                    f"skip logic for {gated!r} must reference an earlier question"
                )
            gating_q = self._by_key[gate.question_key]
            if not isinstance(gating_q, (SingleChoiceQuestion, MultiChoiceQuestion)):
                raise SchemaError(
                    f"skip logic for {gated!r} must gate on a choice question"
                )
            unknown = set(gate.values) - set(gating_q.options)
            if unknown and not getattr(gating_q, "allow_other", False):
                raise SchemaError(
                    f"skip logic for {gated!r} references options {sorted(unknown)} "
                    f"not offered by {gate.question_key!r}"
                )

    # -- look-ups ---------------------------------------------------------

    @property
    def questions(self) -> tuple[Question, ...]:
        """Questions in presentation order."""
        return tuple(self._questions)

    @property
    def keys(self) -> tuple[str, ...]:
        return tuple(q.key for q in self._questions)

    def __len__(self) -> int:
        return len(self._questions)

    def __contains__(self, key: str) -> bool:
        return key in self._by_key

    def __getitem__(self, key: str) -> Question:
        try:
            return self._by_key[key]
        except KeyError:
            raise KeyError(f"no question with key {key!r} in {self.name!r}") from None

    def applicable_keys(self, answers: Mapping[str, object]) -> tuple[str, ...]:
        """Keys of questions shown to a respondent with the given answers.

        A gated question whose gate fails (or whose gating question was
        itself not shown / unanswered) is omitted.
        """
        shown: list[str] = []
        shown_set: set[str] = set()
        for q in self._questions:
            gate = self.skip_logic.get(q.key)
            if gate is not None:
                if gate.question_key not in shown_set:
                    continue
                if not gate.matches(answers.get(gate.question_key)):
                    continue
            shown.append(q.key)
            shown_set.add(q.key)
        return tuple(shown)
