"""Survey instrument substrate.

Models everything the study needs to define and hold a questionnaire wave:

* question types (single choice, multi choice, Likert, numeric, free text);
* a :class:`Questionnaire` schema with sections and skip logic;
* response containers (:class:`Response`, :class:`ResponseSet`) with a
  columnar view for vectorized analysis;
* response validation against the instrument;
* codebook generation;
* anonymization utilities (id hashing, rare-category suppression).

The paper's real instrument is private; :mod:`repro.core.calibration` builds
the reconstructed instrument from this substrate.
"""

from repro.survey.questions import (
    FreeTextQuestion,
    LikertQuestion,
    MultiChoiceQuestion,
    NumericQuestion,
    Question,
    QuestionKind,
    SingleChoiceQuestion,
)
from repro.survey.schema import Questionnaire, SchemaError, Section, ShowIf
from repro.survey.responses import (
    MISSING,
    Missing,
    Response,
    ResponseSet,
)
from repro.survey.validation import (
    ValidationIssue,
    ValidationReport,
    validate_response,
    validate_response_set,
)
from repro.survey.codebook import Codebook, CodebookEntry, build_codebook
from repro.survey.anonymize import (
    anonymize_ids,
    suppress_rare_categories,
)
from repro.survey.diff import InstrumentDiff, QuestionChange, diff_questionnaires

__all__ = [
    "QuestionKind",
    "Question",
    "SingleChoiceQuestion",
    "MultiChoiceQuestion",
    "LikertQuestion",
    "NumericQuestion",
    "FreeTextQuestion",
    "Questionnaire",
    "Section",
    "ShowIf",
    "SchemaError",
    "Missing",
    "MISSING",
    "Response",
    "ResponseSet",
    "ValidationIssue",
    "ValidationReport",
    "validate_response",
    "validate_response_set",
    "Codebook",
    "CodebookEntry",
    "build_codebook",
    "anonymize_ids",
    "suppress_rare_categories",
    "InstrumentDiff",
    "QuestionChange",
    "diff_questionnaires",
]
