"""Instrument diffing: document comparability across waves.

Longitudinal comparisons are only valid where the two waves asked the same
thing. :func:`diff_questionnaires` produces the comparability record the
methods section needs: which items are identical, which changed (text,
options, gating), and which exist in only one wave.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.survey.questions import (
    LikertQuestion,
    MultiChoiceQuestion,
    NumericQuestion,
    Question,
    SingleChoiceQuestion,
)
from repro.survey.schema import Questionnaire

__all__ = ["QuestionChange", "InstrumentDiff", "diff_questionnaires"]


@dataclass(frozen=True, slots=True)
class QuestionChange:
    """One changed item: the key plus human-readable change descriptions."""

    key: str
    changes: tuple[str, ...]


@dataclass(frozen=True)
class InstrumentDiff:
    """Comparison of two questionnaires.

    Attributes
    ----------
    identical:
        Keys asked identically in both waves (safe to trend).
    changed:
        Items present in both but altered, with descriptions.
    only_in_a, only_in_b:
        Keys unique to one wave (no trend possible).
    """

    identical: tuple[str, ...]
    changed: tuple[QuestionChange, ...]
    only_in_a: tuple[str, ...]
    only_in_b: tuple[str, ...]

    @property
    def comparable(self) -> bool:
        """Whether every shared item is identical."""
        return not self.changed

    def render(self) -> str:
        """Plain-text comparability report."""
        lines = [
            f"identical items: {len(self.identical)}",
            f"changed items:   {len(self.changed)}",
            f"only in wave A:  {len(self.only_in_a)}",
            f"only in wave B:  {len(self.only_in_b)}",
        ]
        for change in self.changed:
            lines.append(f"  ~ {change.key}:")
            lines.extend(f"      - {c}" for c in change.changes)
        for key in self.only_in_a:
            lines.append(f"  - {key} (dropped in wave B)")
        for key in self.only_in_b:
            lines.append(f"  + {key} (new in wave B)")
        return "\n".join(lines)


def _describe_changes(a: Question, b: Question) -> list[str]:
    changes: list[str] = []
    if type(a) is not type(b):
        changes.append(f"kind changed: {a.kind.value} -> {b.kind.value}")
        return changes  # finer comparisons are meaningless across kinds
    if a.text != b.text:
        changes.append("wording changed")
    if a.required != b.required:
        changes.append(f"required: {a.required} -> {b.required}")
    if isinstance(a, (SingleChoiceQuestion, MultiChoiceQuestion)):
        added = set(b.options) - set(a.options)
        removed = set(a.options) - set(b.options)
        if added:
            changes.append(f"options added: {sorted(added)}")
        if removed:
            changes.append(f"options removed: {sorted(removed)}")
        if not added and not removed and a.options != b.options:
            changes.append("option order changed")
    if isinstance(a, LikertQuestion) and a.points != b.points:
        changes.append(f"scale points: {a.points} -> {b.points}")
    if isinstance(a, NumericQuestion):
        if (a.minimum, a.maximum) != (b.minimum, b.maximum):
            changes.append(
                f"range: [{a.minimum}, {a.maximum}] -> [{b.minimum}, {b.maximum}]"
            )
    return changes


def diff_questionnaires(a: Questionnaire, b: Questionnaire) -> InstrumentDiff:
    """Diff two instruments item by item (gating changes included)."""
    keys_a = set(a.keys)
    keys_b = set(b.keys)
    shared = [key for key in a.keys if key in keys_b]  # wave-A order

    identical: list[str] = []
    changed: list[QuestionChange] = []
    for key in shared:
        changes = _describe_changes(a[key], b[key])
        gate_a = a.skip_logic.get(key)
        gate_b = b.skip_logic.get(key)
        if gate_a != gate_b:
            changes.append(f"gating changed: {gate_a} -> {gate_b}")
        if changes:
            changed.append(QuestionChange(key=key, changes=tuple(changes)))
        else:
            identical.append(key)
    return InstrumentDiff(
        identical=tuple(identical),
        changed=tuple(changed),
        only_in_a=tuple(k for k in a.keys if k not in keys_b),
        only_in_b=tuple(k for k in b.keys if k not in keys_a),
    )
