"""Response containers.

:class:`Response` is the per-respondent record; :class:`ResponseSet` is the
analysis-facing container, which lazily materializes *columnar* views
(struct-of-arrays) so cross-tab and proportion code runs vectorized instead
of looping over respondent objects.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.survey.questions import MultiChoiceQuestion, QuestionKind
from repro.survey.schema import Questionnaire

__all__ = ["Missing", "MISSING", "Response", "ResponseSet"]


class Missing:
    """Singleton sentinel for 'question not answered / not applicable'."""

    _instance: "Missing | None" = None

    def __new__(cls) -> "Missing":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "MISSING"

    def __bool__(self) -> bool:
        return False


MISSING = Missing()


@dataclass(frozen=True, slots=True)
class Response:
    """One respondent's answers.

    Attributes
    ----------
    respondent_id:
        Opaque unique identifier (hashed by :mod:`repro.survey.anonymize`
        before export).
    cohort:
        Study wave label, e.g. ``"2011"`` or ``"2024"``.
    answers:
        Mapping question key -> raw answer. Keys absent from the mapping are
        treated as missing; the sentinel :data:`MISSING` may also be stored
        explicitly.
    """

    respondent_id: str
    cohort: str
    answers: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.respondent_id:
            raise ValueError("respondent_id is empty")
        if not self.cohort:
            raise ValueError("cohort is empty")

    def get(self, key: str, default=MISSING):
        """Answer for ``key``, or ``default`` if absent/missing."""
        value = self.answers.get(key, default)
        return default if value is MISSING else value

    def answered(self, key: str) -> bool:
        """Whether the respondent gave a non-missing answer for ``key``."""
        value = self.answers.get(key, MISSING)
        return value is not MISSING


class ResponseSet:
    """An immutable collection of responses to one questionnaire.

    Provides vectorized accessors:

    * :meth:`column` — object array of raw answers (``None`` for missing);
    * :meth:`selection_matrix` — boolean (n_respondents, n_options) matrix
      for a multi-choice question, the core input of every adoption table;
    * :meth:`numeric_column` — float array with NaN for missing.
    """

    def __init__(self, questionnaire: Questionnaire, responses: Iterable[Response]) -> None:
        self.questionnaire = questionnaire
        self._responses: tuple[Response, ...] = tuple(responses)
        ids = [r.respondent_id for r in self._responses]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise ValueError(f"duplicate respondent ids: {dupes[:5]}")
        self._column_cache: dict[str, np.ndarray] = {}
        self._matrix_cache: dict[str, np.ndarray] = {}

    # -- basics -----------------------------------------------------------

    def __getstate__(self) -> dict:
        # Memo caches are derived state; excluding them keeps pickles
        # canonical — a freshly built set and its cache-loaded copy
        # serialize identically no matter which accessors have run —
        # which the artifact cache's byte-identity guarantees rely on.
        state = self.__dict__.copy()
        state["_column_cache"] = {}
        state["_matrix_cache"] = {}
        return state

    def __len__(self) -> int:
        return len(self._responses)

    def __iter__(self) -> Iterator[Response]:
        return iter(self._responses)

    def __getitem__(self, index: int) -> Response:
        return self._responses[index]

    @property
    def responses(self) -> tuple[Response, ...]:
        return self._responses

    @property
    def cohorts(self) -> tuple[str, ...]:
        """Distinct cohort labels present, sorted."""
        return tuple(sorted({r.cohort for r in self._responses}))

    def filter(self, predicate) -> "ResponseSet":
        """New ResponseSet keeping responses where ``predicate(r)`` is true."""
        return ResponseSet(self.questionnaire, [r for r in self._responses if predicate(r)])

    def by_cohort(self, cohort: str) -> "ResponseSet":
        """Subset for a single cohort label."""
        return self.filter(lambda r: r.cohort == cohort)

    def split_cohorts(self) -> dict[str, "ResponseSet"]:
        """Mapping cohort label -> subset, covering all responses."""
        return {c: self.by_cohort(c) for c in self.cohorts}

    def merge(self, other: "ResponseSet") -> "ResponseSet":
        """Union of two response sets over the same questionnaire."""
        if other.questionnaire.name != self.questionnaire.name:
            raise ValueError(
                "cannot merge response sets from different questionnaires: "
                f"{self.questionnaire.name!r} vs {other.questionnaire.name!r}"
            )
        return ResponseSet(self.questionnaire, self._responses + other._responses)

    # -- columnar views ----------------------------------------------------

    def column(self, key: str) -> np.ndarray:
        """Object array of raw answers for ``key`` (None where missing)."""
        if key not in self.questionnaire:
            raise KeyError(f"unknown question key {key!r}")
        cached = self._column_cache.get(key)
        if cached is not None:
            return cached
        out = np.empty(len(self._responses), dtype=object)
        for i, r in enumerate(self._responses):
            value = r.answers.get(key, MISSING)
            out[i] = None if value is MISSING else value
        self._column_cache[key] = out
        return out

    def answered_mask(self, key: str) -> np.ndarray:
        """Boolean mask of respondents who answered ``key``."""
        col = self.column(key)
        return np.array([v is not None for v in col], dtype=bool)

    def numeric_column(self, key: str) -> np.ndarray:
        """Float array for a numeric/Likert question, NaN where missing."""
        q = self.questionnaire[key]
        if q.kind not in (QuestionKind.NUMERIC, QuestionKind.LIKERT):
            raise TypeError(f"question {key!r} is {q.kind.value}, not numeric")
        col = self.column(key)
        return np.array(
            [float(v) if v is not None else np.nan for v in col], dtype=float
        )

    def selection_matrix(self, key: str) -> np.ndarray:
        """Boolean (n, n_options) matrix for a multi-choice question.

        Rows for respondents who did not answer are all-False; use
        :meth:`answered_mask` to restrict denominators to answerers.
        """
        q = self.questionnaire[key]
        if not isinstance(q, MultiChoiceQuestion):
            raise TypeError(f"question {key!r} is not multi-choice")
        cached = self._matrix_cache.get(key)
        if cached is not None:
            return cached
        option_index = {opt: j for j, opt in enumerate(q.options)}
        mat = np.zeros((len(self._responses), len(q.options)), dtype=bool)
        col = self.column(key)
        for i, value in enumerate(col):
            if value is None:
                continue
            for item in value:
                j = option_index.get(item)
                if j is not None:
                    mat[i, j] = True
        self._matrix_cache[key] = mat
        return mat

    def completion_rate(self) -> float:
        """Mean fraction of *applicable* questions answered per respondent."""
        if not self._responses:
            raise ValueError("empty response set")
        rates = []
        for r in self._responses:
            applicable = self.questionnaire.applicable_keys(r.answers)
            if not applicable:
                rates.append(1.0)
                continue
            answered = sum(1 for k in applicable if r.answered(k))
            rates.append(answered / len(applicable))
        return float(np.mean(rates))
