"""Question types for the study instrument.

Each question is a frozen dataclass with an ``accepts`` method deciding
whether a raw answer value is admissible, used both by the validator and by
the synthetic respondent generator's self-checks.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field

__all__ = [
    "QuestionKind",
    "Question",
    "SingleChoiceQuestion",
    "MultiChoiceQuestion",
    "LikertQuestion",
    "NumericQuestion",
    "FreeTextQuestion",
]

_KEY_RE = re.compile(r"^[a-z][a-z0-9_]*$")


class QuestionKind(enum.Enum):
    """Discriminator for question types, stable across serialization."""

    SINGLE_CHOICE = "single_choice"
    MULTI_CHOICE = "multi_choice"
    LIKERT = "likert"
    NUMERIC = "numeric"
    FREE_TEXT = "free_text"


@dataclass(frozen=True, slots=True)
class Question:
    """Base question: a stable key plus display text.

    Attributes
    ----------
    key:
        Snake-case variable name; becomes the column name in the codebook and
        in exported datasets.
    text:
        The prompt shown to a respondent.
    required:
        Whether the validator flags a missing answer.
    """

    key: str
    text: str
    required: bool = True

    def __post_init__(self) -> None:
        if not _KEY_RE.match(self.key):
            raise ValueError(f"question key {self.key!r} is not snake_case")
        if not self.text.strip():
            raise ValueError(f"question {self.key!r} has empty text")

    @property
    def kind(self) -> QuestionKind:  # pragma: no cover - overridden
        raise NotImplementedError

    def accepts(self, value) -> bool:  # pragma: no cover - overridden
        raise NotImplementedError


def _check_options(key: str, options: tuple[str, ...]) -> None:
    if len(options) < 2:
        raise ValueError(f"question {key!r} needs at least 2 options")
    if len(set(options)) != len(options):
        raise ValueError(f"question {key!r} has duplicate options")
    if any(not o.strip() for o in options):
        raise ValueError(f"question {key!r} has a blank option")


@dataclass(frozen=True, slots=True)
class SingleChoiceQuestion(Question):
    """Pick exactly one option; optionally allows a write-in 'other'."""

    options: tuple[str, ...] = ()
    allow_other: bool = False

    def __post_init__(self) -> None:
        Question.__post_init__(self)
        _check_options(self.key, self.options)

    @property
    def kind(self) -> QuestionKind:
        return QuestionKind.SINGLE_CHOICE

    def accepts(self, value) -> bool:
        if not isinstance(value, str):
            return False
        if value in self.options:
            return True
        return self.allow_other and bool(value.strip())


@dataclass(frozen=True, slots=True)
class MultiChoiceQuestion(Question):
    """Pick any subset of options (language use, tool use, ...)."""

    options: tuple[str, ...] = ()
    min_selected: int = 0
    max_selected: int | None = None

    def __post_init__(self) -> None:
        Question.__post_init__(self)
        _check_options(self.key, self.options)
        if self.min_selected < 0:
            raise ValueError(f"question {self.key!r}: min_selected < 0")
        if self.max_selected is not None and self.max_selected < self.min_selected:
            raise ValueError(f"question {self.key!r}: max_selected < min_selected")

    @property
    def kind(self) -> QuestionKind:
        return QuestionKind.MULTI_CHOICE

    def accepts(self, value) -> bool:
        if not isinstance(value, (list, tuple, frozenset, set)):
            return False
        items = list(value)
        if len(set(items)) != len(items):
            return False
        if any(item not in self.options for item in items):
            return False
        if len(items) < self.min_selected:
            return False
        if self.max_selected is not None and len(items) > self.max_selected:
            return False
        return True


@dataclass(frozen=True, slots=True)
class LikertQuestion(Question):
    """Ordered scale question, answered with an integer in [1, points]."""

    points: int = 5
    low_label: str = "strongly disagree"
    high_label: str = "strongly agree"

    def __post_init__(self) -> None:
        Question.__post_init__(self)
        if self.points < 2:
            raise ValueError(f"question {self.key!r}: Likert needs >= 2 points")

    @property
    def kind(self) -> QuestionKind:
        return QuestionKind.LIKERT

    def accepts(self, value) -> bool:
        return (
            isinstance(value, int)
            and not isinstance(value, bool)
            and 1 <= value <= self.points
        )


@dataclass(frozen=True, slots=True)
class NumericQuestion(Question):
    """Numeric answer with optional closed range (e.g. years of experience)."""

    minimum: float | None = None
    maximum: float | None = None
    integer_only: bool = False
    unit: str = ""

    def __post_init__(self) -> None:
        Question.__post_init__(self)
        if (
            self.minimum is not None
            and self.maximum is not None
            and self.minimum > self.maximum
        ):
            raise ValueError(f"question {self.key!r}: minimum > maximum")

    @property
    def kind(self) -> QuestionKind:
        return QuestionKind.NUMERIC

    def accepts(self, value) -> bool:
        if isinstance(value, bool):
            return False
        if self.integer_only and not isinstance(value, int):
            return False
        if not isinstance(value, (int, float)):
            return False
        if value != value:  # NaN
            return False
        if self.minimum is not None and value < self.minimum:
            return False
        if self.maximum is not None and value > self.maximum:
            return False
        return True


@dataclass(frozen=True, slots=True)
class FreeTextQuestion(Question):
    """Open-ended answer, mined later by :mod:`repro.text`."""

    max_length: int = 2000
    required: bool = False

    def __post_init__(self) -> None:
        Question.__post_init__(self)
        if self.max_length <= 0:
            raise ValueError(f"question {self.key!r}: max_length must be positive")

    @property
    def kind(self) -> QuestionKind:
        return QuestionKind.FREE_TEXT

    def accepts(self, value) -> bool:
        return isinstance(value, str) and len(value) <= self.max_length
