"""Anonymization utilities for releasing survey data.

Two operations the study's data release needs:

* :func:`anonymize_ids` — replace respondent identifiers with salted,
  truncated SHA-256 digests so records cannot be joined back to emails while
  remaining stable within a release (same salt -> same pseudonym).
* :func:`suppress_rare_categories` — collapse categorical answers held by
  fewer than ``k`` respondents into an "other" bucket, a k-anonymity-style
  guard against identifying the lone researcher in a small department.
"""

from __future__ import annotations

import hashlib
from collections import Counter

from repro.survey.questions import SingleChoiceQuestion
from repro.survey.responses import Response, ResponseSet

__all__ = ["anonymize_ids", "suppress_rare_categories"]


def _pseudonym(respondent_id: str, salt: str, length: int = 12) -> str:
    digest = hashlib.sha256(f"{salt}:{respondent_id}".encode("utf-8")).hexdigest()
    return f"anon-{digest[:length]}"


def anonymize_ids(response_set: ResponseSet, salt: str) -> ResponseSet:
    """Return a copy with every respondent id replaced by a pseudonym.

    Raises if the pseudonymization collides (astronomically unlikely, but a
    collision would silently merge two people's answers downstream).
    """
    if not salt:
        raise ValueError("salt must be non-empty")
    new_responses = []
    seen: dict[str, str] = {}
    for r in response_set:
        pseud = _pseudonym(r.respondent_id, salt)
        if pseud in seen and seen[pseud] != r.respondent_id:
            raise RuntimeError(f"pseudonym collision for {pseud!r}")
        seen[pseud] = r.respondent_id
        new_responses.append(
            Response(respondent_id=pseud, cohort=r.cohort, answers=dict(r.answers))
        )
    return ResponseSet(response_set.questionnaire, new_responses)


def suppress_rare_categories(
    response_set: ResponseSet,
    key: str,
    k: int = 5,
    other_label: str = "other (suppressed)",
) -> ResponseSet:
    """Collapse values of a single-choice question held by < k respondents.

    Only single-choice questions are supported: multi-choice selections are
    reported as per-option proportions, which do not isolate individuals the
    same way a unique single-choice cell does.

    Note: the returned set's answers may include ``other_label``, which is
    not one of the question's declared options; downstream tabulation treats
    it as its own category. Validation should run *before* suppression.
    """
    question = response_set.questionnaire[key]
    if not isinstance(question, SingleChoiceQuestion):
        raise TypeError(f"question {key!r} is not single-choice")
    if k < 1:
        raise ValueError("k must be >= 1")

    counts: Counter[str] = Counter()
    for r in response_set:
        value = r.get(key, None)
        if isinstance(value, str):
            counts[value] += 1
    rare = {value for value, c in counts.items() if c < k}

    new_responses = []
    for r in response_set:
        answers = dict(r.answers)
        value = answers.get(key)
        if isinstance(value, str) and value in rare:
            answers[key] = other_label
        new_responses.append(
            Response(respondent_id=r.respondent_id, cohort=r.cohort, answers=answers)
        )
    return ResponseSet(response_set.questionnaire, new_responses)
