"""Codebook generation.

A codebook documents every exported variable: name, type, allowed values,
gating, and (given data) response counts. The study ships one per wave so
secondary analysts can interpret the released dataset without the instrument.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.survey.questions import (
    FreeTextQuestion,
    LikertQuestion,
    MultiChoiceQuestion,
    NumericQuestion,
    SingleChoiceQuestion,
)
from repro.survey.responses import ResponseSet
from repro.survey.schema import Questionnaire

__all__ = ["CodebookEntry", "Codebook", "build_codebook"]


@dataclass(frozen=True, slots=True)
class CodebookEntry:
    """Documentation row for one variable."""

    key: str
    kind: str
    text: str
    required: bool
    values: tuple[str, ...]
    gated_by: str | None
    n_answered: int | None = None

    def render(self) -> str:
        """Single human-readable line for text output."""
        parts = [f"{self.key} [{self.kind}{'*' if self.required else ''}]: {self.text}"]
        if self.values:
            parts.append(f"  values: {', '.join(self.values)}")
        if self.gated_by:
            parts.append(f"  shown only if: {self.gated_by}")
        if self.n_answered is not None:
            parts.append(f"  answered by: {self.n_answered}")
        return "\n".join(parts)


@dataclass(frozen=True, slots=True)
class Codebook:
    """Ordered collection of codebook entries for one instrument."""

    instrument: str
    entries: tuple[CodebookEntry, ...]

    def __getitem__(self, key: str) -> CodebookEntry:
        for entry in self.entries:
            if entry.key == key:
                return entry
        raise KeyError(f"no codebook entry for {key!r}")

    def __len__(self) -> int:
        return len(self.entries)

    def render(self) -> str:
        """Full plain-text codebook."""
        header = f"Codebook: {self.instrument} ({len(self.entries)} variables)"
        rule = "=" * len(header)
        body = "\n\n".join(entry.render() for entry in self.entries)
        return f"{header}\n{rule}\n\n{body}\n"


def _describe_values(question) -> tuple[str, ...]:
    if isinstance(question, (SingleChoiceQuestion, MultiChoiceQuestion)):
        return tuple(question.options)
    if isinstance(question, LikertQuestion):
        return (
            f"1={question.low_label}",
            f"...",
            f"{question.points}={question.high_label}",
        )
    if isinstance(question, NumericQuestion):
        lo = "-inf" if question.minimum is None else str(question.minimum)
        hi = "+inf" if question.maximum is None else str(question.maximum)
        unit = f" {question.unit}" if question.unit else ""
        return (f"[{lo}, {hi}]{unit}",)
    if isinstance(question, FreeTextQuestion):
        return (f"free text, <= {question.max_length} chars",)
    return ()


def build_codebook(
    questionnaire: Questionnaire, responses: ResponseSet | None = None
) -> Codebook:
    """Build a :class:`Codebook`, optionally annotated with answer counts."""
    if responses is not None and responses.questionnaire.name != questionnaire.name:
        raise ValueError("responses belong to a different questionnaire")
    entries = []
    for q in questionnaire.questions:
        gate = questionnaire.skip_logic.get(q.key)
        gated_by = (
            f"{gate.question_key} in {{{', '.join(gate.values)}}}" if gate else None
        )
        n_answered = None
        if responses is not None:
            n_answered = int(responses.answered_mask(q.key).sum())
        entries.append(
            CodebookEntry(
                key=q.key,
                kind=q.kind.value,
                text=q.text,
                required=q.required,
                values=_describe_values(q),
                gated_by=gated_by,
                n_answered=n_answered,
            )
        )
    return Codebook(instrument=questionnaire.name, entries=tuple(entries))
