"""Command-line interface.

Subcommands mirror the workflows a research-computing group runs:

* ``generate``   — synthesize the study's raw data (responses + accounting);
* ``validate``   — QA a JSONL response export against the instrument;
* ``audit``      — reproducibility audit (perturbation matrix + report
  card), or QA a sacct accounting export when given a path;
* ``codebook``   — print the instrument codebook;
* ``experiment`` — regenerate one table/figure by id;
* ``report``     — render the full markdown report;
* ``trace``      — run (or load) a traced report build and analyze it;
* ``bench``      — wall-clock substrate benchmarks (perf trajectory);
* ``serve``      — study-as-a-service: durable row ingestion + incremental
  recompute + admission-controlled artifact serving (see docs/API.md);
* ``power``      — design-stage power calculations.

All randomness flows from ``--seed``; every command is deterministic.
Every subcommand takes ``-v/--verbose`` (repeatable) and ``-q/--quiet``;
structured run-id-tagged logs go to stderr so stdout stays parseable.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Computation-for-research practice study toolkit",
    )
    # Shared verbosity flags: one parent parser instead of per-command
    # duplicates, so `repro <anything> -v` always works the same way.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="log progress to stderr (-v = info, -vv = debug)",
    )
    common.add_argument(
        "-q",
        "--quiet",
        action="count",
        default=0,
        help="only log errors to stderr",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def command(name: str, **kwargs):
        return sub.add_parser(name, parents=[common], **kwargs)

    gen = command("generate", help="synthesize survey + telemetry data")
    gen.add_argument("--seed", type=int, default=2024)
    gen.add_argument("--baseline", type=int, default=120, help="2011 cohort size")
    gen.add_argument("--current", type=int, default=200, help="2024 cohort size")
    gen.add_argument("--months", type=int, default=6, help="telemetry window")
    gen.add_argument("--jobs-per-day", type=float, default=200.0)
    gen.add_argument("--out", type=Path, default=Path("study-data"))

    val = command("validate", help="validate a JSONL response export")
    val.add_argument("path", type=Path)
    val.add_argument(
        "--on-bad-rows",
        choices=("raise", "skip"),
        default="raise",
        help="skip = tolerate malformed rows (skipped tally is reported)",
    )

    aud = command(
        "audit",
        help=(
            "audit reproducibility (re-run the study under a perturbation "
            "matrix), or audit a sacct accounting export when PATH is given"
        ),
    )
    aud.add_argument(
        "path",
        type=Path,
        nargs="?",
        default=None,
        help="sacct export to audit (omit to run the reproducibility audit)",
    )
    aud.add_argument(
        "--on-bad-rows",
        choices=("raise", "skip"),
        default="raise",
        help="skip = tolerate malformed accounting rows (skipped tally is reported)",
    )
    aud.add_argument(
        "--quick",
        action="store_true",
        help="quick study scale (CI smoke: small cohorts, 1-month telemetry)",
    )
    aud.add_argument("--seed", type=int, default=None)
    aud.add_argument("--baseline", type=int, default=None, help="2011 cohort size")
    aud.add_argument("--current", type=int, default=None, help="2024 cohort size")
    aud.add_argument("--months", type=int, default=None, help="telemetry window")
    aud.add_argument("--jobs-per-day", type=float, default=None)
    aud.add_argument(
        "--experiments",
        default=None,
        metavar="IDS",
        help="comma-separated experiment ids to audit (default: all registered)",
    )
    aud.add_argument(
        "--matrix",
        default=None,
        metavar="LEGS",
        help=(
            "comma-separated perturbation legs (baseline,thread,process,"
            "crash-resume,faults,warm-cache); baseline is always included"
        ),
    )
    aud.add_argument(
        "--drift",
        default="",
        metavar="SCENARIO",
        help=(
            "declared drift scenario applied to every non-baseline leg "
            "(see repro.synth.scenario.DRIFT_SCENARIOS); divergence it "
            "causes is attributed instead of flagged unexplained"
        ),
    )
    aud.add_argument(
        "--durable",
        type=Path,
        default=None,
        metavar="DIR",
        help=(
            "keep each leg's cache + journal sandbox under DIR instead of "
            "a temporary directory (inspect artifacts after the audit)"
        ),
    )
    aud.add_argument(
        "--resume",
        action="store_true",
        help=(
            "reuse a prior --durable audit's per-leg caches: completed "
            "steps replay instead of recomputing (requires --durable DIR)"
        ),
    )
    aud.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="DIR",
        help="write each leg's Chrome/Perfetto trace_event JSON into DIR",
    )
    aud.add_argument(
        "--normalize",
        action="store_true",
        help=(
            "strip timing/host/run-dependent fields from the report card "
            "and traces (byte-identical across executor modes)"
        ),
    )
    aud.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the report card to FILE instead of stdout",
    )

    command("codebook", help="print the instrument codebook")

    command("experiments", help="list registered experiments")

    exp = command("experiment", help="regenerate one table/figure")
    exp.add_argument("id", help="experiment id (T1..T8, F1..F8)")
    exp.add_argument("--seed", type=int, default=2024)
    exp.add_argument("--baseline", type=int, default=120)
    exp.add_argument("--current", type=int, default=200)
    exp.add_argument("--months", type=int, default=6)
    exp.add_argument("--jobs-per-day", type=float, default=200.0)

    rep = command("report", help="render the full markdown report")
    rep.add_argument("--seed", type=int, default=2024)
    rep.add_argument("--baseline", type=int, default=120)
    rep.add_argument("--current", type=int, default=200)
    rep.add_argument("--months", type=int, default=6)
    rep.add_argument("--jobs-per-day", type=float, default=200.0)
    rep.add_argument("--out", type=Path, default=None, help="write to file instead of stdout")
    rep.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="experiment fan-out worker count (default: all cores)",
    )
    rep.add_argument(
        "--executor",
        choices=("auto", "sequential", "thread", "process"),
        default="auto",
        help="how to fan experiments out (auto = process pool when possible)",
    )
    rep.add_argument(
        "--backend",
        choices=("auto", "dist"),
        default="auto",
        help=(
            "execution backend: auto keeps the in-process executors; dist "
            "runs the report DAG on a coordinator/worker fleet over the "
            "shared cache directory (fault-tolerant, multi-process)"
        ),
    )
    rep.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fleet size for --backend dist (default: min(4, cores))",
    )
    rep.add_argument(
        "--timings",
        action="store_true",
        help="print per-experiment executor timings after the report",
    )
    rep.add_argument(
        "--keep-going",
        action="store_true",
        help=(
            "degrade gracefully: render placeholder sections for failed "
            "experiments instead of aborting (exit code 3 on partial success)"
        ),
    )
    rep.add_argument(
        "--durable",
        type=Path,
        default=None,
        metavar="DIR",
        help=(
            "run the report as a journaled, cache-addressed pipeline rooted "
            "at DIR (DIR/cache + DIR/journals); an interrupted run can be "
            "recovered with --resume"
        ),
    )
    rep.add_argument(
        "--resume",
        nargs="?",
        const="latest",
        default=None,
        metavar="RUN_ID",
        help=(
            "resume an interrupted --durable run: replay journal-completed "
            "steps from the cache, re-execute only the in-flight frontier "
            "(omit RUN_ID to resume the most recent journal)"
        ),
    )
    rep.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            "trace the report build and write a Chrome/Perfetto "
            "trace_event JSON to FILE; a critical-path summary is printed "
            "after the report (composes with --durable/--resume)"
        ),
    )

    trc = command(
        "trace", help="trace a report build (or analyze an exported trace)"
    )
    trc.add_argument(
        "--load",
        type=Path,
        default=None,
        metavar="FILE",
        help="analyze an existing trace_event JSON instead of running",
    )
    trc.add_argument("--seed", type=int, default=2024)
    trc.add_argument("--baseline", type=int, default=40, help="2011 cohort size")
    trc.add_argument("--current", type=int, default=60, help="2024 cohort size")
    trc.add_argument("--months", type=int, default=3, help="telemetry window")
    trc.add_argument("--jobs-per-day", type=float, default=60.0)
    trc.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="experiment fan-out worker count (default: all cores)",
    )
    trc.add_argument(
        "--executor",
        choices=("auto", "sequential", "thread", "process"),
        default="auto",
        help="how to fan experiments out (auto = process pool when possible)",
    )
    trc.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the Perfetto trace_event JSON here",
    )
    trc.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="write a Prometheus text-format metrics snapshot here",
    )
    trc.add_argument(
        "--resources",
        action="store_true",
        help="record per-span CPU / peak-RSS / Python-heap deltas",
    )
    trc.add_argument(
        "--check-schema",
        action="store_true",
        help="validate the trace_event schema; exit 1 on problems",
    )
    trc.add_argument(
        "--top",
        type=int,
        default=10,
        help="critical-path steps to list in the summary",
    )

    rob = command(
        "robustness", help="seed-sweep the headline claims (EXPERIMENTS.md check)"
    )
    rob.add_argument("--seeds", type=int, default=5, help="number of seeds to sweep")
    rob.add_argument("--baseline", type=int, default=120)
    rob.add_argument("--current", type=int, default=200)
    rob.add_argument("--alpha", type=float, default=0.05)

    ben = command(
        "bench", help="time the generative substrates (perf trajectory)"
    )
    ben.add_argument(
        "--scale",
        choices=("full", "quick"),
        default="full",
        help="operating point: full = tracked trajectory, quick = CI smoke",
    )
    ben.add_argument("--label", default="run", help="tag stored on the run record")
    ben.add_argument("--repeats", type=int, default=None, help="min-of-k repeat count")
    ben.add_argument(
        "--json", type=Path, default=None, help="BENCH_*.json file to append the run to"
    )
    ben.add_argument(
        "--no-end-to-end",
        action="store_true",
        help="skip the study-build + report end-to-end timing",
    )
    ben.add_argument(
        "--check",
        type=Path,
        default=None,
        help="baseline trajectory file; exit 1 if the scheduler regresses",
    )
    ben.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed slowdown vs baseline before --check fails (0.25 = +25%%)",
    )
    ben.add_argument(
        "--max-retry-overhead",
        type=float,
        default=0.02,
        help=(
            "allowed fault-free cost of the retry/timeout wrapper before "
            "--check fails (0.02 = +2%%; intra-record, no baseline needed)"
        ),
    )
    ben.add_argument(
        "--max-journal-overhead",
        type=float,
        default=0.02,
        help=(
            "allowed cost of the journal + cross-process-locking wrapper "
            "before --check fails (0.02 = +2%%; intra-record, no baseline "
            "needed)"
        ),
    )
    ben.add_argument(
        "--max-trace-overhead",
        type=float,
        default=0.03,
        help=(
            "allowed cost of running the pipeline with tracing enabled "
            "before --check fails (0.03 = +3%%; intra-record, no baseline "
            "needed — the untraced side of the same bench is the "
            "tracing-disabled path)"
        ),
    )
    ben.add_argument(
        "--max-audit-overhead",
        type=float,
        default=0.05,
        help=(
            "allowed cost of the audit harness over a plain double "
            "pipeline run before --check fails (0.05 = +5%%; intra-record, "
            "no baseline needed)"
        ),
    )
    ben.add_argument(
        "--max-dist-overhead",
        type=float,
        default=0.25,
        help=(
            "allowed per-step overhead in seconds of the dist backend over "
            "a sequential run of the same DAG before --check fails "
            "(absolute, not a ratio: fleet spawn cost is fixed, so tiny "
            "steps would always fail a ratio gate; intra-record, no "
            "baseline needed)"
        ),
    )
    ben.add_argument(
        "--max-serve-overhead",
        type=float,
        default=0.10,
        help=(
            "allowed durability cost of WAL ingestion, as a fraction of "
            "the cold serve refresh the ingest unlocks, before --check "
            "fails (0.10 = +10%%; intra-record, no baseline needed)"
        ),
    )
    ben.add_argument(
        "--max-metrics-overhead",
        type=float,
        default=0.03,
        help=(
            "allowed cost of the serve metrics plane (registry + SLO + "
            "ring) over a metrics-disabled serve cycle before --check "
            "fails (0.03 = +3%%; intra-record, no baseline needed)"
        ),
    )
    ben.add_argument(
        "--max-serve-p99",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help=(
            "allowed p99 admission-to-answer latency in the serve_latency "
            "bench before --check fails (absolute: under load shedding "
            "every answer must stay on the warm fast path)"
        ),
    )
    ben.add_argument(
        "--scale-sweep",
        action="store_true",
        help=(
            "run the 1x/10x/100x job-volume scale sweep (simulate + "
            "analysis wall and peak RSS per point) instead of the "
            "standard benchmark battery; the fresh record is always "
            "gated against the exponent limits (intra-record, no "
            "baseline needed)"
        ),
    )
    ben.add_argument(
        "--sweep-factors",
        default=None,
        help="comma-separated job-volume multipliers (default per scale: full=1,10,100 quick=1,10)",
    )
    ben.add_argument(
        "--check-scale-sweep",
        type=Path,
        default=None,
        metavar="BENCH_JSON",
        help=(
            "gate scale-sweep complexity: check the fitted scaling "
            "exponents of the latest committed sweep record in this "
            "trajectory file (and of the fresh sweep when --scale-sweep "
            "also ran); exit 1 on failure"
        ),
    )
    ben.add_argument(
        "--max-scale-exponent",
        type=float,
        default=1.35,
        help=(
            "allowed fitted wall-time scaling exponent for "
            "--check-scale-sweep (1.0 = linear, 2.0 = quadratic)"
        ),
    )
    ben.add_argument(
        "--max-rss-exponent",
        type=float,
        default=1.2,
        help="allowed fitted peak-RSS scaling exponent for --check-scale-sweep",
    )

    wkr = command(
        "worker", help="join a fleet-mode run as an external worker process"
    )
    wkr.add_argument(
        "--dir",
        dest="run_dir",
        type=Path,
        required=True,
        metavar="RUN_DIR",
        help=(
            "the run directory to join: <cache_root>/.dist/<run_id>, on a "
            "filesystem shared with the coordinator"
        ),
    )
    wkr.add_argument(
        "--id",
        dest="worker_id",
        required=True,
        metavar="WORKER_ID",
        help="unique worker name within the run (e.g. hostA-1)",
    )
    wkr.add_argument(
        "--join-timeout",
        type=float,
        default=30.0,
        help="seconds to wait for the coordinator to publish the run spec",
    )

    srv = command(
        "serve",
        help=(
            "study-as-a-service: ingest rows into the durable WAL, refresh "
            "only the dirty DAG subtree, serve warm artifacts"
        ),
    )
    srv.add_argument(
        "--root",
        type=Path,
        required=True,
        metavar="DIR",
        help="service root (holds wal/, cache/, journals/, state.json)",
    )
    srv.add_argument("--months", type=int, default=3, help="study telemetry window")
    srv.add_argument(
        "--experiments",
        default=None,
        metavar="IDS",
        help="comma-separated experiment ids to serve (default: all registered)",
    )
    srv.add_argument(
        "--ingest-responses",
        type=Path,
        action="append",
        default=None,
        metavar="FILE",
        help="append a JSONL response export to the ingest WAL (repeatable)",
    )
    srv.add_argument(
        "--ingest-sacct",
        type=Path,
        action="append",
        default=None,
        metavar="FILE",
        help="append a sacct accounting export to the ingest WAL (repeatable)",
    )
    srv.add_argument(
        "--batch",
        default=None,
        metavar="ID",
        help=(
            "idempotency key for this ingest (default: the file path); "
            "re-sending the same batch after a lost ack never duplicates rows"
        ),
    )
    srv.add_argument(
        "--refresh",
        action="store_true",
        help="run one incremental refresh cycle (only dirty subtrees recompute)",
    )
    srv.add_argument(
        "--force", action="store_true", help="refresh ignoring cache and quarantine"
    )
    srv.add_argument(
        "--request",
        default=None,
        metavar="ID",
        help="request one experiment artifact (admission-controlled)",
    )
    srv.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "patience for --request: a recompute estimated to take longer "
            "is shed and the last-good artifact served STALE"
        ),
    )
    srv.add_argument(
        "--loop",
        type=int,
        default=None,
        metavar="N",
        help=(
            "resident mode: run N refresh cycles, sleeping --interval "
            "between; SIGTERM drains (flush WAL + state) and exits 0"
        ),
    )
    srv.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="sleep between --loop cycles",
    )
    srv.add_argument("--queue-size", type=int, default=8, help="admission queue bound")
    srv.add_argument(
        "--status",
        action="store_true",
        help=(
            "probe the service root's status.json (no service is started): "
            "exit 0 serving, 3 degraded (read-only/draining, SLO breached, "
            "or the probe file is stale vs its refresh interval), 2 no status"
        ),
    )

    top = command(
        "top",
        help=(
            "live text dashboard over a serve root and/or a fleet run dir "
            "(reads only on-disk observability files; never touches the "
            "live processes)"
        ),
    )
    top.add_argument(
        "--root",
        type=Path,
        default=None,
        metavar="DIR",
        help="serve root to watch (status.json + slo.json + metrics/)",
    )
    top.add_argument(
        "--dist-dir",
        type=Path,
        default=None,
        metavar="RUN_DIR",
        help=(
            "fleet run dir to watch (<cache_root>/.dist/<run_id>; "
            "heartbeats, assignments, spine segments)"
        ),
    )
    top.add_argument(
        "--cache-root",
        type=Path,
        default=None,
        metavar="DIR",
        help="watch the most recent run dir under this cache root's .dist/",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="render one frame and exit (the CI / scripting mode)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh cadence in watch mode",
    )

    pwr = command("power", help="two-proportion power calculations")
    pwr.add_argument("--p1", type=float, required=True, help="baseline proportion")
    pwr.add_argument("--p2", type=float, required=True, help="expected proportion")
    pwr.add_argument("--n1", type=int, default=None)
    pwr.add_argument("--n2", type=int, default=None)
    pwr.add_argument("--power", type=float, default=0.8)
    pwr.add_argument("--alpha", type=float, default=0.05)
    return parser


def _build_study(args):
    from repro.core import build_default_study

    return build_default_study(
        seed=args.seed,
        n_baseline=args.baseline,
        n_current=args.current,
        months=args.months,
        jobs_per_day=args.jobs_per_day,
    )


def _cmd_generate(args, out) -> int:
    from repro.cluster import write_sacct
    from repro.io import write_responses_jsonl

    study = _build_study(args)
    args.out.mkdir(parents=True, exist_ok=True)
    responses_path = args.out / "responses.jsonl"
    accounting_path = args.out / "accounting.sacct"
    write_responses_jsonl(study.responses, responses_path)
    write_sacct(study.telemetry, accounting_path)
    print(f"wrote {len(study.responses)} responses to {responses_path}", file=out)
    print(f"wrote {len(study.telemetry)} job records to {accounting_path}", file=out)
    return 0


def _cmd_validate(args, out) -> int:
    from repro.core import build_instrument
    from repro.io import ResponseIOError, read_responses_jsonl
    from repro.survey import validate_response_set

    questionnaire = build_instrument()
    skipped = []
    try:
        responses = read_responses_jsonl(
            questionnaire, Path(args.path),
            on_bad_rows=args.on_bad_rows, skipped=skipped,
        )
    except (ResponseIOError, OSError) as exc:
        print(f"error: {exc}", file=out)
        return 2
    for row in skipped[:20]:
        print(f"  skipped line {row.lineno}: {row.reason}", file=out)
    if len(skipped) > 20:
        print(f"  ... and {len(skipped) - 20} more skipped rows", file=out)
    if skipped:
        print(f"skipped {len(skipped)} malformed row(s)", file=out)
    report = validate_response_set(responses)
    print(f"{len(responses)} responses; {len(report.issues)} issues", file=out)
    for issue in report.issues[:20]:
        print(
            f"  [{issue.kind.value}] {issue.respondent_id} / {issue.question_key}: "
            f"{issue.message}",
            file=out,
        )
    if len(report.issues) > 20:
        print(f"  ... and {len(report.issues) - 20} more", file=out)
    print("ingest ok" if report.ok else "FATAL issues present", file=out)
    return 0 if report.ok else 1


def _cmd_audit(args, out) -> int:
    """Dispatch between the two audits sharing the subcommand.

    With a positional PATH the historical behaviour — auditing a sacct
    accounting export — is unchanged; without one the command runs the
    reproducibility audit (``repro.audit.run_audit``).
    """
    if args.path is None:
        return _cmd_audit_repro(args, out)
    return _cmd_audit_sacct(args, out)


def _cmd_audit_repro(args, out) -> int:
    from repro.audit import QUICK_SCALE, default_matrix, run_audit, select_matrix
    from repro.report import EXPERIMENTS
    from repro.report.document import render_report_card
    from repro.synth.scenario import DRIFT_SCENARIOS

    if args.resume and args.durable is None:
        print("error: --resume requires --durable DIR", file=out)
        return 2
    if args.drift and args.drift not in DRIFT_SCENARIOS:
        print(
            f"error: unknown drift scenario {args.drift!r}; known: "
            f"{', '.join(sorted(DRIFT_SCENARIOS))}",
            file=out,
        )
        return 2
    if args.matrix is not None:
        names = [n.strip() for n in args.matrix.split(",") if n.strip()]
        try:
            matrix = select_matrix(names)
        except ValueError as exc:
            print(f"error: {exc}", file=out)
            return 2
    else:
        matrix = default_matrix()
    experiment_ids = None
    if args.experiments is not None:
        experiment_ids = sorted(
            {e.strip().upper() for e in args.experiments.split(",") if e.strip()}
        )
        unknown = [eid for eid in experiment_ids if eid not in EXPERIMENTS]
        if unknown:
            print(
                f"error: unknown experiments {unknown}; known: "
                f"{', '.join(sorted(EXPERIMENTS))}",
                file=out,
            )
            return 2
    scale = dict(QUICK_SCALE) if args.quick else {}
    for key, value in (
        ("seed", args.seed),
        ("n_baseline", args.baseline),
        ("n_current", args.current),
        ("months", args.months),
        ("jobs_per_day", args.jobs_per_day),
    ):
        if value is not None:
            scale[key] = value
    report = run_audit(
        root=args.durable,
        matrix=matrix,
        experiment_ids=experiment_ids,
        drift=args.drift,
        study_kwargs=scale or None,
        reuse=args.resume,
        trace_dir=args.trace,
        normalize_traces=args.normalize,
    )
    card = render_report_card(report, normalize=args.normalize)
    if args.out is not None:
        Path(args.out).write_text(card, encoding="utf-8")
        print(f"wrote report card to {args.out}", file=out)
    else:
        print(card, file=out, end="")
    if args.trace is not None:
        print(f"wrote per-leg Perfetto traces to {args.trace}", file=out)
    if report.concordant:
        print(f"audit ok: {len(report.runs)} runs concordant", file=out)
        return 0
    first = report.first_divergence
    print(
        f"audit DIVERGENT: {len(report.divergent_steps)} step(s), "
        f"first at {first!r}"
        + (f" (drift {report.drift!r} attributed)" if report.verdict == "drift" else ""),
        file=out,
    )
    return EXIT_PARTIAL


def _cmd_audit_sacct(args, out) -> int:
    from repro.cluster import audit_table, parse_sacct
    from repro.cluster.partitions import DEFAULT_CLUSTER
    from repro.cluster.sacct import SacctFormatError

    skipped = []
    try:
        table = parse_sacct(
            Path(args.path), on_bad_rows=args.on_bad_rows, skipped=skipped
        )
    except (SacctFormatError, OSError) as exc:
        print(f"error: {exc}", file=out)
        return 2
    for row in skipped[:20]:
        print(f"  skipped line {row.lineno}: {row.reason}", file=out)
    if len(skipped) > 20:
        print(f"  ... and {len(skipped) - 20} more skipped rows", file=out)
    if skipped:
        print(f"skipped {len(skipped)} malformed row(s)", file=out)
    report = audit_table(table, DEFAULT_CLUSTER)
    print(f"{report.n_jobs} jobs audited; {len(report.issues)} issues", file=out)
    for kind, count in sorted(report.summary().items()):
        print(f"  {kind}: {count}", file=out)
    for issue in report.issues[:20]:
        print(f"  job {issue.job_id}: {issue.message}", file=out)
    print("accounting ok" if report.ok else "accounting has issues", file=out)
    return 0 if report.ok else 1


def _cmd_codebook(args, out) -> int:
    from repro.core import build_instrument
    from repro.survey import build_codebook

    print(build_codebook(build_instrument()).render(), file=out)
    return 0


def _cmd_experiments(args, out) -> int:
    from repro.report import EXPERIMENTS

    def sort_key(eid: str):
        return (eid[0], int(eid[1:]))

    for eid in sorted(EXPERIMENTS, key=sort_key):
        experiment = EXPERIMENTS[eid]
        print(f"{eid:<4} [{experiment.kind:<6}] {experiment.title}: "
              f"{experiment.description}", file=out)
    return 0


def _cmd_experiment(args, out) -> int:
    from repro.report import EXPERIMENTS, run_experiment

    eid = args.id.upper()
    if eid not in EXPERIMENTS:
        print(f"error: unknown experiment {args.id!r}; known: "
              f"{', '.join(sorted(EXPERIMENTS))}", file=out)
        return 2
    study = _build_study(args)
    print(run_experiment(eid, study).render_ascii(), file=out)
    return 0


#: Exit code for a report that rendered but with placeholder sections
#: (some experiments failed under --keep-going). Distinct from 0 (clean),
#: 1 (validation issues), and 2 (usage/input errors) so scripted callers
#: can tell "usable but degraded" from both success and hard failure.
EXIT_PARTIAL = 3

#: Exit code for a run cut short by Ctrl-C, following the shell convention
#: (128 + SIGINT). The journal is flushed first, so a --durable run prints
#: a one-line resume hint instead of a traceback.
EXIT_INTERRUPTED = 130


def _pipeline_report(args, out) -> int:
    """The pipeline-backed path of ``repro report``.

    Taken when the invocation needs the DAG runner rather than the plain
    in-process build: ``--durable DIR`` (journaled + cache-addressed,
    resumable), ``--trace FILE`` (span-traced with a Perfetto export and
    critical-path summary), and/or ``--backend dist`` (coordinator/worker
    fleet over the shared cache directory). All three compose: a traced
    durable dist run correlates its root span with the journal run id and
    renders per-worker lanes in the Perfetto export. Fleet mode needs a
    disk cache, so without ``--durable`` it runs against a throwaway
    cache directory.
    """
    from repro.core.pipeline import ArtifactCache
    from repro.core.trace import Tracer, analyze_perfetto
    from repro.report.document import render_report
    from repro.report.experiments import report_pipeline

    journal = None
    resume_state = None
    if args.durable is not None:
        from repro.core.journal import (
            JournalError,
            RunJournal,
            latest_run_id,
            load_resume_state,
        )

        durable = Path(args.durable)
        journal_dir = durable / "journals"
        if args.resume is not None:
            run_id = args.resume
            if run_id == "latest":
                run_id = latest_run_id(journal_dir)
                if run_id is None:
                    print(f"error: no journals to resume under {journal_dir}", file=out)
                    return 2
            try:
                resume_state = load_resume_state(journal_dir, run_id)
            except JournalError as exc:
                print(f"error: {exc}", file=out)
                return 2
        cache = ArtifactCache(durable / "cache")
        journal = RunJournal.open(journal_dir)
        scratch = None
    elif args.backend == "dist":
        # Fleet workers coordinate through the cache filesystem, so the
        # in-memory default is not an option; a throwaway directory gives
        # ad-hoc dist runs somewhere to meet.
        scratch = tempfile.TemporaryDirectory(prefix="repro-dist-")
        cache = ArtifactCache(Path(scratch.name) / "cache")
    else:
        cache = ArtifactCache()
        scratch = None
    executor = "dist" if args.backend == "dist" else args.executor
    max_workers = args.workers if args.backend == "dist" else args.jobs
    tracer = Tracer() if args.trace is not None else None
    pipeline = report_pipeline(
        cache,
        seed=args.seed,
        n_baseline=args.baseline,
        n_current=args.current,
        months=args.months,
        jobs_per_day=args.jobs_per_day,
    )
    try:
        try:
            results, report = pipeline.run_with_report(
                max_workers=max_workers,
                executor=executor,
                on_error="keep_going" if args.keep_going else "raise",
                journal=journal,
                resume=resume_state,
                trace=tracer,
            )
        except KeyboardInterrupt:
            # The dist coordinator has already released its leases,
            # stopped the fleet, and swept the run directory on its way
            # out (its cleanup runs in a finally before this propagates).
            if journal is not None:
                journal.flush()
                print(
                    f"interrupted — resume with --resume {journal.run_id}",
                    file=out,
                )
            else:
                print("interrupted", file=out)
            return EXIT_INTERRUPTED
    finally:
        if journal is not None:
            journal.close()
        if scratch is not None:
            scratch.cleanup()
    if tracer is not None:
        tracer.write_perfetto(args.trace)
        print(f"wrote Perfetto trace to {args.trace}", file=out)
    if "study" not in results:
        print("error: the study stages failed; nothing to render", file=out)
        if pipeline.last_report is not None:
            print(pipeline.last_report.render(), file=out)
        return 1
    artifacts = {
        name.removeprefix("exp:"): value
        for name, value in results.items()
        if name.startswith("exp:")
    }
    failures = {
        o.name.removeprefix("exp:"): o.error
        for o in report.outcomes
        if o.name.startswith("exp:") and not o.succeeded
    }
    text = render_report(results["study"], artifacts, failures)
    if args.out is not None:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"wrote report to {args.out}", file=out)
    else:
        print(text, file=out)
    if args.timings:
        metrics = pipeline.last_metrics
        if metrics is not None:
            print(metrics.render(), file=out)
        print(report.render(), file=out)
    if tracer is not None:
        print(analyze_perfetto(tracer.to_perfetto()).render(), file=out)
    if failures:
        print(
            f"warning: report degraded — {len(failures)} experiment(s) failed: "
            f"{', '.join(sorted(failures))}",
            file=out,
        )
        return EXIT_PARTIAL
    return 0


def _cmd_report(args, out) -> int:
    from repro.report.document import build_report

    if args.jobs is not None and args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=out)
        return 2
    if args.workers is not None and args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}", file=out)
        return 2
    if args.workers is not None and args.backend != "dist":
        print("error: --workers requires --backend dist", file=out)
        return 2
    if args.resume is not None and args.durable is None:
        print("error: --resume requires --durable DIR", file=out)
        return 2
    if args.durable is not None or args.trace is not None or args.backend == "dist":
        return _pipeline_report(args, out)
    study = _build_study(args)
    metrics_sink = []
    text = build_report(
        study,
        max_workers=args.jobs,
        executor=args.executor,
        on_error="keep_going" if args.keep_going else "raise",
        metrics_out=metrics_sink,
    )
    if args.out is not None:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"wrote report to {args.out}", file=out)
    else:
        print(text, file=out)
    if args.timings:
        if metrics_sink:
            print(metrics_sink[0].render(), file=out)
            report = metrics_sink[0].run_report
            if report is not None:
                print(report.render(), file=out)
        else:
            print("no executor timings recorded", file=out)
    failed = [m.name for m in metrics_sink[0].steps if m.outcome == "failed"] if metrics_sink else []
    if failed:
        print(
            f"warning: report degraded — {len(failed)} experiment(s) failed: "
            f"{', '.join(sorted(failed))}",
            file=out,
        )
        return EXIT_PARTIAL
    return 0


def _cmd_trace(args, out) -> int:
    """``repro trace``: traced quick-scale report build + critical path.

    Two modes: ``--load FILE`` analyzes a previously exported trace;
    otherwise a fresh (default quick-scale) report build runs under a
    tracer. Either way the command prints the DAG critical path, per-step
    slack, and parallel-efficiency summary.
    """
    from repro.core.trace import (
        TraceError,
        Tracer,
        analyze_perfetto,
        load_perfetto,
        validate_perfetto,
    )

    if args.load is not None:
        try:
            data = load_perfetto(args.load)
        except (TraceError, OSError, ValueError) as exc:
            print(f"error: {exc}", file=out)
            return 2
    else:
        from repro.core.pipeline import ArtifactCache
        from repro.report.experiments import report_pipeline

        if args.jobs is not None and args.jobs < 1:
            print(f"error: --jobs must be >= 1, got {args.jobs}", file=out)
            return 2
        tracer = Tracer(resources=args.resources)
        pipeline = report_pipeline(
            ArtifactCache(),
            seed=args.seed,
            n_baseline=args.baseline,
            n_current=args.current,
            months=args.months,
            jobs_per_day=args.jobs_per_day,
        )
        pipeline.run(
            max_workers=args.jobs,
            executor=args.executor,
            on_error="keep_going",
            trace=tracer,
        )
        data = tracer.to_perfetto()
        if args.out is not None:
            tracer.write_perfetto(args.out)
            print(f"wrote Perfetto trace to {args.out}", file=out)
        if args.metrics_out is not None:
            args.metrics_out.write_text(tracer.to_prometheus(), encoding="utf-8")
            print(f"wrote Prometheus metrics to {args.metrics_out}", file=out)
    if args.check_schema:
        problems = validate_perfetto(data)
        if problems:
            for problem in problems:
                print(f"  schema: {problem}", file=out)
            print(f"INVALID trace ({len(problems)} problem(s))", file=out)
            return 1
        print("trace schema ok", file=out)
    print(analyze_perfetto(data).render(top=args.top), file=out)
    return 0


def _cmd_bench(args, out) -> int:
    from repro.core.bench import (
        append_run,
        check_audit_overhead,
        check_dist_overhead,
        check_journal_overhead,
        check_metrics_overhead,
        check_regression,
        check_retry_overhead,
        check_scale_sweep,
        check_serve_latency,
        check_serve_overhead,
        check_trace_overhead,
        render_record,
        render_scale_sweep,
        run_benchmarks,
        run_scale_sweep,
    )

    if args.repeats is not None and args.repeats < 1:
        print(f"error: --repeats must be >= 1, got {args.repeats}", file=out)
        return 2
    if args.scale_sweep or args.check_scale_sweep is not None:
        return _bench_scale_sweep(
            args,
            out,
            append_run=append_run,
            check_scale_sweep=check_scale_sweep,
            render_scale_sweep=render_scale_sweep,
            run_scale_sweep=run_scale_sweep,
        )
    record = run_benchmarks(
        scale=args.scale,
        label=args.label,
        repeats=args.repeats,
        end_to_end=not args.no_end_to_end,
    )
    print(render_record(record), file=out)
    if args.json is not None:
        append_run(args.json, record)
        print(f"appended run to {args.json}", file=out)
    if args.check is not None:
        try:
            ok, message = check_regression(
                record, args.check, max_regression=args.max_regression
            )
            overhead_ok, overhead_message = check_retry_overhead(
                record, max_overhead=args.max_retry_overhead
            )
            journal_ok, journal_message = check_journal_overhead(
                record, max_overhead=args.max_journal_overhead
            )
            trace_ok, trace_message = check_trace_overhead(
                record, max_overhead=args.max_trace_overhead
            )
            audit_ok, audit_message = check_audit_overhead(
                record, max_overhead=args.max_audit_overhead
            )
            dist_ok, dist_message = check_dist_overhead(
                record, max_overhead=args.max_dist_overhead
            )
            serve_ok, serve_message = check_serve_overhead(
                record, max_overhead=args.max_serve_overhead
            )
            metrics_ok, metrics_message = check_metrics_overhead(
                record, max_overhead=args.max_metrics_overhead
            )
            latency_ok, latency_message = check_serve_latency(
                record, max_p99=args.max_serve_p99
            )
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=out)
            return 2
        print(("ok: " if ok else "REGRESSION: ") + message, file=out)
        print(
            ("ok: " if overhead_ok else "REGRESSION: ") + overhead_message, file=out
        )
        print(
            ("ok: " if journal_ok else "REGRESSION: ") + journal_message, file=out
        )
        print(("ok: " if trace_ok else "REGRESSION: ") + trace_message, file=out)
        print(("ok: " if audit_ok else "REGRESSION: ") + audit_message, file=out)
        print(("ok: " if dist_ok else "REGRESSION: ") + dist_message, file=out)
        print(("ok: " if serve_ok else "REGRESSION: ") + serve_message, file=out)
        print(("ok: " if metrics_ok else "REGRESSION: ") + metrics_message, file=out)
        print(("ok: " if latency_ok else "REGRESSION: ") + latency_message, file=out)
        return (
            0
            if ok
            and overhead_ok
            and journal_ok
            and trace_ok
            and audit_ok
            and dist_ok
            and serve_ok
            and metrics_ok
            and latency_ok
            else 1
        )
    return 0


def _bench_scale_sweep(
    args, out, *, append_run, check_scale_sweep, render_scale_sweep, run_scale_sweep
) -> int:
    """The ``bench --scale-sweep`` / ``--check-scale-sweep`` sub-path.

    Runs the job-volume sweep when requested, then gates the fitted
    scaling exponents of the fresh record and/or of the latest committed
    sweep record in the trajectory file named by ``--check-scale-sweep``.
    """
    factors = None
    if args.sweep_factors is not None:
        try:
            factors = tuple(
                int(part) for part in args.sweep_factors.split(",") if part.strip()
            )
        except ValueError:
            print(
                f"error: --sweep-factors must be comma-separated integers, "
                f"got {args.sweep_factors!r}",
                file=out,
            )
            return 2

    to_gate: list[tuple[str, dict]] = []
    if args.scale_sweep:
        try:
            record = run_scale_sweep(
                scale=args.scale,
                label=args.label,
                factors=factors,
                repeats=args.repeats or 1,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=out)
            return 2
        print(render_scale_sweep(record), file=out)
        if args.json is not None:
            append_run(args.json, record)
            print(f"appended run to {args.json}", file=out)
        to_gate.append(("fresh sweep", record))

    if args.check_scale_sweep is not None:
        committed = _latest_sweep_record(args.check_scale_sweep)
        if committed is None:
            if not args.scale_sweep:
                print(
                    f"error: no scale-sweep record in {args.check_scale_sweep}",
                    file=out,
                )
                return 2
        else:
            to_gate.append((f"committed ({args.check_scale_sweep})", committed))

    all_ok = True
    for origin, rec in to_gate:
        ok, message = check_scale_sweep(
            rec,
            max_exponent=args.max_scale_exponent,
            max_rss_exponent=args.max_rss_exponent,
        )
        all_ok = all_ok and ok
        print(("ok: " if ok else "REGRESSION: ") + f"{origin}: {message}", file=out)
    return 0 if all_ok else 1


def _latest_sweep_record(path) -> dict | None:
    """Newest record in a bench trajectory file that carries sweep points."""
    from repro.core.bench import load_runs

    try:
        runs = load_runs(path)
    except (OSError, ValueError):
        return None
    for record in reversed(runs):
        if "scale_sweep" in record.get("benchmarks", {}):
            return record
    return None


def _cmd_robustness(args, out) -> int:
    from repro.analysis import headline_robustness

    results = headline_robustness(
        seeds=list(range(1, args.seeds + 1)),
        n_baseline=args.baseline,
        n_current=args.current,
        alpha=args.alpha,
    )
    print(
        f"headline claims over {args.seeds} seeds "
        f"(n={args.baseline}/{args.current}, alpha={args.alpha}):",
        file=out,
    )
    for r in results:
        print(
            f"  {r.claim:<22} direction {r.direction_held}/{r.n_seeds}  "
            f"significant {r.significant}/{r.n_seeds}  "
            f"mean change {r.mean_delta:+.1%}",
            file=out,
        )
    weakest = min(results, key=lambda r: (r.direction_rate, r.significance_rate))
    print(
        f"weakest claim: {weakest.claim} "
        f"({weakest.direction_rate:.0%} direction, "
        f"{weakest.significance_rate:.0%} significant)",
        file=out,
    )
    return 0


def _cmd_power(args, out) -> int:
    from repro.stats import required_n_per_group, two_proportion_power

    try:
        if args.n1 is not None and args.n2 is not None:
            power = two_proportion_power(args.p1, args.p2, args.n1, args.n2, args.alpha)
            print(
                f"power to detect {args.p1:.0%} -> {args.p2:.0%} at "
                f"n={args.n1}/{args.n2}: {power:.1%}",
                file=out,
            )
        else:
            n = required_n_per_group(args.p1, args.p2, args.power, args.alpha)
            print(
                f"need n={n} per group for {args.power:.0%} power to detect "
                f"{args.p1:.0%} -> {args.p2:.0%}",
                file=out,
            )
    except ValueError as exc:
        print(f"error: {exc}", file=out)
        return 2
    return 0


def _cmd_worker(args, out) -> int:
    from repro.dist.worker import worker_main

    code = worker_main(
        args.run_dir, args.worker_id, join_timeout=args.join_timeout
    )
    if code == 2:
        print(
            f"error: no run spec under {args.run_dir} after "
            f"{args.join_timeout:.0f}s — is the coordinator running?",
            file=out,
        )
    elif code == EXIT_INTERRUPTED:
        print("interrupted — leases released, coordinator will reassign", file=out)
    return code


def _cmd_serve(args, out) -> int:
    """``repro serve``: one-shot or resident study serving.

    Exit-code contract (documented in README/docs/API.md): ``0`` clean —
    including a SIGTERM-initiated drain; ``3`` degraded — the service is
    read-only, a refresh left failed/quarantined subtrees, or a requested
    artifact could only be answered STALE/UNAVAILABLE; ``2`` usage errors;
    ``130`` SIGINT. ``--status`` probes without starting a service.
    """
    import json
    import signal
    import time

    from repro.serve import (
        ServeConfig,
        ServiceDraining,
        ServiceReadOnly,
        StudyService,
        read_status,
    )

    if args.status:
        status = read_status(args.root)
        if status is None:
            print(f"error: no service status under {args.root}", file=out)
            return 2
        print(json.dumps(status, indent=2, sort_keys=True), file=out)
        code = 0 if status.get("mode") in ("serving", "empty") else EXIT_PARTIAL
        if status.get("slo") == "breached":
            detail = status.get("slo_detail") or {}
            broken = sorted(k for k, c in detail.items() if not c.get("ok"))
            print("slo: breached" + (f" ({', '.join(broken)})" if broken else ""), file=out)
            code = EXIT_PARTIAL
        # Stale-probe detection: a resident service promises a status
        # write every cycle; a probe file much older than the declared
        # interval means the service is wedged, not merely quiet.
        interval = status.get("refresh_interval_seconds")
        if interval:
            try:
                mtime = (Path(args.root) / "status.json").stat().st_mtime
            except OSError:
                mtime = None
            if mtime is not None:
                age = time.time() - mtime
                if age > max(3.0 * float(interval), float(interval) + 2.0):
                    print(
                        f"stale probe: status.json is {age:.1f}s old against a "
                        f"{float(interval):.1f}s refresh interval — service wedged?",
                        file=out,
                    )
                    code = EXIT_PARTIAL
        return code

    experiments = None
    if args.experiments:
        experiments = tuple(
            s.strip().upper() for s in args.experiments.split(",") if s.strip()
        )
    try:
        config = ServeConfig(
            months=args.months,
            experiments=experiments,
            queue_size=args.queue_size,
            default_deadline=args.deadline,
            status_interval=args.interval if args.loop is not None else None,
        )
        service = StudyService(args.root, config)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=out)
        return 2

    class _Drain(Exception):
        pass

    def _on_term(signum, frame):  # pragma: no cover - delivered via os.kill in tests
        raise _Drain()

    previous = signal.signal(signal.SIGTERM, _on_term)
    degraded = False
    try:
        try:
            for kind, paths in (
                ("responses", args.ingest_responses or []),
                ("sacct", args.ingest_sacct or []),
            ):
                for path in paths:
                    try:
                        lines = Path(path).read_text(encoding="utf-8").splitlines()
                    except OSError as exc:
                        print(f"error: {exc}", file=out)
                        return 2
                    batch = args.batch if args.batch is not None else str(path)
                    try:
                        receipt = service.ingest(kind, lines, batch=batch)
                    except (ServiceReadOnly, ServiceDraining) as exc:
                        print(f"ingest refused: {exc}", file=out)
                        degraded = True
                        continue
                    print(
                        f"ingested {receipt.accepted} {kind} row(s) "
                        f"({receipt.deduped} deduped) from {path}",
                        file=out,
                    )
            cycles = args.loop if args.loop is not None else (1 if args.refresh else 0)
            for i in range(cycles):
                result = service.refresh(force=args.force)
                if result.ran:
                    statuses: dict[str, int] = {}
                    if result.report is not None:
                        for o in result.report.outcomes:
                            statuses[o.status] = statuses.get(o.status, 0) + 1
                    summary = ", ".join(f"{k}={v}" for k, v in sorted(statuses.items()))
                    print(f"refreshed in {result.seconds:.2f}s ({summary})", file=out)
                else:
                    print(f"refresh skipped: {result.reason}", file=out)
                if result.failed or result.excluded or result.reason == "read_only":
                    degraded = True
                if args.loop is not None and i < cycles - 1:
                    time.sleep(args.interval)
            if args.request is not None:
                try:
                    res = service.request(args.request.upper(), deadline=args.deadline)
                except KeyError as exc:
                    print(f"error: {exc.args[0]}", file=out)
                    return 2
                tag = res.status.upper()
                note = f" ({res.reason})" if res.reason else ""
                behind = f", {res.behind} row(s) behind" if res.behind else ""
                print(f"[{tag}]{note}{behind}", file=out)
                if res.artifact is not None:
                    print(res.artifact.render_ascii(), file=out)
                if res.status != "fresh":
                    degraded = True
        except _Drain:
            service.drain()
            print("drained: WAL flushed, state saved", file=out)
            return 0
        if service.read_only:
            degraded = True
        print(
            json.dumps(service.publish_status(), indent=2, sort_keys=True), file=out
        )
    finally:
        signal.signal(signal.SIGTERM, previous)
        service.close()
    return EXIT_PARTIAL if degraded else 0


def _cmd_top(args, out) -> int:
    """``repro top``: live text dashboard (disk-state only; see repro.obs.top)."""
    import time

    from repro.obs.top import latest_run_dir, render_top

    dist_dir = args.dist_dir
    if dist_dir is None and args.cache_root is not None:
        dist_dir = latest_run_dir(args.cache_root)
        if dist_dir is None:
            print(f"error: no .dist run dirs under {args.cache_root}", file=out)
            return 2
    if args.once:
        print(render_top(args.root, dist_dir), end="", file=out)
        return 0
    while True:
        frame = render_top(args.root, dist_dir)
        print("\x1b[2J\x1b[H" + frame, end="", file=out, flush=True)
        time.sleep(args.interval)


_COMMANDS = {
    "generate": _cmd_generate,
    "validate": _cmd_validate,
    "audit": _cmd_audit,
    "experiments": _cmd_experiments,
    "robustness": _cmd_robustness,
    "codebook": _cmd_codebook,
    "experiment": _cmd_experiment,
    "report": _cmd_report,
    "trace": _cmd_trace,
    "bench": _cmd_bench,
    "worker": _cmd_worker,
    "serve": _cmd_serve,
    "top": _cmd_top,
    "power": _cmd_power,
}


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code.

    A Ctrl-C during the long-running commands (``report``, ``trace``,
    ``bench``, ``audit``, ``worker``, ``serve``, ``top``) exits ``130`` (128 +
    SIGINT) with a one-line notice instead of a traceback; the
    ``--durable`` report path additionally flushes its journal and prints
    the ``--resume`` hint, and a fleet worker releases its leases and lets
    the coordinator reassign, before this handler sees anything. A
    SIGTERM to ``repro serve`` is the graceful-drain path instead: the
    WAL and state are flushed and the exit code is ``0``.
    """
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    from repro.core.logging import setup_cli_logging

    setup_cli_logging(args.verbose - args.quiet)
    try:
        return _COMMANDS[args.command](args, out)
    except KeyboardInterrupt:
        if args.command in ("report", "trace", "bench", "audit", "worker", "serve", "top"):
            print("interrupted", file=out)
            return EXIT_INTERRUPTED
        raise


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
