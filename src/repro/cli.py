"""Command-line interface.

Subcommands mirror the workflows a research-computing group runs:

* ``generate``   — synthesize the study's raw data (responses + accounting);
* ``validate``   — QA a JSONL response export against the instrument;
* ``codebook``   — print the instrument codebook;
* ``experiment`` — regenerate one table/figure by id;
* ``report``     — render the full markdown report;
* ``bench``      — wall-clock substrate benchmarks (perf trajectory);
* ``power``      — design-stage power calculations.

All randomness flows from ``--seed``; every command is deterministic.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Computation-for-research practice study toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesize survey + telemetry data")
    gen.add_argument("--seed", type=int, default=2024)
    gen.add_argument("--baseline", type=int, default=120, help="2011 cohort size")
    gen.add_argument("--current", type=int, default=200, help="2024 cohort size")
    gen.add_argument("--months", type=int, default=6, help="telemetry window")
    gen.add_argument("--jobs-per-day", type=float, default=200.0)
    gen.add_argument("--out", type=Path, default=Path("study-data"))

    val = sub.add_parser("validate", help="validate a JSONL response export")
    val.add_argument("path", type=Path)
    val.add_argument(
        "--on-bad-rows",
        choices=("raise", "skip"),
        default="raise",
        help="skip = tolerate malformed rows (skipped tally is reported)",
    )

    aud = sub.add_parser("audit", help="audit a sacct accounting export")
    aud.add_argument("path", type=Path)
    aud.add_argument(
        "--on-bad-rows",
        choices=("raise", "skip"),
        default="raise",
        help="skip = tolerate malformed accounting rows (skipped tally is reported)",
    )

    sub.add_parser("codebook", help="print the instrument codebook")

    sub.add_parser("experiments", help="list registered experiments")

    exp = sub.add_parser("experiment", help="regenerate one table/figure")
    exp.add_argument("id", help="experiment id (T1..T8, F1..F8)")
    exp.add_argument("--seed", type=int, default=2024)
    exp.add_argument("--baseline", type=int, default=120)
    exp.add_argument("--current", type=int, default=200)
    exp.add_argument("--months", type=int, default=6)
    exp.add_argument("--jobs-per-day", type=float, default=200.0)

    rep = sub.add_parser("report", help="render the full markdown report")
    rep.add_argument("--seed", type=int, default=2024)
    rep.add_argument("--baseline", type=int, default=120)
    rep.add_argument("--current", type=int, default=200)
    rep.add_argument("--months", type=int, default=6)
    rep.add_argument("--jobs-per-day", type=float, default=200.0)
    rep.add_argument("--out", type=Path, default=None, help="write to file instead of stdout")
    rep.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="experiment fan-out worker count (default: all cores)",
    )
    rep.add_argument(
        "--executor",
        choices=("auto", "sequential", "thread", "process"),
        default="auto",
        help="how to fan experiments out (auto = process pool when possible)",
    )
    rep.add_argument(
        "--timings",
        action="store_true",
        help="print per-experiment executor timings after the report",
    )
    rep.add_argument(
        "--keep-going",
        action="store_true",
        help=(
            "degrade gracefully: render placeholder sections for failed "
            "experiments instead of aborting (exit code 3 on partial success)"
        ),
    )
    rep.add_argument(
        "--durable",
        type=Path,
        default=None,
        metavar="DIR",
        help=(
            "run the report as a journaled, cache-addressed pipeline rooted "
            "at DIR (DIR/cache + DIR/journals); an interrupted run can be "
            "recovered with --resume"
        ),
    )
    rep.add_argument(
        "--resume",
        nargs="?",
        const="latest",
        default=None,
        metavar="RUN_ID",
        help=(
            "resume an interrupted --durable run: replay journal-completed "
            "steps from the cache, re-execute only the in-flight frontier "
            "(omit RUN_ID to resume the most recent journal)"
        ),
    )

    rob = sub.add_parser(
        "robustness", help="seed-sweep the headline claims (EXPERIMENTS.md check)"
    )
    rob.add_argument("--seeds", type=int, default=5, help="number of seeds to sweep")
    rob.add_argument("--baseline", type=int, default=120)
    rob.add_argument("--current", type=int, default=200)
    rob.add_argument("--alpha", type=float, default=0.05)

    ben = sub.add_parser(
        "bench", help="time the generative substrates (perf trajectory)"
    )
    ben.add_argument(
        "--scale",
        choices=("full", "quick"),
        default="full",
        help="operating point: full = tracked trajectory, quick = CI smoke",
    )
    ben.add_argument("--label", default="run", help="tag stored on the run record")
    ben.add_argument("--repeats", type=int, default=None, help="min-of-k repeat count")
    ben.add_argument(
        "--json", type=Path, default=None, help="BENCH_*.json file to append the run to"
    )
    ben.add_argument(
        "--no-end-to-end",
        action="store_true",
        help="skip the study-build + report end-to-end timing",
    )
    ben.add_argument(
        "--check",
        type=Path,
        default=None,
        help="baseline trajectory file; exit 1 if the scheduler regresses",
    )
    ben.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed slowdown vs baseline before --check fails (0.25 = +25%%)",
    )
    ben.add_argument(
        "--max-retry-overhead",
        type=float,
        default=0.02,
        help=(
            "allowed fault-free cost of the retry/timeout wrapper before "
            "--check fails (0.02 = +2%%; intra-record, no baseline needed)"
        ),
    )
    ben.add_argument(
        "--max-journal-overhead",
        type=float,
        default=0.02,
        help=(
            "allowed cost of the journal + cross-process-locking wrapper "
            "before --check fails (0.02 = +2%%; intra-record, no baseline "
            "needed)"
        ),
    )

    pwr = sub.add_parser("power", help="two-proportion power calculations")
    pwr.add_argument("--p1", type=float, required=True, help="baseline proportion")
    pwr.add_argument("--p2", type=float, required=True, help="expected proportion")
    pwr.add_argument("--n1", type=int, default=None)
    pwr.add_argument("--n2", type=int, default=None)
    pwr.add_argument("--power", type=float, default=0.8)
    pwr.add_argument("--alpha", type=float, default=0.05)
    return parser


def _build_study(args):
    from repro.core import build_default_study

    return build_default_study(
        seed=args.seed,
        n_baseline=args.baseline,
        n_current=args.current,
        months=args.months,
        jobs_per_day=args.jobs_per_day,
    )


def _cmd_generate(args, out) -> int:
    from repro.cluster import write_sacct
    from repro.io import write_responses_jsonl

    study = _build_study(args)
    args.out.mkdir(parents=True, exist_ok=True)
    responses_path = args.out / "responses.jsonl"
    accounting_path = args.out / "accounting.sacct"
    write_responses_jsonl(study.responses, responses_path)
    write_sacct(study.telemetry, accounting_path)
    print(f"wrote {len(study.responses)} responses to {responses_path}", file=out)
    print(f"wrote {len(study.telemetry)} job records to {accounting_path}", file=out)
    return 0


def _cmd_validate(args, out) -> int:
    from repro.core import build_instrument
    from repro.io import ResponseIOError, read_responses_jsonl
    from repro.survey import validate_response_set

    questionnaire = build_instrument()
    skipped = []
    try:
        responses = read_responses_jsonl(
            questionnaire, Path(args.path),
            on_bad_rows=args.on_bad_rows, skipped=skipped,
        )
    except (ResponseIOError, OSError) as exc:
        print(f"error: {exc}", file=out)
        return 2
    for row in skipped[:20]:
        print(f"  skipped line {row.lineno}: {row.reason}", file=out)
    if len(skipped) > 20:
        print(f"  ... and {len(skipped) - 20} more skipped rows", file=out)
    if skipped:
        print(f"skipped {len(skipped)} malformed row(s)", file=out)
    report = validate_response_set(responses)
    print(f"{len(responses)} responses; {len(report.issues)} issues", file=out)
    for issue in report.issues[:20]:
        print(
            f"  [{issue.kind.value}] {issue.respondent_id} / {issue.question_key}: "
            f"{issue.message}",
            file=out,
        )
    if len(report.issues) > 20:
        print(f"  ... and {len(report.issues) - 20} more", file=out)
    print("ingest ok" if report.ok else "FATAL issues present", file=out)
    return 0 if report.ok else 1


def _cmd_audit(args, out) -> int:
    from repro.cluster import audit_table, parse_sacct
    from repro.cluster.partitions import DEFAULT_CLUSTER
    from repro.cluster.sacct import SacctFormatError

    skipped = []
    try:
        table = parse_sacct(
            Path(args.path), on_bad_rows=args.on_bad_rows, skipped=skipped
        )
    except (SacctFormatError, OSError) as exc:
        print(f"error: {exc}", file=out)
        return 2
    for row in skipped[:20]:
        print(f"  skipped line {row.lineno}: {row.reason}", file=out)
    if len(skipped) > 20:
        print(f"  ... and {len(skipped) - 20} more skipped rows", file=out)
    if skipped:
        print(f"skipped {len(skipped)} malformed row(s)", file=out)
    report = audit_table(table, DEFAULT_CLUSTER)
    print(f"{report.n_jobs} jobs audited; {len(report.issues)} issues", file=out)
    for kind, count in sorted(report.summary().items()):
        print(f"  {kind}: {count}", file=out)
    for issue in report.issues[:20]:
        print(f"  job {issue.job_id}: {issue.message}", file=out)
    print("accounting ok" if report.ok else "accounting has issues", file=out)
    return 0 if report.ok else 1


def _cmd_codebook(args, out) -> int:
    from repro.core import build_instrument
    from repro.survey import build_codebook

    print(build_codebook(build_instrument()).render(), file=out)
    return 0


def _cmd_experiments(args, out) -> int:
    from repro.report import EXPERIMENTS

    def sort_key(eid: str):
        return (eid[0], int(eid[1:]))

    for eid in sorted(EXPERIMENTS, key=sort_key):
        experiment = EXPERIMENTS[eid]
        print(f"{eid:<4} [{experiment.kind:<6}] {experiment.title}: "
              f"{experiment.description}", file=out)
    return 0


def _cmd_experiment(args, out) -> int:
    from repro.report import EXPERIMENTS, run_experiment

    eid = args.id.upper()
    if eid not in EXPERIMENTS:
        print(f"error: unknown experiment {args.id!r}; known: "
              f"{', '.join(sorted(EXPERIMENTS))}", file=out)
        return 2
    study = _build_study(args)
    print(run_experiment(eid, study).render_ascii(), file=out)
    return 0


#: Exit code for a report that rendered but with placeholder sections
#: (some experiments failed under --keep-going). Distinct from 0 (clean),
#: 1 (validation issues), and 2 (usage/input errors) so scripted callers
#: can tell "usable but degraded" from both success and hard failure.
EXIT_PARTIAL = 3

#: Exit code for a run cut short by Ctrl-C, following the shell convention
#: (128 + SIGINT). The journal is flushed first, so a --durable run prints
#: a one-line resume hint instead of a traceback.
EXIT_INTERRUPTED = 130


def _durable_report(args, out) -> int:
    """The --durable path of ``repro report``: journaled pipeline + resume."""
    from repro.core.journal import JournalError, RunJournal, latest_run_id, load_resume_state
    from repro.core.pipeline import ArtifactCache
    from repro.report.document import render_report
    from repro.report.experiments import report_pipeline

    durable = Path(args.durable)
    journal_dir = durable / "journals"
    resume_state = None
    if args.resume is not None:
        run_id = args.resume
        if run_id == "latest":
            run_id = latest_run_id(journal_dir)
            if run_id is None:
                print(f"error: no journals to resume under {journal_dir}", file=out)
                return 2
        try:
            resume_state = load_resume_state(journal_dir, run_id)
        except JournalError as exc:
            print(f"error: {exc}", file=out)
            return 2
    cache = ArtifactCache(durable / "cache")
    pipeline = report_pipeline(
        cache,
        seed=args.seed,
        n_baseline=args.baseline,
        n_current=args.current,
        months=args.months,
        jobs_per_day=args.jobs_per_day,
    )
    journal = RunJournal.open(journal_dir)
    try:
        try:
            results, report = pipeline.run_with_report(
                max_workers=args.jobs,
                executor=args.executor,
                on_error="keep_going" if args.keep_going else "raise",
                journal=journal,
                resume=resume_state,
            )
        except KeyboardInterrupt:
            journal.flush()
            print(
                f"interrupted — resume with --resume {journal.run_id}",
                file=out,
            )
            return EXIT_INTERRUPTED
    finally:
        journal.close()
    if "study" not in results:
        print("error: the study stages failed; nothing to render", file=out)
        if pipeline.last_report is not None:
            print(pipeline.last_report.render(), file=out)
        return 1
    artifacts = {
        name.removeprefix("exp:"): value
        for name, value in results.items()
        if name.startswith("exp:")
    }
    failures = {
        o.name.removeprefix("exp:"): o.error
        for o in report.outcomes
        if o.name.startswith("exp:") and not o.succeeded
    }
    text = render_report(results["study"], artifacts, failures)
    if args.out is not None:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"wrote report to {args.out}", file=out)
    else:
        print(text, file=out)
    if args.timings:
        metrics = pipeline.last_metrics
        if metrics is not None:
            print(metrics.render(), file=out)
        print(report.render(), file=out)
    if failures:
        print(
            f"warning: report degraded — {len(failures)} experiment(s) failed: "
            f"{', '.join(sorted(failures))}",
            file=out,
        )
        return EXIT_PARTIAL
    return 0


def _cmd_report(args, out) -> int:
    from repro.report.document import build_report

    if args.jobs is not None and args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=out)
        return 2
    if args.resume is not None and args.durable is None:
        print("error: --resume requires --durable DIR", file=out)
        return 2
    if args.durable is not None:
        return _durable_report(args, out)
    study = _build_study(args)
    metrics_sink = []
    text = build_report(
        study,
        max_workers=args.jobs,
        executor=args.executor,
        on_error="keep_going" if args.keep_going else "raise",
        metrics_out=metrics_sink,
    )
    if args.out is not None:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"wrote report to {args.out}", file=out)
    else:
        print(text, file=out)
    if args.timings:
        if metrics_sink:
            print(metrics_sink[0].render(), file=out)
            report = metrics_sink[0].run_report
            if report is not None:
                print(report.render(), file=out)
        else:
            print("no executor timings recorded", file=out)
    failed = [m.name for m in metrics_sink[0].steps if m.outcome == "failed"] if metrics_sink else []
    if failed:
        print(
            f"warning: report degraded — {len(failed)} experiment(s) failed: "
            f"{', '.join(sorted(failed))}",
            file=out,
        )
        return EXIT_PARTIAL
    return 0


def _cmd_bench(args, out) -> int:
    from repro.core.bench import (
        append_run,
        check_journal_overhead,
        check_regression,
        check_retry_overhead,
        render_record,
        run_benchmarks,
    )

    if args.repeats is not None and args.repeats < 1:
        print(f"error: --repeats must be >= 1, got {args.repeats}", file=out)
        return 2
    record = run_benchmarks(
        scale=args.scale,
        label=args.label,
        repeats=args.repeats,
        end_to_end=not args.no_end_to_end,
    )
    print(render_record(record), file=out)
    if args.json is not None:
        append_run(args.json, record)
        print(f"appended run to {args.json}", file=out)
    if args.check is not None:
        try:
            ok, message = check_regression(
                record, args.check, max_regression=args.max_regression
            )
            overhead_ok, overhead_message = check_retry_overhead(
                record, max_overhead=args.max_retry_overhead
            )
            journal_ok, journal_message = check_journal_overhead(
                record, max_overhead=args.max_journal_overhead
            )
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=out)
            return 2
        print(("ok: " if ok else "REGRESSION: ") + message, file=out)
        print(
            ("ok: " if overhead_ok else "REGRESSION: ") + overhead_message, file=out
        )
        print(
            ("ok: " if journal_ok else "REGRESSION: ") + journal_message, file=out
        )
        return 0 if ok and overhead_ok and journal_ok else 1
    return 0


def _cmd_robustness(args, out) -> int:
    from repro.analysis import headline_robustness

    results = headline_robustness(
        seeds=list(range(1, args.seeds + 1)),
        n_baseline=args.baseline,
        n_current=args.current,
        alpha=args.alpha,
    )
    print(
        f"headline claims over {args.seeds} seeds "
        f"(n={args.baseline}/{args.current}, alpha={args.alpha}):",
        file=out,
    )
    for r in results:
        print(
            f"  {r.claim:<22} direction {r.direction_held}/{r.n_seeds}  "
            f"significant {r.significant}/{r.n_seeds}  "
            f"mean change {r.mean_delta:+.1%}",
            file=out,
        )
    weakest = min(results, key=lambda r: (r.direction_rate, r.significance_rate))
    print(
        f"weakest claim: {weakest.claim} "
        f"({weakest.direction_rate:.0%} direction, "
        f"{weakest.significance_rate:.0%} significant)",
        file=out,
    )
    return 0


def _cmd_power(args, out) -> int:
    from repro.stats import required_n_per_group, two_proportion_power

    try:
        if args.n1 is not None and args.n2 is not None:
            power = two_proportion_power(args.p1, args.p2, args.n1, args.n2, args.alpha)
            print(
                f"power to detect {args.p1:.0%} -> {args.p2:.0%} at "
                f"n={args.n1}/{args.n2}: {power:.1%}",
                file=out,
            )
        else:
            n = required_n_per_group(args.p1, args.p2, args.power, args.alpha)
            print(
                f"need n={n} per group for {args.power:.0%} power to detect "
                f"{args.p1:.0%} -> {args.p2:.0%}",
                file=out,
            )
    except ValueError as exc:
        print(f"error: {exc}", file=out)
        return 2
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "validate": _cmd_validate,
    "audit": _cmd_audit,
    "experiments": _cmd_experiments,
    "robustness": _cmd_robustness,
    "codebook": _cmd_codebook,
    "experiment": _cmd_experiment,
    "report": _cmd_report,
    "bench": _cmd_bench,
    "power": _cmd_power,
}


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code.

    A Ctrl-C during the long-running commands (``report``, ``bench``)
    exits ``130`` (128 + SIGINT) with a one-line notice instead of a
    traceback; the ``--durable`` report path additionally flushes its
    journal and prints the ``--resume`` hint before this handler sees
    anything.
    """
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except KeyboardInterrupt:
        if args.command in ("report", "bench"):
            print("interrupted", file=out)
            return EXIT_INTERRUPTED
        raise


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
