"""Seeded, vectorized nonparametric bootstrap.

Telemetry aggregates (median queue wait, monthly GPU-hour growth rate) have no
convenient closed-form intervals, so the study bootstraps them. Resampling is
done as one ``(n_resamples, n)`` integer index draw and the statistic is
evaluated along the resample axis when it supports ``axis=``, falling back to
a per-row loop otherwise — the index matrix is the expensive part either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["BootstrapResult", "bootstrap_ci", "bootstrap_diff_ci", "percentile_ci"]


@dataclass(frozen=True, slots=True)
class BootstrapResult:
    """Point estimate plus percentile bootstrap interval.

    Attributes
    ----------
    estimate:
        Statistic evaluated on the original sample.
    low, high:
        Percentile interval endpoints over the bootstrap distribution.
    confidence:
        Nominal two-sided level.
    n_resamples:
        Number of bootstrap resamples drawn.
    """

    estimate: float
    low: float
    high: float
    confidence: float
    n_resamples: int

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError(f"interval endpoints reversed: [{self.low}, {self.high}]")

    @property
    def width(self) -> float:
        return self.high - self.low


def percentile_ci(
    bootstrap_values: np.ndarray, confidence: float = 0.95
) -> tuple[float, float]:
    """Percentile interval over a 1-D array of bootstrap statistics."""
    values = np.asarray(bootstrap_values, dtype=float)
    if values.size == 0:
        raise ValueError("empty bootstrap distribution")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    alpha = 1.0 - confidence
    low, high = np.quantile(values, [alpha / 2.0, 1.0 - alpha / 2.0])
    return float(low), float(high)


def _resample_statistics(
    data: np.ndarray,
    statistic: Callable,
    n_resamples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    idx = rng.integers(0, data.size, size=(n_resamples, data.size))
    resamples = data[idx]  # (n_resamples, n) — one big gather
    try:
        values = np.asarray(statistic(resamples, axis=1), dtype=float)
        if values.shape != (n_resamples,):
            raise TypeError
        return values
    except TypeError:
        # Statistic doesn't support axis=: evaluate row by row.
        return np.array([float(statistic(row)) for row in resamples])


def bootstrap_ci(
    data,
    statistic: Callable = np.mean,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    rng: np.random.Generator | None = None,
) -> BootstrapResult:
    """Percentile bootstrap CI for ``statistic`` over a 1-D sample.

    Parameters
    ----------
    data:
        1-D array-like sample.
    statistic:
        Callable; ideally accepts ``axis=`` (numpy reductions do) so the whole
        bootstrap is a single vectorized evaluation.
    confidence:
        Two-sided level of the interval.
    n_resamples:
        Number of bootstrap resamples.
    rng:
        Seeded generator; defaults to ``np.random.default_rng(0)`` so calls
        are reproducible unless a caller opts into its own stream.
    """
    arr = np.asarray(data, dtype=float).ravel()
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if n_resamples <= 0:
        raise ValueError("n_resamples must be positive")
    if rng is None:
        rng = np.random.default_rng(0)
    estimate = float(statistic(arr))
    values = _resample_statistics(arr, statistic, n_resamples, rng)
    low, high = percentile_ci(values, confidence)
    return BootstrapResult(
        estimate=estimate,
        low=low,
        high=high,
        confidence=confidence,
        n_resamples=n_resamples,
    )


def bootstrap_diff_ci(
    sample_a,
    sample_b,
    statistic: Callable = np.mean,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    rng: np.random.Generator | None = None,
) -> BootstrapResult:
    """Bootstrap CI for ``statistic(a) - statistic(b)`` with independent resampling."""
    a = np.asarray(sample_a, dtype=float).ravel()
    b = np.asarray(sample_b, dtype=float).ravel()
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    if n_resamples <= 0:
        raise ValueError("n_resamples must be positive")
    if rng is None:
        rng = np.random.default_rng(0)
    estimate = float(statistic(a)) - float(statistic(b))
    values_a = _resample_statistics(a, statistic, n_resamples, rng)
    values_b = _resample_statistics(b, statistic, n_resamples, rng)
    low, high = percentile_ci(values_a - values_b, confidence)
    return BootstrapResult(
        estimate=estimate,
        low=low,
        high=high,
        confidence=confidence,
        n_resamples=n_resamples,
    )
