"""Survey weighting: post-stratification and raking.

The survey oversamples some departments (whoever answers email fastest), so
cohort-level proportions are adjusted toward known population margins — the
registrar's counts of researchers per field and per career stage — before
being compared across cohorts.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

__all__ = [
    "PostStratificationError",
    "post_stratify",
    "rake_weights",
    "weighted_mean",
    "weighted_proportion",
    "effective_sample_size",
]


class PostStratificationError(ValueError):
    """Raised when weighting targets cannot be satisfied (empty cells etc.)."""


def post_stratify(
    strata: Sequence[str],
    population_shares: Mapping[str, float],
) -> np.ndarray:
    """Weights making sample strata shares match population shares.

    Parameters
    ----------
    strata:
        Per-respondent stratum label (e.g. field of research).
    population_shares:
        Mapping stratum -> population share; shares must sum to ~1 over the
        strata present in the sample (renormalized internally).

    Returns
    -------
    Array of weights with mean 1.0 over the sample.
    """
    labels = np.asarray(list(strata), dtype=object)
    n = labels.size
    if n == 0:
        raise PostStratificationError("empty sample")
    unique, counts = np.unique(labels, return_counts=True)
    missing = [u for u in unique if u not in population_shares]
    if missing:
        raise PostStratificationError(
            f"no population share for sample strata: {sorted(map(str, missing))}"
        )
    shares = np.array([population_shares[u] for u in unique], dtype=float)
    if (shares < 0).any():
        raise PostStratificationError("population shares must be non-negative")
    total_share = shares.sum()
    if total_share <= 0:
        raise PostStratificationError("population shares sum to zero over sample strata")
    shares = shares / total_share
    sample_shares = counts / n
    per_stratum = shares / sample_shares
    weight_of = dict(zip(unique.tolist(), per_stratum.tolist()))
    weights = np.array([weight_of[lab] for lab in labels], dtype=float)
    return weights / weights.mean()


def rake_weights(
    margins: Sequence[Sequence[str]],
    targets: Sequence[Mapping[str, float]],
    max_iter: int = 100,
    tol: float = 1e-8,
) -> np.ndarray:
    """Iterative proportional fitting (raking) over several margins.

    Parameters
    ----------
    margins:
        One label sequence per margin, each of length n (e.g. field labels
        and career-stage labels).
    targets:
        One mapping per margin: label -> target population share.
    max_iter, tol:
        IPF iteration controls; convergence is measured as the max absolute
        gap between achieved and target shares across all margins.

    Returns
    -------
    Weights with mean 1.0.
    """
    if len(margins) != len(targets):
        raise PostStratificationError("margins and targets length mismatch")
    if not margins:
        raise PostStratificationError("need at least one margin")
    label_arrays = [np.asarray(list(m), dtype=object) for m in margins]
    n = label_arrays[0].size
    if n == 0:
        raise PostStratificationError("empty sample")
    for arr in label_arrays:
        if arr.size != n:
            raise PostStratificationError("all margins must have the same length")

    # Pre-index each margin's labels to integer codes for vectorized bincounts.
    coded: list[tuple[np.ndarray, np.ndarray]] = []
    for arr, target in zip(label_arrays, targets):
        unique = np.unique(arr)
        missing = [u for u in unique if u not in target]
        if missing:
            raise PostStratificationError(
                f"no target share for labels: {sorted(map(str, missing))}"
            )
        shares = np.array([target[u] for u in unique], dtype=float)
        if shares.sum() <= 0:
            raise PostStratificationError("target shares sum to zero")
        shares = shares / shares.sum()
        code_of = {u: i for i, u in enumerate(unique)}
        codes = np.array([code_of[x] for x in arr], dtype=np.intp)
        coded.append((codes, shares))

    weights = np.ones(n, dtype=float)
    for _ in range(max_iter):
        max_gap = 0.0
        for codes, shares in coded:
            achieved = np.bincount(codes, weights=weights, minlength=shares.size)
            achieved_shares = achieved / weights.sum()
            gap = float(np.abs(achieved_shares - shares).max())
            max_gap = max(max_gap, gap)
            with np.errstate(divide="ignore", invalid="ignore"):
                factor = np.where(achieved > 0, shares * weights.sum() / achieved, 1.0)
            weights *= factor[codes]
        if max_gap < tol:
            break
    return weights / weights.mean()


def weighted_mean(values, weights) -> float:
    """Weighted mean with validation."""
    v = np.asarray(values, dtype=float)
    w = np.asarray(weights, dtype=float)
    if v.shape != w.shape:
        raise ValueError("values and weights must have identical shape")
    if v.size == 0:
        raise ValueError("empty sample")
    total = w.sum()
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    return float((v * w).sum() / total)


def weighted_proportion(indicator, weights) -> float:
    """Weighted proportion of a boolean indicator."""
    ind = np.asarray(indicator, dtype=bool).astype(float)
    return weighted_mean(ind, weights)


def effective_sample_size(weights) -> float:
    """Kish effective sample size: (sum w)^2 / sum w^2."""
    w = np.asarray(weights, dtype=float)
    if w.size == 0:
        raise ValueError("empty weights")
    if (w < 0).any():
        raise ValueError("weights must be non-negative")
    denom = (w**2).sum()
    if denom == 0:
        raise ValueError("all weights are zero")
    return float(w.sum() ** 2 / denom)
