"""Effect sizes accompanying significance tests.

With cohort sizes in the low hundreds, the trend tables report effect sizes
alongside p-values so readers can distinguish "significant but tiny" shifts
from practice changes that actually matter.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "cramers_v",
    "cohens_h",
    "cohens_w",
    "odds_ratio",
    "risk_difference",
    "risk_ratio",
    "rank_biserial",
]


def cramers_v(table) -> float:
    """Cramér's V for an r x c contingency table, in [0, 1]."""
    obs = np.asarray(table, dtype=float)
    if obs.ndim != 2 or obs.shape[0] < 2 or obs.shape[1] < 2:
        raise ValueError(f"need an r x c table with r,c >= 2, got {obs.shape}")
    total = obs.sum()
    if total == 0:
        raise ValueError("table is all zeros")
    exp = np.outer(obs.sum(axis=1), obs.sum(axis=0)) / total
    with np.errstate(divide="ignore", invalid="ignore"):
        chi2 = float(np.where(exp > 0, (obs - exp) ** 2 / exp, 0.0).sum())
    k = min(obs.shape[0], obs.shape[1]) - 1
    if k == 0:
        return 0.0
    return math.sqrt(chi2 / (total * k))


def cohens_h(p1: float, p2: float) -> float:
    """Cohen's h: arcsine-transformed difference of two proportions."""
    for p in (p1, p2):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"proportion out of [0,1]: {p}")
    return 2.0 * math.asin(math.sqrt(p1)) - 2.0 * math.asin(math.sqrt(p2))


def cohens_w(observed, expected) -> float:
    """Cohen's w for goodness-of-fit against expected cell probabilities."""
    obs = np.asarray(observed, dtype=float)
    exp = np.asarray(expected, dtype=float)
    if obs.shape != exp.shape:
        raise ValueError("observed and expected must have the same shape")
    if obs.sum() <= 0 or exp.sum() <= 0:
        raise ValueError("counts must sum to a positive value")
    p_obs = obs / obs.sum()
    p_exp = exp / exp.sum()
    if (p_exp == 0).any():
        raise ValueError("expected probabilities must be nonzero")
    return float(np.sqrt(((p_obs - p_exp) ** 2 / p_exp).sum()))


def _counts_2x2(a: float, b: float, c: float, d: float) -> None:
    for x in (a, b, c, d):
        if x < 0:
            raise ValueError("2x2 cell counts must be non-negative")


def odds_ratio(a: float, b: float, c: float, d: float, haldane: bool = True) -> float:
    """Odds ratio for a 2x2 table ``[[a, b], [c, d]]``.

    With ``haldane=True`` (default), adds 0.5 to every cell when any cell is
    zero, the standard continuity correction for sparse survey cross-tabs.
    """
    _counts_2x2(a, b, c, d)
    if haldane and 0 in (a, b, c, d):
        a, b, c, d = a + 0.5, b + 0.5, c + 0.5, d + 0.5
    if b == 0 or c == 0:
        return math.inf
    return (a * d) / (b * c)


def risk_difference(successes_a: int, trials_a: int, successes_b: int, trials_b: int) -> float:
    """Absolute difference in proportions, p_a - p_b."""
    if trials_a <= 0 or trials_b <= 0:
        raise ValueError("trials must be positive")
    return successes_a / trials_a - successes_b / trials_b


def risk_ratio(successes_a: int, trials_a: int, successes_b: int, trials_b: int) -> float:
    """Ratio of proportions p_a / p_b; inf when p_b == 0 and p_a > 0, nan when both 0."""
    if trials_a <= 0 or trials_b <= 0:
        raise ValueError("trials must be positive")
    p_a = successes_a / trials_a
    p_b = successes_b / trials_b
    if p_b == 0.0:
        return math.nan if p_a == 0.0 else math.inf
    return p_a / p_b


def rank_biserial(sample_a, sample_b) -> float:
    """Rank-biserial correlation from a Mann-Whitney comparison, in [-1, 1].

    Positive values mean ``sample_a`` tends to exceed ``sample_b``.
    """
    a = np.asarray(sample_a, dtype=float)
    b = np.asarray(sample_b, dtype=float)
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    # U1 via pairwise comparisons, vectorized; ties count half.
    greater = (a[:, None] > b[None, :]).sum()
    ties = (a[:, None] == b[None, :]).sum()
    u1 = float(greater) + 0.5 * float(ties)
    return 2.0 * u1 / (a.size * b.size) - 1.0
