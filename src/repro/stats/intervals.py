"""Binomial confidence intervals for survey proportions.

The study reports nearly every number as "proportion of respondents who ...",
so interval quality matters. Wilson is the default everywhere in the library:
it has near-nominal coverage at the small per-field sample sizes (n of 10-40)
the survey produces, where the Wald interval badly undercovers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import stats as _sps

__all__ = [
    "BinomialInterval",
    "wilson_interval",
    "agresti_coull_interval",
    "clopper_pearson_interval",
    "wald_interval",
]


@dataclass(frozen=True, slots=True)
class BinomialInterval:
    """A point estimate with a two-sided confidence interval.

    Attributes
    ----------
    estimate:
        The point estimate of the proportion (successes / trials).
    low, high:
        Interval endpoints, clipped to [0, 1].
    confidence:
        The nominal two-sided confidence level, e.g. ``0.95``.
    method:
        Name of the estimator that produced the interval.
    """

    estimate: float
    low: float
    high: float
    confidence: float
    method: str

    def __post_init__(self) -> None:
        if not (0.0 <= self.low <= self.high <= 1.0):
            raise ValueError(
                f"invalid interval [{self.low}, {self.high}] for method {self.method}"
            )

    @property
    def width(self) -> float:
        """Total width of the interval."""
        return self.high - self.low

    def contains(self, p: float) -> bool:
        """Whether ``p`` lies inside the closed interval."""
        return self.low <= p <= self.high

    def as_tuple(self) -> tuple[float, float, float]:
        """``(estimate, low, high)`` for table rendering."""
        return (self.estimate, self.low, self.high)


def _validate(successes: int, trials: int, confidence: float) -> None:
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes {successes} outside [0, {trials}]")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")


def _z_value(confidence: float) -> float:
    return float(_sps.norm.ppf(0.5 + confidence / 2.0))


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> BinomialInterval:
    """Wilson score interval.

    Solves the score equation for p, giving an interval centred on a
    shrunk estimate. Behaves well for small n and extreme proportions,
    which is exactly the regime of per-field survey breakdowns.
    """
    _validate(successes, trials, confidence)
    z = _z_value(confidence)
    n = float(trials)
    p_hat = successes / n
    z2 = z * z
    denom = 1.0 + z2 / n
    centre = (p_hat + z2 / (2.0 * n)) / denom
    margin = (z / denom) * math.sqrt(p_hat * (1.0 - p_hat) / n + z2 / (4.0 * n * n))
    # At the boundaries the analytic endpoints are exactly 0/1; clamp so FP
    # rounding never leaves the estimate microscopically outside the interval.
    low = 0.0 if successes == 0 else max(0.0, centre - margin)
    high = 1.0 if successes == trials else min(1.0, centre + margin)
    return BinomialInterval(
        estimate=p_hat,
        low=low,
        high=high,
        confidence=confidence,
        method="wilson",
    )


def agresti_coull_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> BinomialInterval:
    """Agresti-Coull "add z^2/2 successes and failures" interval."""
    _validate(successes, trials, confidence)
    z = _z_value(confidence)
    z2 = z * z
    n_tilde = trials + z2
    p_tilde = (successes + z2 / 2.0) / n_tilde
    margin = z * math.sqrt(p_tilde * (1.0 - p_tilde) / n_tilde)
    low = max(0.0, p_tilde - margin)
    high = min(1.0, p_tilde + margin)
    # Keep the (possibly boundary) point estimate inside the interval.
    p_hat = successes / trials
    return BinomialInterval(
        estimate=p_hat,
        low=min(low, p_hat),
        high=max(high, p_hat),
        confidence=confidence,
        method="agresti-coull",
    )


def clopper_pearson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> BinomialInterval:
    """Exact (conservative) Clopper-Pearson interval from beta quantiles."""
    _validate(successes, trials, confidence)
    alpha = 1.0 - confidence
    if successes == 0:
        low = 0.0
    else:
        low = float(_sps.beta.ppf(alpha / 2.0, successes, trials - successes + 1))
    if successes == trials:
        high = 1.0
    else:
        high = float(_sps.beta.ppf(1.0 - alpha / 2.0, successes + 1, trials - successes))
    return BinomialInterval(
        estimate=successes / trials,
        low=low,
        high=high,
        confidence=confidence,
        method="clopper-pearson",
    )


def wald_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> BinomialInterval:
    """Plain normal-approximation interval.

    Included for the CI-method ablation bench only; known to undercover for
    small n. Library code should prefer :func:`wilson_interval`.
    """
    _validate(successes, trials, confidence)
    z = _z_value(confidence)
    p_hat = successes / trials
    margin = z * math.sqrt(p_hat * (1.0 - p_hat) / trials)
    return BinomialInterval(
        estimate=p_hat,
        low=max(0.0, p_hat - margin),
        high=min(1.0, p_hat + margin),
        confidence=confidence,
        method="wald",
    )
