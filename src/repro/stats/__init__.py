"""Statistics substrate for the practice study.

Everything the analysis layer needs to attach uncertainty and significance to
survey proportions and telemetry aggregates:

* binomial interval estimators (Wilson, Agresti-Coull, Clopper-Pearson, Wald);
* contingency-table tests (chi-square, G-test, Fisher exact for 2x2);
* proportion comparisons (two-sample z, risk difference / ratio, odds ratio);
* rank tests (Mann-Whitney U) for ordinal Likert data;
* effect sizes (Cramér's V, Cohen's h/w, rank-biserial);
* nonparametric bootstrap with seeded, vectorized resampling;
* multiple-comparison corrections (Holm, Bonferroni, Benjamini-Hochberg);
* post-stratification weighting for survey raking.

All functions are pure, operate on plain floats / numpy arrays, and accept an
optional ``numpy.random.Generator`` wherever randomness is involved so results
are reproducible end to end.
"""

from repro.stats.intervals import (
    BinomialInterval,
    agresti_coull_interval,
    clopper_pearson_interval,
    wald_interval,
    wilson_interval,
)
from repro.stats.tests import (
    TestResult,
    chi_square_test,
    fisher_exact_2x2,
    g_test,
    mann_whitney_u,
    mcnemar_test,
    two_proportion_z_test,
)
from repro.stats.effects import (
    cohens_h,
    cohens_w,
    cramers_v,
    odds_ratio,
    rank_biserial,
    risk_difference,
    risk_ratio,
)
from repro.stats.bootstrap import (
    BootstrapResult,
    bootstrap_ci,
    bootstrap_diff_ci,
    percentile_ci,
)
from repro.stats.corrections import (
    benjamini_hochberg,
    bonferroni,
    holm_bonferroni,
)
from repro.stats.weights import (
    PostStratificationError,
    effective_sample_size,
    post_stratify,
    rake_weights,
    weighted_mean,
    weighted_proportion,
)
from repro.stats.agreement import (
    cohens_kappa,
    multilabel_kappa,
    percent_agreement,
)
from repro.stats.power import (
    minimum_detectable_delta,
    required_n_per_group,
    two_proportion_power,
)
from repro.stats.descriptive import (
    ecdf,
    geometric_mean,
    gini_coefficient,
    quantiles,
    summarize,
    trimmed_mean,
)

__all__ = [
    "BinomialInterval",
    "wilson_interval",
    "agresti_coull_interval",
    "clopper_pearson_interval",
    "wald_interval",
    "TestResult",
    "chi_square_test",
    "g_test",
    "fisher_exact_2x2",
    "two_proportion_z_test",
    "mann_whitney_u",
    "mcnemar_test",
    "cramers_v",
    "cohens_h",
    "cohens_w",
    "odds_ratio",
    "risk_difference",
    "risk_ratio",
    "rank_biserial",
    "BootstrapResult",
    "bootstrap_ci",
    "bootstrap_diff_ci",
    "percentile_ci",
    "holm_bonferroni",
    "bonferroni",
    "benjamini_hochberg",
    "post_stratify",
    "rake_weights",
    "weighted_mean",
    "weighted_proportion",
    "effective_sample_size",
    "PostStratificationError",
    "two_proportion_power",
    "required_n_per_group",
    "minimum_detectable_delta",
    "cohens_kappa",
    "percent_agreement",
    "multilabel_kappa",
    "ecdf",
    "quantiles",
    "summarize",
    "geometric_mean",
    "trimmed_mean",
    "gini_coefficient",
]
