"""Inter-coder agreement for the qualitative coding steps.

The challenge-topic coding (X7) is the kind of step that real studies
double-code; Cohen's kappa quantifies how much two coders agree beyond
chance. Also includes raw percent agreement and per-label kappa for
multi-label codings.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["cohens_kappa", "percent_agreement", "multilabel_kappa"]


def percent_agreement(coder_a: Sequence, coder_b: Sequence) -> float:
    """Raw fraction of items both coders labeled identically."""
    a = list(coder_a)
    b = list(coder_b)
    if len(a) != len(b):
        raise ValueError("coders labeled different numbers of items")
    if not a:
        raise ValueError("no items")
    return sum(x == y for x, y in zip(a, b)) / len(a)


def cohens_kappa(coder_a: Sequence, coder_b: Sequence) -> float:
    """Cohen's kappa for two categorical codings of the same items.

    Returns 1.0 for perfect agreement, ~0 for chance-level, negative for
    worse-than-chance. When both coders use a single identical label
    everywhere, chance agreement is 1 and kappa is defined as 1.0.
    """
    a = [str(x) for x in coder_a]
    b = [str(x) for x in coder_b]
    if len(a) != len(b):
        raise ValueError("coders labeled different numbers of items")
    n = len(a)
    if n == 0:
        raise ValueError("no items")
    labels = sorted(set(a) | set(b))
    index = {lab: i for i, lab in enumerate(labels)}
    table = np.zeros((len(labels), len(labels)))
    for x, y in zip(a, b):
        table[index[x], index[y]] += 1
    observed = np.trace(table) / n
    marginal_a = table.sum(axis=1) / n
    marginal_b = table.sum(axis=0) / n
    expected = float((marginal_a * marginal_b).sum())
    if expected >= 1.0 - 1e-12:
        return 1.0 if observed >= 1.0 - 1e-12 else 0.0
    return float((observed - expected) / (1.0 - expected))


def multilabel_kappa(
    coder_a: Sequence[frozenset | set],
    coder_b: Sequence[frozenset | set],
    labels: Sequence[str],
) -> dict[str, float]:
    """Per-label Cohen's kappa for multi-label codings.

    Each item carries a set of labels per coder; each label becomes a
    binary present/absent coding and gets its own kappa.
    """
    a = list(coder_a)
    b = list(coder_b)
    if len(a) != len(b):
        raise ValueError("coders labeled different numbers of items")
    if not labels:
        raise ValueError("no labels")
    out: dict[str, float] = {}
    for label in labels:
        flags_a = [label in s for s in a]
        flags_b = [label in s for s in b]
        out[label] = cohens_kappa(flags_a, flags_b)
    return out
