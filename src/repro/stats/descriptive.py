"""Descriptive statistics helpers shared by survey and telemetry analyses."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ecdf",
    "quantiles",
    "Summary",
    "summarize",
    "geometric_mean",
    "trimmed_mean",
    "gini_coefficient",
]


def ecdf(values) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF as ``(sorted_values, cumulative_fraction)``.

    The returned arrays are suitable for step-plotting a figure series
    (e.g. F4, the job-width CDF).
    """
    v = np.asarray(values, dtype=float).ravel()
    if v.size == 0:
        raise ValueError("empty sample")
    x = np.sort(v)
    y = np.arange(1, x.size + 1, dtype=float) / x.size
    return x, y


def quantiles(values, qs=(0.05, 0.25, 0.5, 0.75, 0.95)) -> dict[float, float]:
    """Named quantiles as a mapping q -> value."""
    v = np.asarray(values, dtype=float).ravel()
    if v.size == 0:
        raise ValueError("empty sample")
    out = np.quantile(v, list(qs))
    return {float(q): float(x) for q, x in zip(qs, out)}


@dataclass(frozen=True, slots=True)
class Summary:
    """Five-number-plus summary of a numeric sample."""

    n: int
    mean: float
    std: float
    minimum: float
    q25: float
    median: float
    q75: float
    maximum: float

    def as_dict(self) -> dict[str, float]:
        return {
            "n": self.n,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "q25": self.q25,
            "median": self.median,
            "q75": self.q75,
            "max": self.maximum,
        }


def summarize(values) -> Summary:
    """Compute a :class:`Summary` of a numeric sample."""
    v = np.asarray(values, dtype=float).ravel()
    if v.size == 0:
        raise ValueError("empty sample")
    q25, med, q75 = np.quantile(v, [0.25, 0.5, 0.75])
    return Summary(
        n=int(v.size),
        mean=float(v.mean()),
        std=float(v.std(ddof=1)) if v.size > 1 else 0.0,
        minimum=float(v.min()),
        q25=float(q25),
        median=float(med),
        q75=float(q75),
        maximum=float(v.max()),
    )


def geometric_mean(values) -> float:
    """Geometric mean of strictly positive values.

    Job runtimes and speedups are log-distributed, so the telemetry tables
    report geometric rather than arithmetic means.
    """
    v = np.asarray(values, dtype=float).ravel()
    if v.size == 0:
        raise ValueError("empty sample")
    if (v <= 0).any():
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.log(v).mean()))


def trimmed_mean(values, proportion: float = 0.05) -> float:
    """Mean after symmetrically trimming ``proportion`` from each tail."""
    v = np.asarray(values, dtype=float).ravel()
    if v.size == 0:
        raise ValueError("empty sample")
    if not 0.0 <= proportion < 0.5:
        raise ValueError("trim proportion must be in [0, 0.5)")
    k = int(np.floor(v.size * proportion))
    if 2 * k >= v.size:
        k = (v.size - 1) // 2
    v = np.sort(v)
    return float(v[k : v.size - k].mean())


def gini_coefficient(values) -> float:
    """Gini coefficient of non-negative values, in [0, 1).

    Used to summarize how concentrated cluster consumption is across users
    ("a few groups burn most of the GPU-hours").
    """
    v = np.asarray(values, dtype=float).ravel()
    if v.size == 0:
        raise ValueError("empty sample")
    if (v < 0).any():
        raise ValueError("gini requires non-negative values")
    total = v.sum()
    if total == 0:
        return 0.0
    v = np.sort(v)
    n = v.size
    # Standard formula via the sorted cumulative sum.
    index = np.arange(1, n + 1, dtype=float)
    return float((2.0 * (index * v).sum() / (n * total)) - (n + 1.0) / n)
