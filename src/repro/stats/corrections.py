"""Multiple-comparison corrections.

Trend tables test one hypothesis per row (per language, per practice, ...),
so each table's p-values are corrected as a family before stars are printed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["bonferroni", "holm_bonferroni", "benjamini_hochberg"]


def _validate_pvalues(p_values) -> np.ndarray:
    p = np.asarray(p_values, dtype=float)
    if p.ndim != 1:
        raise ValueError(f"p-values must be 1-D, got shape {p.shape}")
    if p.size == 0:
        raise ValueError("empty p-value family")
    if ((p < 0) | (p > 1)).any():
        raise ValueError("p-values must lie in [0, 1]")
    return p


def bonferroni(p_values) -> np.ndarray:
    """Bonferroni-adjusted p-values (min(m*p, 1))."""
    p = _validate_pvalues(p_values)
    return np.minimum(p * p.size, 1.0)


def holm_bonferroni(p_values) -> np.ndarray:
    """Holm step-down adjusted p-values.

    Uniformly more powerful than Bonferroni while still controlling FWER;
    this is the default correction for the study's trend tables.
    """
    p = _validate_pvalues(p_values)
    m = p.size
    order = np.argsort(p, kind="stable")
    adjusted_sorted = (m - np.arange(m)) * p[order]
    # Enforce monotonicity of the step-down procedure.
    adjusted_sorted = np.maximum.accumulate(adjusted_sorted)
    adjusted = np.empty(m, dtype=float)
    adjusted[order] = np.minimum(adjusted_sorted, 1.0)
    return adjusted


def benjamini_hochberg(p_values) -> np.ndarray:
    """Benjamini-Hochberg FDR-adjusted p-values (q-values).

    Used for the exploratory tool-mention families where dozens of tools are
    compared at once and FWER control would be needlessly conservative.
    """
    p = _validate_pvalues(p_values)
    m = p.size
    order = np.argsort(p, kind="stable")
    ranked = p[order] * m / (np.arange(m) + 1)
    # Step-up: each q-value is the running minimum from the right.
    ranked = np.minimum.accumulate(ranked[::-1])[::-1]
    adjusted = np.empty(m, dtype=float)
    adjusted[order] = np.minimum(ranked, 1.0)
    return adjusted
