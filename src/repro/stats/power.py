"""Power analysis for two-proportion comparisons.

The study design question: "how many 2024 respondents do we need to detect
the changes we expect against the 2011 baseline?" Standard normal-
approximation power for the pooled two-proportion z-test, plus the inverse
(required n per group).
"""

from __future__ import annotations

import math

from scipy import stats as _sps

__all__ = ["two_proportion_power", "required_n_per_group", "minimum_detectable_delta"]


def _validate_proportions(p1: float, p2: float) -> None:
    for p in (p1, p2):
        if not 0.0 < p < 1.0:
            raise ValueError(f"proportions must be in (0, 1), got {p}")


def two_proportion_power(
    p1: float, p2: float, n1: int, n2: int, alpha: float = 0.05
) -> float:
    """Power of the two-sided two-proportion z-test at the given sizes.

    Uses the unpooled-variance normal approximation for the alternative and
    pooled variance under the null (matching the test actually run).
    """
    _validate_proportions(p1, p2)
    if n1 < 1 or n2 < 1:
        raise ValueError("group sizes must be >= 1")
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    if p1 == p2:
        return alpha  # power equals the size of the test under H0
    z_alpha = _sps.norm.ppf(1.0 - alpha / 2.0)
    pooled = (p1 * n1 + p2 * n2) / (n1 + n2)
    sd0 = math.sqrt(pooled * (1.0 - pooled) * (1.0 / n1 + 1.0 / n2))
    sd1 = math.sqrt(p1 * (1.0 - p1) / n1 + p2 * (1.0 - p2) / n2)
    delta = abs(p1 - p2)
    # Two-sided: the wrong-direction rejection region contributes ~0.
    z = (delta - z_alpha * sd0) / sd1
    return float(_sps.norm.cdf(z))


def required_n_per_group(
    p1: float, p2: float, power: float = 0.8, alpha: float = 0.05
) -> int:
    """Smallest equal group size giving at least the requested power."""
    _validate_proportions(p1, p2)
    if not 0.0 < power < 1.0:
        raise ValueError("power must be in (0, 1)")
    if p1 == p2:
        raise ValueError("cannot power a null effect")
    lo, hi = 2, 2
    while two_proportion_power(p1, p2, hi, hi, alpha) < power:
        hi *= 2
        if hi > 10_000_000:
            raise RuntimeError("required n exceeds 10M; effect too small")
    while lo < hi:
        mid = (lo + hi) // 2
        if two_proportion_power(p1, p2, mid, mid, alpha) >= power:
            hi = mid
        else:
            lo = mid + 1
    return lo


def minimum_detectable_delta(
    baseline: float, n1: int, n2: int, power: float = 0.8, alpha: float = 0.05
) -> float:
    """Smallest upward change from ``baseline`` detectable at the given sizes.

    Solved by bisection on the alternative proportion.
    """
    if not 0.0 < baseline < 1.0:
        raise ValueError("baseline must be in (0, 1)")
    lo, hi = baseline + 1e-6, 1.0 - 1e-9
    if two_proportion_power(baseline, hi, n1, n2, alpha) < power:
        raise ValueError("no detectable delta below 1.0 at these sizes")
    for _ in range(80):
        mid = (lo + hi) / 2.0
        if two_proportion_power(baseline, mid, n1, n2, alpha) >= power:
            hi = mid
        else:
            lo = mid
    return hi - baseline
