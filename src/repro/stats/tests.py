"""Hypothesis tests used by the study's significance reporting.

All tests return a :class:`TestResult` so the report layer can render a
uniform "statistic / dof / p" column regardless of which test a table used.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
from scipy import stats as _sps

__all__ = [
    "TestResult",
    "chi_square_test",
    "g_test",
    "fisher_exact_2x2",
    "two_proportion_z_test",
    "mann_whitney_u",
    "mcnemar_test",
]


@dataclass(frozen=True, slots=True)
class TestResult:
    """Outcome of a hypothesis test.

    Attributes
    ----------
    name:
        Short identifier of the test ("chi2", "g", "fisher", "2prop-z", "mwu").
    statistic:
        The test statistic (U for Mann-Whitney, odds ratio for Fisher).
    p_value:
        Two-sided p-value.
    dof:
        Degrees of freedom where defined, else 0.
    details:
        Test-specific extras (expected counts, z value, ...).
    """

    name: str
    statistic: float
    p_value: float
    dof: int = 0
    details: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not (0.0 <= self.p_value <= 1.0 or math.isnan(self.p_value)):
            raise ValueError(f"p-value out of range: {self.p_value}")

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the test rejects at level ``alpha``."""
        return bool(self.p_value < alpha)


def _as_table(table) -> np.ndarray:
    arr = np.asarray(table, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"contingency table must be 2-D, got shape {arr.shape}")
    if arr.size == 0 or arr.shape[0] < 2 or arr.shape[1] < 2:
        raise ValueError(f"contingency table must be at least 2x2, got {arr.shape}")
    if (arr < 0).any():
        raise ValueError("contingency table contains negative counts")
    if arr.sum() == 0:
        raise ValueError("contingency table is all zeros")
    return arr


def _expected_counts(obs: np.ndarray) -> np.ndarray:
    total = obs.sum()
    return np.outer(obs.sum(axis=1), obs.sum(axis=0)) / total


def chi_square_test(table) -> TestResult:
    """Pearson chi-square test of independence on an r x c count table.

    Rows/columns whose marginal total is zero are dropped before testing,
    since they carry no information and would make expected counts zero.
    """
    obs = _as_table(table)
    obs = obs[obs.sum(axis=1) > 0][:, obs.sum(axis=0) > 0]
    if obs.shape[0] < 2 or obs.shape[1] < 2:
        # Degenerate after dropping empty margins: no association testable.
        return TestResult(name="chi2", statistic=0.0, p_value=1.0, dof=0)
    exp = _expected_counts(obs)
    stat = float(((obs - exp) ** 2 / exp).sum())
    dof = (obs.shape[0] - 1) * (obs.shape[1] - 1)
    p = float(_sps.chi2.sf(stat, dof))
    return TestResult(
        name="chi2",
        statistic=stat,
        p_value=p,
        dof=dof,
        details={"expected": exp, "min_expected": float(exp.min())},
    )


def g_test(table) -> TestResult:
    """Log-likelihood ratio (G) test of independence.

    Asymptotically equivalent to chi-square; preferred when some expected
    counts are moderate and counts come from a multinomial sampling scheme.
    """
    obs = _as_table(table)
    obs = obs[obs.sum(axis=1) > 0][:, obs.sum(axis=0) > 0]
    if obs.shape[0] < 2 or obs.shape[1] < 2:
        return TestResult(name="g", statistic=0.0, p_value=1.0, dof=0)
    exp = _expected_counts(obs)
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(obs > 0, obs * np.log(obs / exp), 0.0)
    stat = float(2.0 * terms.sum())
    dof = (obs.shape[0] - 1) * (obs.shape[1] - 1)
    p = float(_sps.chi2.sf(stat, dof))
    return TestResult(name="g", statistic=stat, p_value=p, dof=dof)


def fisher_exact_2x2(table) -> TestResult:
    """Fisher's exact test for a 2x2 table (two-sided).

    Used wherever a per-field breakdown leaves expected cell counts under 5,
    where the chi-square approximation is unreliable.
    """
    obs = _as_table(table)
    if obs.shape != (2, 2):
        raise ValueError(f"fisher_exact_2x2 requires a 2x2 table, got {obs.shape}")
    oddsratio, p = _sps.fisher_exact(obs, alternative="two-sided")
    return TestResult(
        name="fisher",
        statistic=float(oddsratio),
        p_value=float(p),
        dof=0,
        details={"odds_ratio": float(oddsratio)},
    )


def two_proportion_z_test(
    successes_a: int, trials_a: int, successes_b: int, trials_b: int
) -> TestResult:
    """Pooled two-sample z-test for equality of proportions.

    This is the workhorse of the 2011-vs-2024 trend tables: "did the share of
    respondents using X change between cohorts?"
    """
    for s, n, label in (
        (successes_a, trials_a, "a"),
        (successes_b, trials_b, "b"),
    ):
        if n <= 0:
            raise ValueError(f"trials_{label} must be positive")
        if not 0 <= s <= n:
            raise ValueError(f"successes_{label} outside [0, trials_{label}]")
    p_a = successes_a / trials_a
    p_b = successes_b / trials_b
    pooled = (successes_a + successes_b) / (trials_a + trials_b)
    var = pooled * (1.0 - pooled) * (1.0 / trials_a + 1.0 / trials_b)
    if var == 0.0:
        # Both proportions identical at 0 or 1: no evidence of difference.
        return TestResult(name="2prop-z", statistic=0.0, p_value=1.0)
    z = (p_a - p_b) / math.sqrt(var)
    p = float(2.0 * _sps.norm.sf(abs(z)))
    return TestResult(
        name="2prop-z",
        statistic=float(z),
        p_value=p,
        details={"p_a": p_a, "p_b": p_b, "pooled": pooled},
    )


def mcnemar_test(n01: int, n10: int, exact: bool | None = None) -> TestResult:
    """McNemar's test for paired yes/no answers (panel respondents).

    Parameters
    ----------
    n01:
        Discordant pairs that flipped no -> yes between waves.
    n10:
        Discordant pairs that flipped yes -> no.
    exact:
        Force the exact binomial version (default: exact when the
        discordant total is under 25, the usual guideline).

    Concordant pairs carry no information about change and are not needed.
    """
    if n01 < 0 or n10 < 0:
        raise ValueError("discordant counts must be non-negative")
    total = n01 + n10
    if total == 0:
        return TestResult(name="mcnemar", statistic=0.0, p_value=1.0)
    if exact is None:
        exact = total < 25
    if exact:
        k = min(n01, n10)
        p = float(min(1.0, 2.0 * _sps.binom.cdf(k, total, 0.5)))
        return TestResult(
            name="mcnemar",
            statistic=float(k),
            p_value=p,
            details={"exact": True, "n01": n01, "n10": n10},
        )
    # Edwards continuity-corrected chi-square version.
    stat = (abs(n01 - n10) - 1.0) ** 2 / total
    p = float(_sps.chi2.sf(stat, 1))
    return TestResult(
        name="mcnemar",
        statistic=float(stat),
        p_value=p,
        dof=1,
        details={"exact": False, "n01": n01, "n10": n10},
    )


def mann_whitney_u(sample_a, sample_b) -> TestResult:
    """Mann-Whitney U test with normal approximation and tie correction.

    Used for ordinal outcomes (Likert expertise ratings, storage-scale
    categories) where a t-test's interval assumptions don't hold.
    """
    a = np.asarray(sample_a, dtype=float)
    b = np.asarray(sample_b, dtype=float)
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    n1, n2 = a.size, b.size
    combined = np.concatenate([a, b])
    ranks = _sps.rankdata(combined)
    r1 = float(ranks[:n1].sum())
    u1 = r1 - n1 * (n1 + 1) / 2.0
    u2 = n1 * n2 - u1
    u = min(u1, u2)
    mean_u = n1 * n2 / 2.0
    # Tie correction for the variance.
    n = n1 + n2
    _, counts = np.unique(combined, return_counts=True)
    tie_term = float((counts**3 - counts).sum())
    var_u = n1 * n2 / 12.0 * ((n + 1) - tie_term / (n * (n - 1)))
    if var_u <= 0:
        # All values identical: the samples cannot differ in rank.
        return TestResult(name="mwu", statistic=u, p_value=1.0)
    z = (u - mean_u + 0.5) / math.sqrt(var_u)  # continuity correction
    p = float(min(1.0, 2.0 * _sps.norm.sf(abs(z))))
    return TestResult(
        name="mwu",
        statistic=float(u1),
        p_value=p,
        details={"u1": float(u1), "u2": float(u2), "z": float(z)},
    )
