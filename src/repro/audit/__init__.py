"""Reproducibility audit: cross-run concordance under perturbation.

The subsystem turns the repo's golden-artifact idea from a test fixture
into a user-facing correctness tool: re-run the study under a matrix of
perturbations (executor mode, crash+resume, injected faults, warm
cache), digest every step's artifact, and verify byte-identity against
the baseline — localizing any divergence to the first affected DAG step
and attributing declared environment drift via cache keys.

Entry points: :func:`run_audit` (the harness), ``repro audit`` (the
CLI), and :func:`repro.report.document.render_report_card` (the
human-readable verdict).
"""

from repro.audit.concordance import (
    ConcordanceReport,
    Perturbation,
    RunRecord,
    StepConcordance,
    TimingDelta,
    build_concordance_report,
)
from repro.audit.digests import (
    DIGEST_LEN,
    NON_ARTIFACT_SUFFIXES,
    artifact_digest,
    blob_digest,
    cache_digests,
    compare_to_goldens,
    golden_ids,
    load_golden,
    render_artifact,
    structural_digest,
    text_digest,
)
from repro.audit.runner import (
    FULL_SCALE,
    QUICK_SCALE,
    default_matrix,
    run_audit,
    select_matrix,
)

__all__ = [
    "ConcordanceReport",
    "Perturbation",
    "RunRecord",
    "StepConcordance",
    "TimingDelta",
    "build_concordance_report",
    "DIGEST_LEN",
    "NON_ARTIFACT_SUFFIXES",
    "artifact_digest",
    "blob_digest",
    "cache_digests",
    "compare_to_goldens",
    "golden_ids",
    "load_golden",
    "render_artifact",
    "structural_digest",
    "text_digest",
    "FULL_SCALE",
    "QUICK_SCALE",
    "default_matrix",
    "run_audit",
    "select_matrix",
]
