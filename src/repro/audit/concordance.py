"""Cross-run concordance: the audit's structured comparison result.

One audit runs the same study pipeline under a matrix of perturbations
(:class:`Perturbation`) and compares every step's digest against the
baseline leg. The comparison is assembled into a
:class:`ConcordanceReport`:

* a per-step digest matrix (:class:`StepConcordance`, topological order);
* divergence *attribution* via cache keys: a declared drift scenario
  changes the perturbed pipeline's step parameters, which changes the
  affected steps' cache keys, which propagates to every downstream key —
  so "key differs from baseline" marks exactly the subtree a declared
  drift is allowed to touch. A digest difference on a key-identical step
  has no declared cause and is flagged **unexplained**;
* first-divergence localization: the earliest diverging step in
  topological order, plus its downstream closure (the "affected
  subtree") so a report card can say *where* reproduction broke, not
  just that it did;
* trace-derived per-step timing deltas (:class:`TimingDelta`) — timing
  is never part of the pass/fail verdict, but a 10x compute delta under
  one perturbation is exactly the kind of silent environment drift the
  audit exists to surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

__all__ = [
    "Perturbation",
    "RunRecord",
    "StepConcordance",
    "TimingDelta",
    "ConcordanceReport",
    "build_concordance_report",
]


@dataclass(frozen=True)
class Perturbation:
    """One leg of the audit matrix.

    Attributes
    ----------
    name:
        Unique leg label (``"baseline"``, ``"thread"``, ``"crash-resume"``
        ...); the baseline leg is whichever the runner lists first.
    executor:
        Pipeline executor mode for the leg.
    warm_cache:
        Run the pipeline once untimed first, so the audited run replays
        everything from a warm cache.
    crash_resume:
        SIGKILL the run at a seeded crash point and resume it from the
        journal; the audited artifacts are the resumed run's.
    fault_steps:
        Steps given injected transient faults (first attempt fails, a
        retry recovers).
    drift:
        Name of the declared drift scenario applied to this leg's study
        (empty = none). Declared drift makes key-changed divergence
        *expected*; it never excuses a key-identical digest change.
    max_workers:
        Worker bound for parallel executors (None = all cores).
    """

    name: str
    executor: str = "sequential"
    warm_cache: bool = False
    crash_resume: bool = False
    fault_steps: tuple[str, ...] = ()
    drift: str = ""
    max_workers: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("perturbation needs a name")
        if self.crash_resume and self.executor != "sequential":
            raise ValueError(
                "crash_resume legs must run sequentially: the crash point "
                "is a (step, event) coordinate and parallel frontiers make "
                "it nondeterministic"
            )


@dataclass(frozen=True)
class RunRecord:
    """What one leg actually did: run metadata for the report card."""

    perturbation: Perturbation
    run_id: str = ""
    wall_seconds: float = 0.0
    outcome_counts: Mapping[str, int] = field(default_factory=dict)
    crash_exitcode: int | None = None
    resumed_steps: int = 0

    @property
    def name(self) -> str:
        return self.perturbation.name


@dataclass(frozen=True)
class StepConcordance:
    """One step's digest row across every leg of the matrix.

    ``digests``/``keys`` map leg name → value (baseline included). A leg
    missing a digest (its step failed or was skipped) is recorded as
    divergent-from-baseline unless the baseline is missing it too.
    """

    step: str
    baseline_key: str
    baseline_digest: str
    keys: Mapping[str, str]
    digests: Mapping[str, str]
    expected: bool = False  # divergence attributable to declared drift

    @property
    def divergent_runs(self) -> tuple[str, ...]:
        """Legs whose digest differs from the baseline's (sorted)."""
        return tuple(
            sorted(
                name
                for name, digest in self.digests.items()
                if digest != self.baseline_digest
            )
        )

    @property
    def concordant(self) -> bool:
        return not self.divergent_runs

    @property
    def unexplained(self) -> bool:
        """Diverged without a declared drift touching this step's key."""
        return bool(self.divergent_runs) and not self.expected


@dataclass(frozen=True)
class TimingDelta:
    """Trace-derived compute seconds for one step across legs."""

    step: str
    baseline_seconds: float
    seconds: Mapping[str, float]

    def ratio(self, run: str) -> float | None:
        value = self.seconds.get(run)
        if value is None or self.baseline_seconds <= 0:
            return None
        return value / self.baseline_seconds


@dataclass(frozen=True)
class ConcordanceReport:
    """The audit's full structured result.

    ``steps`` is in pipeline (topological) order, so "first divergent
    step" is well-defined and localization is a scan, not a search.
    """

    runs: tuple[RunRecord, ...]
    steps: tuple[StepConcordance, ...]
    drift: str = ""
    drift_description: str = ""
    drift_origin: tuple[str, ...] = ()
    timings: tuple[TimingDelta, ...] = ()
    #: step -> transitive downstream closure (the step's affected subtree),
    #: from the pipeline definition.
    subtrees: Mapping[str, tuple[str, ...]] = field(default_factory=dict)

    @property
    def baseline(self) -> RunRecord:
        return self.runs[0]

    @property
    def divergent_steps(self) -> tuple[str, ...]:
        """Every step that differs from baseline anywhere (topo order)."""
        return tuple(s.step for s in self.steps if not s.concordant)

    @property
    def expected_steps(self) -> tuple[str, ...]:
        """Divergent steps attributed to the declared drift (topo order)."""
        return tuple(
            s.step for s in self.steps if not s.concordant and s.expected
        )

    @property
    def unexplained_steps(self) -> tuple[str, ...]:
        """Divergent steps with no declared cause (topo order)."""
        return tuple(s.step for s in self.steps if s.unexplained)

    @property
    def divergent(self) -> bool:
        return bool(self.divergent_steps)

    @property
    def concordant(self) -> bool:
        return not self.divergent

    @property
    def first_divergence(self) -> str | None:
        """Earliest diverging step in topological order, or None."""
        divergent = self.divergent_steps
        return divergent[0] if divergent else None

    def affected_subtree(self) -> tuple[str, ...]:
        """The first divergent step plus its downstream closure."""
        first = self.first_divergence
        if first is None:
            return ()
        return (first, *self.subtrees.get(first, ()))

    def localized(self) -> bool:
        """True when every divergence sits inside the first one's subtree.

        Localized divergence is one root cause propagating through the
        DAG; an unlocalized pattern (divergence outside the subtree)
        means at least two independent causes.
        """
        subtree = set(self.affected_subtree())
        return all(step in subtree for step in self.divergent_steps)

    @property
    def verdict(self) -> str:
        """``"concordant"``, ``"drift"`` (all attributed), or ``"divergent"``."""
        if self.concordant:
            return "concordant"
        return "drift" if not self.unexplained_steps else "divergent"


def build_concordance_report(
    *,
    runs: list[RunRecord],
    step_order: list[str],
    keys_by_run: Mapping[str, Mapping[str, str]],
    digests_by_run: Mapping[str, Mapping[str, str]],
    dependents: Mapping[str, tuple[str, ...]],
    drift: str = "",
    drift_description: str = "",
    drift_origin: tuple[str, ...] = (),
    compute_by_run: Mapping[str, Mapping[str, float]] | None = None,
) -> ConcordanceReport:
    """Assemble the report from per-leg key/digest/timing maps.

    The first entry of ``runs`` is the baseline. ``dependents`` maps each
    step to its *direct* dependents; the transitive closure is computed
    here. Attribution rule: a step is ``expected``-divergent when a drift
    scenario was declared **and** some leg's cache key for the step
    differs from the baseline key — parameters (or an upstream key)
    changed, which is what a declared environment change does. A
    key-identical digest mismatch is unexplained by construction.
    """
    if not runs:
        raise ValueError("audit produced no runs")
    baseline = runs[0].name

    subtrees: dict[str, tuple[str, ...]] = {}
    for step in reversed(step_order):
        closure: set[str] = set()
        for child in dependents.get(step, ()):
            closure.add(child)
            closure.update(subtrees.get(child, ()))
        subtrees[step] = tuple(s for s in step_order if s in closure)

    base_keys = keys_by_run[baseline]
    base_digests = digests_by_run[baseline]
    steps: list[StepConcordance] = []
    for step in step_order:
        keys = {
            record.name: keys_by_run[record.name].get(step, "") for record in runs
        }
        digests = {
            record.name: digests_by_run[record.name].get(step, "")
            for record in runs
        }
        key_changed = any(k != base_keys.get(step, "") for k in keys.values())
        steps.append(
            StepConcordance(
                step=step,
                baseline_key=base_keys.get(step, ""),
                baseline_digest=base_digests.get(step, ""),
                keys=keys,
                digests=digests,
                expected=bool(drift) and key_changed,
            )
        )

    timings: list[TimingDelta] = []
    if compute_by_run:
        base_compute = compute_by_run.get(baseline, {})
        for step in step_order:
            seconds = {
                name: per_run[step]
                for name, per_run in compute_by_run.items()
                if step in per_run
            }
            if seconds:
                timings.append(
                    TimingDelta(
                        step=step,
                        baseline_seconds=base_compute.get(step, 0.0),
                        seconds=seconds,
                    )
                )

    return ConcordanceReport(
        runs=tuple(runs),
        steps=tuple(steps),
        drift=drift,
        drift_description=drift_description,
        drift_origin=drift_origin,
        timings=tuple(timings),
        subtrees=subtrees,
    )
