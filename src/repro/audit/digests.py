"""The audit's single definition of "byte-identical".

Both the golden-artifact regression suite and the ``repro audit`` CLI
compare artifacts through this module, so the test fixture and the
user-facing tool can never disagree about what counts as a reproduction.

Two digest primitives cover the two kinds of pipeline output:

* :func:`artifact_digest` — experiments (tables/figures) digest by their
  *rendered text*, exactly the bytes committed under ``artifacts/``. This
  is the user-facing contract: two runs agree iff their reports agree.
* :func:`structural_digest` — study-stage values (response sets, job
  tables, the assembled study) digest by a *memo-free* pickle stream.
  Raw cache blobs are NOT comparable across executor modes: pickle's
  memo is identity-based, and a value that round-trips through a process
  pool loses string-interning sharing, shifting ``BINGET`` references
  into fresh ``SHORT_BINUNICODE`` emits without changing the value.
  Disabling the memo (``Pickler.fast``) makes the stream a pure function
  of structure and content, so sequential, thread, and process runs of
  the same step digest identically.

:func:`cache_digests` walks a disk cache directory and digests every
*artifact* entry, skipping the ``<key>.lock`` advisory files left by
:class:`repro.io.locks.FileLock` and any in-flight ``*.tmp`` publishes —
a concurrent audit must never hash lock metadata as an artifact.
"""

from __future__ import annotations

import hashlib
import pickle
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "render_artifact",
    "artifact_digest",
    "text_digest",
    "structural_digest",
    "blob_digest",
    "cache_digests",
    "golden_ids",
    "load_golden",
    "compare_to_goldens",
]

#: Hex digits kept from each sha256 — plenty to make collisions a
#: non-concern at pipeline scale while keeping report cards readable.
DIGEST_LEN = 16

#: Cache-directory suffixes that are not artifacts and must never be
#: digested: advisory entry locks and in-flight atomic-publish temp files.
NON_ARTIFACT_SUFFIXES = (".lock", ".tmp")


def render_artifact(artifact: Any) -> str:
    """The canonical byte form of one experiment artifact.

    Exactly what ``examples/full_reproduction.py`` writes to
    ``artifacts/<id>.txt``: the ASCII rendering plus a trailing newline.
    Every byte-identity comparison — golden suite, audit concordance —
    goes through this one function.
    """
    return artifact.render_ascii() + "\n"


def text_digest(text: str) -> str:
    """Truncated sha256 of a text's UTF-8 bytes."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:DIGEST_LEN]


def artifact_digest(artifact: Any) -> str:
    """Digest of an experiment artifact's rendered bytes."""
    return text_digest(render_artifact(artifact))


class _HashSink:
    """File-like object that hashes writes instead of storing them."""

    def __init__(self) -> None:
        self.h = hashlib.sha256()

    def write(self, data) -> int:
        # The C pickler hands large contiguous payloads (e.g. numpy
        # arrays under protocol 5) to ``write`` as PickleBuffer or
        # memoryview chunks, not bytes; hashlib takes any buffer, but
        # ``len`` does not — measure through a memoryview.
        self.h.update(data)
        return memoryview(data).nbytes


def structural_digest(value: Any) -> str:
    """Sharing-independent digest of an arbitrary picklable value.

    Streams a memo-free pickle (``Pickler.fast``) into the hash, so the
    digest depends only on the value's structure and content — never on
    which sub-objects happen to share identity, which is exactly what a
    trip through a process pool perturbs. Not safe for self-referential
    graphs (memo-free pickling would recurse forever); pipeline artifacts
    are trees.
    """
    sink = _HashSink()
    pickler = pickle.Pickler(sink, protocol=pickle.HIGHEST_PROTOCOL)
    pickler.fast = True
    pickler.dump(value)
    return sink.h.hexdigest()[:DIGEST_LEN]


def blob_digest(blob: bytes) -> str:
    """Structural digest of a stored cache blob (decode, then digest).

    Understands both the protocol-5 out-of-band artifact container the
    cache writes and legacy plain-pickle blobs. Raises whatever the
    decoder raises on a corrupt blob — the caller decides whether a
    damaged entry is a finding or an error.
    """
    # The cache's container codec is the single source of truth for the
    # stored format; the audit must observe exactly what a reader would.
    from repro.core.pipeline import _decode_artifact

    return structural_digest(_decode_artifact(blob))


def cache_digests(root: str | Path) -> dict[str, str]:
    """Structural digest per cache key for a disk cache directory.

    Only ``*.pkl`` artifact entries are read; ``<key>.lock`` files from
    cross-process entry locking and ``*.tmp`` atomic-publish leftovers
    are skipped, as is anything that vanishes mid-walk (a concurrent
    evict). Corrupt entries are skipped too — a digest walk is a
    read-only observer and must not crash on damage the cache itself
    would heal by recomputing.
    """
    digests: dict[str, str] = {}
    root = Path(root)
    if not root.is_dir():
        return digests
    for path in sorted(root.iterdir()):
        if path.suffix != ".pkl" or path.name.endswith(NON_ARTIFACT_SUFFIXES):
            continue
        try:
            blob = path.read_bytes()
            digests[path.stem] = blob_digest(blob)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ValueError):
            continue
    return digests


# -- golden artifacts ---------------------------------------------------------


def golden_ids(artifact_dir: str | Path) -> list[str]:
    """Experiment ids with a committed golden rendering, sorted."""
    return sorted(p.stem for p in Path(artifact_dir).glob("*.txt"))


def load_golden(artifact_dir: str | Path, experiment_id: str) -> str:
    """The committed golden text for one experiment."""
    return (Path(artifact_dir) / f"{experiment_id}.txt").read_text(encoding="utf-8")


def compare_to_goldens(
    artifacts: Mapping[str, Any], artifact_dir: str | Path
) -> dict[str, bool]:
    """Byte-compare regenerated artifacts against the committed goldens.

    Returns ``{experiment_id: matched}`` for every golden id present in
    ``artifacts``; ids without a regenerated artifact are omitted (the
    golden suite asserts registry/golden set equality separately).
    """
    results: dict[str, bool] = {}
    for eid in golden_ids(artifact_dir):
        artifact = artifacts.get(eid)
        if artifact is None:
            continue
        results[eid] = render_artifact(artifact) == load_golden(artifact_dir, eid)
    return results
