"""The audit harness: run one study under a perturbation matrix.

:func:`run_audit` re-runs the full report pipeline (study stages +
experiments) once per :class:`~repro.audit.concordance.Perturbation` leg,
each leg in its own cache/journal sandbox, digests every step's artifact
(:mod:`repro.audit.digests`), and assembles the per-step digest matrix
into a :class:`~repro.audit.concordance.ConcordanceReport`.

The default matrix covers the failure modes the repo's chaos suites test
individually — executor mode (sequential/thread/process), SIGKILL +
journal resume, injected transient faults with retries, and a warm-cache
replay — because each of those layers carries a byte-identity promise,
and the audit is the one place that checks the promises *jointly* against
the same baseline.

A declared drift scenario (``drift=...``) perturbs every non-baseline
leg's cohort profiles; the baseline always runs undrifted, so the audit
measures the drift's artifact footprint and attributes it via the cache
keys (see :mod:`repro.audit.concordance`).
"""

from __future__ import annotations

import tempfile
from dataclasses import replace
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.audit.concordance import (
    ConcordanceReport,
    Perturbation,
    RunRecord,
    build_concordance_report,
)
from repro.audit.digests import artifact_digest, blob_digest, structural_digest
from repro.core.faults import CrashPoint, FaultPlan, resume_after_crash, run_until_crash
from repro.core.journal import RunJournal
from repro.core.pipeline import ArtifactCache, Pipeline, RetryPolicy
from repro.core.trace import Tracer

__all__ = ["QUICK_SCALE", "FULL_SCALE", "default_matrix", "select_matrix", "run_audit"]

#: Study scale for ``repro audit --quick`` and CI smoke runs (mirrors
#: ``repro trace``'s quick profile); small enough that a six-leg audit
#: finishes in tens of seconds.
QUICK_SCALE: dict[str, Any] = {
    "seed": 2024,
    "n_baseline": 40,
    "n_current": 60,
    "months": 3,
    "jobs_per_day": 60.0,
}

#: The shipped study's default scale (``study_pipeline`` defaults).
FULL_SCALE: dict[str, Any] = {
    "seed": 2024,
    "n_baseline": 120,
    "n_current": 200,
    "months": 6,
    "jobs_per_day": 200.0,
}

#: Crash coordinate for the crash-resume leg: kill before the study
#: assembly starts, so the resumed run replays the three generation
#: stages from the journal+cache and computes study + experiments fresh.
_CRASH_POINT = CrashPoint(step="study", event="step_start", mode="before")

#: Retry policy for the injected-faults leg (fast backoff — the faults
#: are deterministic, waiting teaches us nothing).
_FAULT_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.01, jitter=0.0)


def default_matrix() -> tuple[Perturbation, ...]:
    """The standard six-leg audit matrix. Baseline first, by convention."""
    return (
        Perturbation("baseline", executor="sequential"),
        Perturbation("thread", executor="thread", max_workers=4),
        Perturbation("process", executor="process", max_workers=2),
        Perturbation("crash-resume", executor="sequential", crash_resume=True),
        Perturbation(
            "faults", executor="sequential", fault_steps=("survey", "schedule")
        ),
        Perturbation("warm-cache", executor="sequential", warm_cache=True),
    )


def select_matrix(names: Sequence[str]) -> tuple[Perturbation, ...]:
    """Subset of :func:`default_matrix` by leg name, baseline always included.

    A digest matrix without its baseline row has nothing to compare
    against, so ``"baseline"`` is prepended when omitted.
    """
    catalog = {leg.name: leg for leg in default_matrix()}
    unknown = [n for n in names if n not in catalog]
    if unknown:
        raise ValueError(
            f"unknown audit legs {unknown}; known: {sorted(catalog)}"
        )
    selected = list(dict.fromkeys(names))  # dedupe, keep order
    if "baseline" not in selected:
        selected.insert(0, "baseline")
    else:
        selected.insert(0, selected.pop(selected.index("baseline")))
    return tuple(catalog[n] for n in selected)


def _build_pipeline(
    cache: ArtifactCache,
    leg: Perturbation,
    experiment_ids: Sequence[str] | None,
    study_kwargs: Mapping[str, Any],
) -> Pipeline:
    from repro.report.experiments import report_pipeline

    kwargs = dict(study_kwargs)
    if leg.drift:
        kwargs["drift"] = leg.drift
    retry = _FAULT_RETRY if leg.fault_steps else None
    return report_pipeline(
        cache, experiment_ids=experiment_ids, retry=retry, **kwargs
    )


def _leg_digests(pipeline: Pipeline, results: Mapping[str, Any]) -> dict[str, str]:
    """Digest every step the leg produced.

    Experiment steps digest by rendered text (the user-facing byte
    contract); study stages digest the run's value structurally. The
    value *is* the persisted artifact — cached and replayed steps load
    it from the cache blob, and ``structural_digest(value)`` equals
    ``blob_digest(blob)`` by construction (the memo-free stream erases
    the only difference a pickle round-trip can introduce) — so hashing
    the in-memory value observes the same bytes a separate process would
    unpickle without paying a disk read + unpickle + re-pickle per step.
    The stored blob is the fallback when a step has no value in
    ``results`` (e.g. it completed before a crash leg's resume window).
    """
    keys = pipeline.keys()
    digests: dict[str, str] = {}
    for step in pipeline.steps:
        name = step.name
        value = results.get(name)
        if name.startswith("exp:"):
            if value is not None:
                digests[name] = artifact_digest(value)
            continue
        if value is not None:
            digests[name] = structural_digest(value)
            continue
        blob = pipeline.cache.entry_bytes(keys[name])
        if blob is not None:
            try:
                digests[name] = blob_digest(blob)
            except Exception:  # corrupt entry: nothing to compare
                pass
    return digests


def _leg_compute(tracer: Tracer | None) -> dict[str, float]:
    """Per-step compute seconds from the leg's trace spans."""
    seconds: dict[str, float] = {}
    if tracer is None:
        return seconds
    for span in tracer.spans:
        if span.cat != "step":
            continue
        step = str(span.args.get("step", span.name.removeprefix("step:")))
        compute = span.args.get("compute")
        if compute is None:
            end = span.end if span.end is not None else span.start
            compute = max(end - span.start, 0.0)
        seconds[step] = float(compute)
    return seconds


def _run_leg(
    leg: Perturbation,
    leg_dir: Path,
    experiment_ids: Sequence[str] | None,
    study_kwargs: Mapping[str, Any],
    *,
    reuse: bool,
    trace_dir: Path | None,
    normalize_traces: bool,
) -> tuple[RunRecord, dict[str, str], dict[str, str], dict[str, float]]:
    cache_dir = leg_dir / "cache"
    journal_dir = leg_dir / "journals"
    journal_dir.mkdir(parents=True, exist_ok=True)
    cache = ArtifactCache(cache_dir)
    if not reuse:
        cache.clear()

    run_kwargs: dict[str, Any] = {"executor": leg.executor}
    if leg.max_workers is not None:
        run_kwargs["max_workers"] = leg.max_workers

    crash_exitcode: int | None = None
    resumed_steps = 0
    tracer = Tracer()

    if leg.crash_resume:
        # Leg half 1: SIGKILL a child run at the crash coordinate...
        def factory() -> Pipeline:
            return _build_pipeline(
                ArtifactCache(cache_dir), leg, experiment_ids, study_kwargs
            )

        run_id, crash_exitcode = run_until_crash(
            factory, journal_dir, _CRASH_POINT, run_kwargs=dict(run_kwargs)
        )
        # ...half 2: resume it in-process from the journal. The audited
        # artifacts are the *resumed* run's — that is the whole point.
        pipeline = _build_pipeline(cache, leg, experiment_ids, study_kwargs)
        results = resume_after_crash(
            pipeline, journal_dir, run_id, run_kwargs={**run_kwargs, "trace": tracer}
        )
        report = pipeline.last_report
        if report is not None:
            resumed_steps = sum(
                1 for o in report.outcomes if o.status == "replayed"
            )
    else:
        pipeline = _build_pipeline(cache, leg, experiment_ids, study_kwargs)
        if leg.warm_cache:
            pipeline.run(**run_kwargs)  # warm-up pass, untimed, untraced
        fault_plan = (
            FaultPlan.transient_errors(list(leg.fault_steps))
            if leg.fault_steps
            else None
        )
        journal = RunJournal.open(journal_dir)
        run_id = journal.run_id
        try:
            results = pipeline.run(
                journal=journal, fault_plan=fault_plan, trace=tracer, **run_kwargs
            )
        finally:
            journal.close()

    if trace_dir is not None:
        trace_dir.mkdir(parents=True, exist_ok=True)
        tracer.write_perfetto(
            trace_dir / f"{leg.name}.json", normalize=normalize_traces
        )

    metrics = pipeline.last_metrics
    report = pipeline.last_report
    record = RunRecord(
        perturbation=leg,
        run_id=run_id,
        wall_seconds=metrics.wall_seconds if metrics is not None else 0.0,
        outcome_counts=report.counts() if report is not None else {},
        crash_exitcode=crash_exitcode,
        resumed_steps=resumed_steps,
    )
    return record, pipeline.keys(), _leg_digests(pipeline, results), _leg_compute(tracer)


def run_audit(
    *,
    root: str | Path | None = None,
    matrix: Sequence[Perturbation] | None = None,
    experiment_ids: Sequence[str] | None = None,
    drift: str = "",
    study_kwargs: Mapping[str, Any] | None = None,
    reuse: bool = False,
    trace_dir: str | Path | None = None,
    normalize_traces: bool = False,
) -> ConcordanceReport:
    """Run the full audit matrix and build the concordance report.

    Parameters
    ----------
    root:
        Directory that holds one ``<leg>/{cache,journals}`` sandbox per
        matrix leg. None uses a temporary directory (discarded after the
        audit); pass a real path (``repro audit --durable``) to keep the
        per-leg artifacts for inspection, and ``reuse=True``
        (``--resume``) to replay a prior audit's caches instead of
        recomputing.
    matrix:
        Perturbation legs, baseline first. Defaults to
        :func:`default_matrix`.
    drift:
        Declared :data:`~repro.synth.scenario.DRIFT_SCENARIOS` name,
        applied to every non-baseline leg that does not already declare
        its own drift. The baseline leg always runs undrifted.
    study_kwargs:
        Study-scale parameters (:data:`QUICK_SCALE` / :data:`FULL_SCALE`
        or any ``study_pipeline`` kwargs). Defaults to the shipped
        study's scale.
    trace_dir:
        When set, each leg's Perfetto trace is written there as
        ``<leg>.json`` (``normalize_traces`` mirrors the PR-5
        ``normalize=True`` determinism contract).
    """
    legs = list(matrix if matrix is not None else default_matrix())
    if not legs:
        raise ValueError("audit matrix is empty")
    names = [leg.name for leg in legs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate leg names in matrix: {names}")
    if drift:
        from repro.synth.scenario import get_drift_scenario

        scenario = get_drift_scenario(drift)  # validate before spending compute
        legs = [legs[0]] + [
            leg if leg.drift else replace(leg, drift=drift) for leg in legs[1:]
        ]
    else:
        scenario = None
    kwargs = dict(FULL_SCALE if study_kwargs is None else study_kwargs)

    tmp: tempfile.TemporaryDirectory | None = None
    if root is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-audit-")
        root_dir = Path(tmp.name)
    else:
        root_dir = Path(root)
    trace_root = Path(trace_dir) if trace_dir is not None else None

    try:
        runs: list[RunRecord] = []
        keys_by_run: dict[str, dict[str, str]] = {}
        digests_by_run: dict[str, dict[str, str]] = {}
        compute_by_run: dict[str, dict[str, float]] = {}
        step_order: list[str] = []
        dependents: dict[str, tuple[str, ...]] = {}
        for leg in legs:
            record, keys, digests, compute = _run_leg(
                leg,
                root_dir / leg.name,
                experiment_ids,
                kwargs,
                reuse=reuse,
                trace_dir=trace_root,
                normalize_traces=normalize_traces,
            )
            runs.append(record)
            keys_by_run[leg.name] = keys
            digests_by_run[leg.name] = digests
            compute_by_run[leg.name] = compute
            if leg.name == legs[0].name:
                # Baseline defines the DAG shape every leg shares (drift
                # changes keys, never the step graph).
                pipeline = _build_pipeline(
                    ArtifactCache(), leg, experiment_ids, kwargs
                )
                step_order = [s.name for s in pipeline.steps]
                dependents = {
                    s.name: tuple(
                        d.name for d in pipeline.steps if s.name in d.depends_on
                    )
                    for s in pipeline.steps
                }
    finally:
        if tmp is not None:
            tmp.cleanup()

    return build_concordance_report(
        runs=runs,
        step_order=step_order,
        keys_by_run=keys_by_run,
        digests_by_run=digests_by_run,
        dependents=dependents,
        drift=drift,
        drift_description=scenario.description if scenario is not None else "",
        drift_origin=scenario.origin if scenario is not None else (),
        compute_by_run=compute_by_run,
    )
