"""The incremental serve pipeline: WAL feeds → study → experiments.

Mirrors :func:`repro.report.experiments.report_pipeline`, but the study's
inputs come from the service's ingest WAL instead of the synthetic
generators. The dirtiness mechanism is entirely in the params: each feed
step carries its WAL *chunk token* (``"<rows>:<digest>"``, see
:meth:`repro.serve.wal.IngestWAL.chunk`), so the content-addressed cache
keys fold the ingested bytes in. Appending response rows changes only the
``responses`` chunk → new keys for ``responses`` → ``study`` → every
``exp:*``; the ``telemetry`` step's key is untouched and replays from
cache. That is the whole incremental-recompute story — no new cache
machinery, just input hashing where params already live.

Step functions materialize their rows through
:func:`repro.serve.wal.snapshot_rows`, which re-reads the log and
verifies the digest — a step can never observe rows appended after its
key was computed, so artifacts are pure functions of (chunk, params) and
restart-after-crash converges to the byte-identical clean rebuild.

Poison-row tolerance: both feed steps parse with ``on_bad_rows="skip"``
(the PR-4 tolerant readers), so a malformed ingested row costs a
``SkippedRow`` instant on the trace bus, never a failed subtree. Rows
that are *systematically* fatal further down (a poisoned parse crash) are
the circuit breaker's job (see ``repro.serve.service``).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.cluster.partitions import DEFAULT_CLUSTER
from repro.cluster.sacct import _HEADER, parse_sacct
from repro.core.instrument import build_instrument
from repro.core.pipeline import ArtifactCache, Pipeline, PipelineStep, RetryPolicy, fingerprint_callable
from repro.core.study import Study
from repro.io.jsonl import read_responses_jsonl
from repro.report.experiments import EXPERIMENTS, _experiment_step
from repro.serve.wal import snapshot_rows

__all__ = ["serve_pipeline", "INGEST_STEPS"]

#: The two feed steps, by WAL kind. Service-side quarantine logic maps
#: step names back to feeds through this table.
INGEST_STEPS: Mapping[str, str] = {"responses": "responses", "telemetry": "sacct"}


def _responses_step(context, wal, chunk):
    from repro.survey.responses import ResponseSet

    rows = snapshot_rows(wal, "responses", chunk)
    questionnaire = build_instrument()
    if not rows:
        return ResponseSet(questionnaire, [])
    text = "\n".join(rows) + "\n"
    return read_responses_jsonl(
        questionnaire, text, on_bad_rows="skip", skipped=[]
    )


def _telemetry_step(context, wal, chunk):
    rows = snapshot_rows(wal, "sacct", chunk)
    text = _HEADER + "\n" + "\n".join(rows) + ("\n" if rows else "")
    return parse_sacct(text, on_bad_rows="skip", skipped=[])


def _serve_study_step(context, window_seconds, baseline_cohort, current_cohort):
    return Study(
        responses=context["responses"],
        telemetry=context["telemetry"],
        cluster=DEFAULT_CLUSTER,
        window_seconds=window_seconds,
        baseline_cohort=baseline_cohort,
        current_cohort=current_cohort,
    )


def serve_pipeline(
    wal_dir,
    chunks: Mapping[str, str],
    *,
    window_seconds: float,
    experiment_ids: Sequence[str] | None = None,
    exclude: Sequence[str] = (),
    baseline_cohort: str = "2011",
    current_cohort: str = "2024",
    cache: ArtifactCache | None = None,
    retry: RetryPolicy | None = None,
    timeout: float | None = None,
) -> Pipeline:
    """Build the cached ingest→study→experiments DAG for one refresh.

    ``chunks`` maps WAL kind (``"responses"``/``"sacct"``) to the chunk
    token each feed step should pin — normally the WAL's current frontier,
    but the service pins a *quarantined* feed to its last-good token so
    the rest of the study keeps refreshing on stale-but-sane input.
    ``exclude`` drops quarantined ``exp:<id>`` steps from the DAG
    entirely (their subtrees are circuit-broken). ``retry``/``timeout``
    stay out of cache keys, as everywhere else.
    """
    wal = str(wal_dir)
    ids = sorted(EXPERIMENTS) if experiment_ids is None else list(experiment_ids)
    unknown = [eid for eid in ids if eid not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments {unknown}; known: {sorted(EXPERIMENTS)}")
    excluded = set(exclude)
    steps = [
        PipelineStep(
            name="responses",
            fn=_responses_step,
            params={"wal": wal, "chunk": str(chunks["responses"])},
        ),
        PipelineStep(
            name="telemetry",
            fn=_telemetry_step,
            params={"wal": wal, "chunk": str(chunks["sacct"])},
        ),
        PipelineStep(
            name="study",
            fn=_serve_study_step,
            params={
                "window_seconds": float(window_seconds),
                "baseline_cohort": baseline_cohort,
                "current_cohort": current_cohort,
            },
            depends_on=("responses", "telemetry"),
        ),
    ]
    for eid in ids:
        name = f"exp:{eid}"
        if name in excluded:
            continue
        steps.append(
            PipelineStep(
                name=name,
                fn=_experiment_step,
                params={
                    "experiment_id": eid,
                    "fn_fingerprint": fingerprint_callable(EXPERIMENTS[eid].fn),
                },
                depends_on=("study",),
            )
        )
    return Pipeline(steps, cache, default_retry=retry, default_timeout=timeout)
