"""Per-subtree circuit breaker for the serve refresh loop.

A resident service cannot treat a failing step the way a batch run does
(fail the run, page a human): the same poisoned input would fail every
refresh forever and starve the healthy rest of the study. The breaker
reuses the fleet scheduler's poison-quarantine ladder: ``threshold``
consecutive failures open the breaker for a *cooldown* measured in
refresh cycles; once the cooldown elapses the step runs one trial —
success closes the breaker, another failure re-opens it with the cooldown
doubled (capped), so a permanently-poisoned subtree backs off
geometrically instead of burning every cycle.

What quarantine *means* depends on the step (decided by the service, not
here): an open ``exp:<id>`` breaker drops that experiment from the DAG
(its last-good artifact serves STALE); an open feed breaker
(``responses``/``telemetry``) pins that feed's chunk to the last-good
token so the rest of the study keeps refreshing on its other, healthy
inputs. Queries are pure — a status probe never advances a trial — and
state round-trips through :meth:`to_dict`/:meth:`load` so quarantine
survives a service restart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

__all__ = ["BreakerState", "CircuitBreaker"]


@dataclass
class BreakerState:
    """One step's position on the quarantine ladder."""

    failures: int = 0          # consecutive failures since the last success
    opened_at: int = -1        # refresh cycle the breaker last opened on (-1: closed)
    cooldown: int = 0          # cycles to hold open before the trial
    trips: int = 0             # times this breaker has opened (drives backoff)
    last_error: str = ""

    @property
    def open(self) -> bool:
        return self.opened_at >= 0

    def phase(self, cycle: int) -> str:
        """Display label: ``closed`` / ``open`` / ``trial``."""
        if not self.open:
            return "closed"
        return "open" if cycle - self.opened_at < self.cooldown else "trial"

    def to_dict(self) -> dict[str, Any]:
        return {
            "failures": self.failures,
            "opened_at": self.opened_at,
            "cooldown": self.cooldown,
            "trips": self.trips,
            "last_error": self.last_error,
        }


class CircuitBreaker:
    """Tracks failure ladders for every step the refresh loop reports on."""

    def __init__(
        self,
        threshold: int = 3,
        cooldown: int = 2,
        max_cooldown: int = 32,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown < 1:
            raise ValueError(f"cooldown must be >= 1, got {cooldown}")
        self.threshold = threshold
        self.cooldown = cooldown
        self.max_cooldown = max_cooldown
        self._steps: dict[str, BreakerState] = {}

    # -- recording refresh outcomes -------------------------------------------

    def record_success(self, step: str) -> None:
        """A step computed (or replayed) cleanly: reset its ladder."""
        state = self._steps.get(step)
        if state is None:
            return
        state.failures = 0
        state.opened_at = -1
        state.last_error = ""

    def record_failure(self, step: str, cycle: int, error: str = "") -> bool:
        """A step failed this cycle; returns True when the breaker opened.

        While the breaker is open the step never runs, so a failure
        arriving with ``failures`` already at the threshold *is* the
        post-cooldown trial failing — it re-opens with the cooldown
        doubled (the ladder). A closed breaker opens only after
        ``threshold`` consecutive failures.
        """
        state = self._steps.setdefault(step, BreakerState())
        state.failures += 1
        state.last_error = error
        if state.failures >= self.threshold:
            state.trips += 1
            state.opened_at = cycle
            state.cooldown = min(
                self.cooldown * (2 ** (state.trips - 1)), self.max_cooldown
            )
            return True
        return False

    # -- quarantine queries (pure) --------------------------------------------

    def quarantined(self, step: str, cycle: int) -> bool:
        """Whether ``step`` must be skipped at ``cycle``.

        False once the cooldown has elapsed — that cycle is the step's
        trial run (its outcome either closes or re-opens the breaker).
        """
        state = self._steps.get(step)
        if state is None or not state.open:
            return False
        return cycle - state.opened_at < state.cooldown

    def open_steps(self, cycle: int) -> list[str]:
        """Every step quarantined at ``cycle`` (stable order)."""
        return [s for s in sorted(self._steps) if self.quarantined(s, cycle)]

    def items(self) -> Iterator[tuple[str, BreakerState]]:
        return iter(sorted(self._steps.items()))

    # -- persistence -----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {step: state.to_dict() for step, state in self._steps.items()}

    def load(self, data: dict[str, Any]) -> None:
        """Restore ladder state saved by :meth:`to_dict` (restart path)."""
        for step, raw in (data or {}).items():
            if not isinstance(raw, dict):
                continue
            self._steps[str(step)] = BreakerState(
                failures=int(raw.get("failures", 0)),
                opened_at=int(raw.get("opened_at", -1)),
                cooldown=int(raw.get("cooldown", 0)),
                trips=int(raw.get("trips", 0)),
                last_error=str(raw.get("last_error", "")),
            )
