"""``repro.serve``: study-as-a-service — always-on incremental recompute.

The batch pipeline answers "rebuild everything from the frozen inputs";
this package answers "keep the tables warm while rows keep arriving".
Four layers, each usable on its own:

* :mod:`repro.serve.wal` — the durable ingest log (crash-safe append,
  torn-tail healing, batch dedupe, chunk tokens for cache keys);
* :mod:`repro.serve.pipeline` — the WAL-fed study DAG whose cache keys
  fold the ingested bytes, so appended rows dirty only their subtree;
* :mod:`repro.serve.admission` / :mod:`repro.serve.breaker` — bounded
  queueing + deadline shedding, and the poison-quarantine ladder;
* :mod:`repro.serve.service` — :class:`StudyService`, which wires the
  above into ingest/refresh/request/status/drain with read-only
  degradation and SIGKILL-anywhere crash recovery.

See ``docs/API.md`` ("Serving & incremental ingestion") for the WAL
format, the staleness contract, and the failure ladder.
"""

from repro.serve.admission import AdmissionController, QueueFull, ServeResult
from repro.serve.breaker import BreakerState, CircuitBreaker
from repro.serve.pipeline import INGEST_STEPS, serve_pipeline
from repro.serve.service import (
    RefreshResult,
    ServeConfig,
    ServiceDraining,
    ServiceReadOnly,
    StudyService,
    read_status,
)
from repro.serve.wal import (
    IngestReceipt,
    IngestWAL,
    WALError,
    WALUnavailable,
    parse_chunk,
    snapshot_rows,
)

__all__ = [
    "AdmissionController",
    "QueueFull",
    "ServeResult",
    "BreakerState",
    "CircuitBreaker",
    "INGEST_STEPS",
    "serve_pipeline",
    "RefreshResult",
    "ServeConfig",
    "ServiceDraining",
    "ServiceReadOnly",
    "StudyService",
    "read_status",
    "IngestReceipt",
    "IngestWAL",
    "WALError",
    "WALUnavailable",
    "parse_chunk",
    "snapshot_rows",
]
