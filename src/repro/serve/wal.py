"""Durable write-ahead ingest log for ``repro serve``.

Appended survey responses and sacct rows are the service's only source of
truth: a row is *accepted* once its WAL record is written and the append
batch fsync'd, and everything downstream (the serve pipeline, its cached
artifacts) is a pure function of WAL content. Restart-after-SIGKILL
therefore converges by construction — replay the log, recompute whatever
the cache does not already hold.

The file layout reuses the ``repro.core.journal`` patterns: append-only
segments of newline-delimited JSON (``seg-<n>.wal``), single-writer, torn
tails healed on open, group-commit fsync (one ``fsync`` per *batch* of
appended rows, not per row), and size-threshold rotation at record
boundaries. One record per row::

    {"seq": 17, "kind": "responses", "row": "<raw line>"}
    {"seq": 18, "kind": "sacct", "row": "...", "batch": "b7", "off": 3}

``batch``/``off`` implement exactly-once ingestion under at-least-once
delivery: a client that re-sends a batch after a crash (it never saw the
ack) names the same batch id, and the WAL skips the prefix it already
holds. Without batch ids, redelivery can duplicate rows — the contract is
the client's to opt into.

Dirtiness propagation: :meth:`IngestWAL.chunk` summarizes each feed as
``"<row count>:<sha256 prefix>"`` over the accepted rows in seq order.
The serve pipeline places that string in its ingest steps' params, so it
participates in cache keys — appending response rows changes only the
``responses`` chunk, and only that subtree of the DAG recomputes.
:func:`snapshot_rows` is the read side: a step materializes exactly the
first N rows its chunk names (never rows appended after the key was
computed) and verifies the digest, so a cached artifact can never have
been built from different bytes than its key claims.

Failure containment mirrors the journal: any ``OSError`` on the write
path (``ENOSPC`` above all) disables the WAL and raises
:class:`WALUnavailable`; the service degrades to read-only serving
instead of dying. ``chaos`` is the fault-injection seam — invoked as
``chaos(kind, data, fd)`` before each record write, it may raise
``OSError`` or SIGKILL the process mid-record (the kill-mid-ingest
chaos coordinates).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

__all__ = [
    "WALError",
    "WALUnavailable",
    "IngestReceipt",
    "IngestWAL",
    "KINDS",
    "snapshot_rows",
]

#: The two ingest feeds. Everything else is rejected at the API boundary.
KINDS = ("responses", "sacct")

SEGMENT_PREFIX = "seg-"
SEGMENT_SUFFIX = ".wal"


class WALError(RuntimeError):
    """Raised for unusable WAL state (bad kind, chunk/content mismatch)."""


class WALUnavailable(WALError):
    """Raised when the WAL has been disabled by an I/O error (ENOSPC...)."""


@dataclass(frozen=True)
class IngestReceipt:
    """Outcome of one :meth:`IngestWAL.append` batch.

    ``accepted`` rows are durable (written + fsync'd) when this returns;
    ``deduped`` rows were already present under the same batch id and were
    skipped. ``first_seq``/``last_seq`` are -1 when nothing was written.
    """

    kind: str
    accepted: int
    deduped: int
    first_seq: int = -1
    last_seq: int = -1


def _segment_name(index: int) -> str:
    return f"{SEGMENT_PREFIX}{index:08d}{SEGMENT_SUFFIX}"


def _segments(directory: Path) -> list[Path]:
    """Segment files oldest-first. Zero-padded names make lexical order
    creation order, so replay never depends on mtime resolution."""
    try:
        return sorted(directory.glob(f"{SEGMENT_PREFIX}*{SEGMENT_SUFFIX}"))
    except OSError:
        return []


def _parse_segment(
    raw: bytes,
) -> tuple[list[dict], int, int]:
    """Parse one segment's bytes → (records, good_byte_len, bad_lines).

    ``good_byte_len`` is the offset of the last well-formed record
    boundary — everything past it is a torn tail the writer may truncate
    away. Malformed *interior* lines (cannot happen under single-writer
    append, but tolerated as poison) are skipped and counted.
    """
    records: list[dict] = []
    bad = 0
    good_len = 0
    offset = 0
    for chunk in raw.split(b"\n"):
        line_len = len(chunk) + 1  # + the newline
        if offset + len(chunk) >= len(raw):
            # Last piece: either b"" after a clean final newline, or a
            # torn tail with no terminator. Never a valid record.
            if chunk:
                bad += 1
            break
        if chunk.strip():
            try:
                obj = json.loads(chunk)
                if isinstance(obj, dict):
                    records.append(obj)
                    good_len = offset + line_len
                else:
                    bad += 1
            except (UnicodeDecodeError, json.JSONDecodeError):
                bad += 1
        offset += line_len
    return records, good_len, bad


class IngestWAL:
    """The service's durable ingest log (see module docstring).

    Single-writer: exactly one live service process owns the directory.
    Opening replays every segment to rebuild the accepted-row state
    (counts, running digests, batch offsets) and heals a torn tail left by
    a SIGKILLed predecessor.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        rotate_bytes: int = 4 << 20,
        fsync: bool = True,
        read_only: bool = False,
    ) -> None:
        if rotate_bytes <= 0:
            raise ValueError(f"rotate_bytes must be positive, got {rotate_bytes}")
        self.directory = Path(directory)
        self.rotate_bytes = rotate_bytes
        self.do_fsync = bool(fsync)
        self.chaos: Callable[[str, bytes, int], bool] | None = None
        self.error: str | None = None
        self.healed_bytes = 0
        self.poison_lines = 0
        self._rows: dict[str, list[str]] = {kind: [] for kind in KINDS}
        self._digests = {kind: hashlib.sha256() for kind in KINDS}
        self._batches: dict[tuple[str, str], int] = {}
        self._seq = 0
        self._seg_index = 0
        self._size = 0
        self._fd: int | None = None
        self.directory.mkdir(parents=True, exist_ok=True)
        self._replay(heal=not read_only)
        if not read_only:
            try:
                if self._seg_index == 0:
                    self._seg_index = 1
                path = self.directory / _segment_name(self._seg_index)
                self._fd = os.open(path, os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644)
                self._size = os.fstat(self._fd).st_size
            except OSError as exc:
                self._disable(exc)

    # -- replay ---------------------------------------------------------------

    def _absorb(self, record: dict) -> None:
        kind = record.get("kind")
        row = record.get("row")
        seq = record.get("seq")
        if kind not in KINDS or not isinstance(row, str) or not isinstance(seq, int):
            self.poison_lines += 1
            return
        self._rows[kind].append(row)
        self._digests[kind].update(row.encode("utf-8") + b"\n")
        self._seq = max(self._seq, seq + 1)
        batch = record.get("batch")
        if isinstance(batch, str):
            off = record.get("off")
            off = off if isinstance(off, int) else 0
            key = (kind, batch)
            self._batches[key] = max(self._batches.get(key, 0), off + 1)

    def _replay(self, heal: bool) -> None:
        segments = _segments(self.directory)
        for n, segment in enumerate(segments):
            try:
                raw = segment.read_bytes()
            except OSError:
                continue
            records, good_len, bad = _parse_segment(raw)
            torn_tail = good_len < len(raw)
            # Only the newest segment can carry a torn tail from the
            # last writer; anything malformed earlier is poison data,
            # not a crash artifact.
            if torn_tail and heal and n == len(segments) - 1:
                try:
                    os.truncate(segment, good_len)
                    self.healed_bytes += len(raw) - good_len
                except OSError:
                    bad += 1
            elif torn_tail:
                bad += 1
            self.poison_lines += max(bad - (1 if torn_tail else 0), 0)
            for record in records:
                self._absorb(record)
        if segments:
            last = segments[-1].name
            self._seg_index = int(
                last[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)]
            )

    # -- writing --------------------------------------------------------------

    @property
    def unavailable(self) -> bool:
        """True once appends have been disabled by an I/O error."""
        return self._fd is None

    def _disable(self, exc: BaseException) -> None:
        self.error = repr(exc)
        fd, self._fd = self._fd, None
        if fd is not None:
            try:
                os.close(fd)
            except OSError:
                pass

    def _rotate(self) -> None:
        """Start a fresh segment (record boundary only; lock-free — the
        WAL is single-writer by contract)."""
        assert self._fd is not None
        os.fsync(self._fd)  # a sealed segment must be complete on disk
        os.close(self._fd)
        self._fd = None
        self._seg_index += 1
        path = self.directory / _segment_name(self._seg_index)
        self._fd = os.open(path, os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644)
        self._size = 0

    def append(
        self, kind: str, rows: list[str] | tuple[str, ...], batch: str | None = None
    ) -> IngestReceipt:
        """Durably append ``rows`` to one feed; returns the ack receipt.

        Rows are raw text lines (trailing newlines stripped, empty lines
        dropped). With ``batch``, rows the WAL already holds under that
        batch id are skipped — re-sending a whole batch after a crashed
        ack is safe. One fsync covers the whole call (group commit): no
        row in the batch is acked before every row is durable.

        Raises :class:`WALUnavailable` on any I/O failure; the rows of
        this call must then be treated as unacked (some may still have
        reached the log, and some may sit only in this process's memory —
        replay after restart, or batch-id dedupe on re-send, resolves the
        ambiguity either way).
        """
        if kind not in KINDS:
            raise WALError(f"unknown ingest kind {kind!r}; expected one of {KINDS}")
        if self._fd is None:
            raise WALUnavailable(f"ingest WAL is unavailable: {self.error}")
        clean = [r.rstrip("\r\n") for r in rows]
        clean = [r for r in clean if r.strip()]
        start = 0
        if batch is not None:
            start = min(self._batches.get((kind, batch), 0), len(clean))
        fresh = clean[start:]
        first_seq = last_seq = -1
        accepted = 0
        # The envelope is assembled by hand: only the row (and batch id)
        # can contain characters needing JSON escaping, so one dumps()
        # per row beats serializing the whole record dict ~4x on the
        # ingest hot path. Replay reads it back with a plain loads().
        batch_json = None if batch is None else json.dumps(batch)
        # Group commit: records accumulate here and hit the fd in one
        # write per call. The chaos seam and segment rotation both need
        # the fd caught up to the record boundary, so they drain first.
        pending = bytearray()
        try:
            def _drain() -> None:
                assert self._fd is not None
                if pending:
                    os.write(self._fd, bytes(pending))
                    del pending[:]

            for i, row in enumerate(fresh):
                if batch_json is None:
                    text = f'{{"seq":{self._seq},"kind":"{kind}","row":{json.dumps(row)}}}\n'
                else:
                    text = (
                        f'{{"seq":{self._seq},"kind":"{kind}","row":{json.dumps(row)},'
                        f'"batch":{batch_json},"off":{start + i}}}\n'
                    )
                data = text.encode()
                if self._size > 0 and self._size + len(data) > self.rotate_bytes:
                    _drain()
                    self._rotate()
                assert self._fd is not None
                if self.chaos is not None:
                    _drain()
                    if self.chaos(kind, data, self._fd):
                        continue  # consumed: the row never persisted, never acked
                    os.write(self._fd, data)
                else:
                    pending += data
                self._size += len(data)
                if first_seq < 0:
                    first_seq = self._seq
                last_seq = self._seq
                self._seq += 1
                accepted += 1
                self._rows[kind].append(row)
                self._digests[kind].update(row.encode("utf-8") + b"\n")
                if batch is not None:
                    self._batches[(kind, batch)] = start + i + 1
            _drain()
            if self.do_fsync and accepted:
                os.fsync(self._fd)
        except OSError as exc:
            self._disable(exc)
            raise WALUnavailable(f"ingest WAL write failed: {exc!r}") from exc
        return IngestReceipt(
            kind=kind,
            accepted=accepted,
            deduped=start,
            first_seq=first_seq,
            last_seq=last_seq,
        )

    # -- the read side --------------------------------------------------------

    def count(self, kind: str) -> int:
        """Accepted rows of one feed."""
        if kind not in KINDS:
            raise WALError(f"unknown ingest kind {kind!r}; expected one of {KINDS}")
        return len(self._rows[kind])

    def rows(self, kind: str, count: int | None = None) -> list[str]:
        """The first ``count`` accepted rows (all of them by default)."""
        if kind not in KINDS:
            raise WALError(f"unknown ingest kind {kind!r}; expected one of {KINDS}")
        rows = self._rows[kind]
        return list(rows if count is None else rows[:count])

    def chunk(self, kind: str) -> str:
        """The feed's input-chunk token: ``"<count>:<sha256 prefix>"``.

        A pure function of the accepted rows in seq order — this is the
        string the serve pipeline folds into cache keys, so two WALs
        holding the same rows produce the same chunk (and therefore
        byte-identical artifacts) regardless of segmentation, batch ids,
        or crash history.
        """
        if kind not in KINDS:
            raise WALError(f"unknown ingest kind {kind!r}; expected one of {KINDS}")
        digest = self._digests[kind].hexdigest()[:16]
        return f"{len(self._rows[kind])}:{digest}"

    def stats(self) -> dict:
        """Probe-friendly summary (row counts, seq frontier, segments)."""
        try:
            n_segments = len(_segments(self.directory))
            total_bytes = sum(
                p.stat().st_size for p in _segments(self.directory)
            )
        except OSError:
            n_segments, total_bytes = 0, 0
        return {
            "rows": {kind: len(self._rows[kind]) for kind in KINDS},
            "next_seq": self._seq,
            "segments": n_segments,
            "bytes": total_bytes,
            "healed_bytes": self.healed_bytes,
            "poison_lines": self.poison_lines,
            "unavailable": self.unavailable,
            "error": self.error,
        }

    # -- lifecycle ------------------------------------------------------------

    def flush(self) -> None:
        """Force everything written so far to stable storage (fsync)."""
        if self._fd is None:
            return
        try:
            os.fsync(self._fd)
        except OSError as exc:
            self._disable(exc)

    def close(self, sync: bool = True) -> None:
        """Flush (by default) and close; idempotent."""
        if self._fd is None:
            return
        fd, self._fd = self._fd, None
        try:
            if sync:
                os.fsync(fd)
        except OSError as exc:
            self.error = repr(exc)
        finally:
            try:
                os.close(fd)
            except OSError:
                pass

    def __enter__(self) -> "IngestWAL":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def parse_chunk(chunk: str) -> tuple[int, str]:
    """Split a chunk token into ``(row count, digest prefix)``."""
    count_s, _, digest = chunk.partition(":")
    try:
        count = int(count_s)
    except ValueError:
        raise WALError(f"malformed chunk token {chunk!r}") from None
    if count < 0 or not digest:
        raise WALError(f"malformed chunk token {chunk!r}")
    return count, digest


def snapshot_rows(directory: str | Path, kind: str, chunk: str) -> list[str]:
    """Materialize exactly the rows a chunk token names, verified.

    Re-opens the WAL read-only (no healing writes — safe from pipeline
    workers while the owning service lives), takes the first N accepted
    rows of ``kind``, and checks their digest against the token. A
    mismatch means the log no longer contains the bytes the cache key was
    computed from (truncation, corruption, a foreign directory) and is an
    error, never a silent wrong answer.
    """
    count, digest = parse_chunk(chunk)
    wal = IngestWAL(directory, read_only=True)
    rows = wal.rows(kind, count)
    if len(rows) < count:
        raise WALError(
            f"WAL {directory} holds {len(rows)} {kind} row(s); chunk names {count}"
        )
    h = hashlib.sha256()
    for row in rows:
        h.update(row.encode("utf-8") + b"\n")
    if h.hexdigest()[: len(digest)] != digest:
        raise WALError(
            f"WAL {directory} {kind} rows do not match chunk {chunk!r} "
            "(log truncated or rewritten since the key was computed)"
        )
    return rows
