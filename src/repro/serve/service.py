"""``StudyService``: the always-on incremental study server.

One resident process owns a service *root* directory::

    root/
      wal/         append-only ingest log (repro.serve.wal)
      cache/       content-addressed artifact cache (shared machinery)
      journals/    per-refresh run journals (rotated + compacted)
      state.json   committed chunk frontier + breaker ladders (atomic)
      status.json  health/readiness probe snapshot (atomic)

Control flow per public call:

* :meth:`ingest` — WAL-append first (rows are acked only after the
  batch fsync), then mark the feed dirty. Any WAL I/O failure flips the
  service to **read-only serving**: requests keep being answered from
  last-good artifacts (tagged STALE), new rows are refused, the process
  stays up.
* :meth:`refresh` — one incremental recompute cycle: build the serve
  pipeline against the current chunk frontier (quarantined feeds pinned
  to their last-good chunk, quarantined experiments excluded), run it
  journaled + resumable with ``on_error="keep_going"``, feed every step
  outcome to the circuit breaker, commit the chunks of the feeds that
  succeeded, refresh warm artifacts.
* :meth:`request` — admission-controlled serving: clean artifacts are
  answered FRESH from memory; a dirty artifact triggers an inline
  refresh *unless* the request's deadline is shorter than the current
  refresh-cost estimate (shed → STALE) or the bounded wait queue is full
  (shed → STALE).
* :meth:`drain` — SIGTERM path: stop accepting rows, flush WAL +
  journal state, write a final status snapshot; the caller then exits 0.

Crash safety: everything the service *believes* is derivable from disk —
the WAL is the row frontier, the cache holds artifacts, the journal holds
the in-flight run, ``state.json`` only memoizes the committed chunks (and
breaker ladders) so a restart knows what is dirty. SIGKILL at any
instruction loses at most unacked rows and in-flight compute; the next
start replays the WAL, resumes the journaled run, and converges to
artifacts byte-identical to a clean rebuild of the same rows (the
``tests/serve`` chaos matrix sweeps exactly this).

Time discipline: refresh pacing and breaker cooldowns are counted in
*cycles*, never wall-clock, so a skewed or backwards-jumping clock (the
clock-skew chaos coordinate) cannot wedge quarantine or staleness
accounting; the injectable ``clock`` feeds only advisory
``staleness_seconds``/uptime numbers, which are clamped non-negative.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.cluster.sacct import _HEADER as SACCT_HEADER
from repro.core.journal import (
    JournalError,
    RunJournal,
    compact as journal_compact,
    latest_resume_state,
)
from repro.core.metrics import SUCCESS_OUTCOMES, RunReport
from repro.core.pipeline import ArtifactCache
from repro.core.trace import Tracer
from repro.obs.registry import MetricsRegistry
from repro.obs.ring import MetricsRing
from repro.obs.slo import evaluate_slo, load_slo
from repro.report.experiments import EXPERIMENTS
from repro.serve.admission import AdmissionController, QueueFull, ServeResult
from repro.serve.breaker import CircuitBreaker
from repro.serve.pipeline import INGEST_STEPS, serve_pipeline
from repro.serve.wal import KINDS, IngestReceipt, IngestWAL, WALUnavailable, parse_chunk

__all__ = [
    "ServeConfig",
    "ServiceReadOnly",
    "ServiceDraining",
    "RefreshResult",
    "StudyService",
    "read_status",
]

STATE_VERSION = 1


class ServiceReadOnly(RuntimeError):
    """Ingestion refused: the service has degraded to read-only serving."""


class ServiceDraining(RuntimeError):
    """Ingestion refused: the service is draining for shutdown."""


@dataclass(frozen=True)
class ServeConfig:
    """Tunable service policy (all cache-key-neutral except the study
    window, which is a real study parameter)."""

    months: int = 3
    experiments: tuple[str, ...] | None = None  # None = every registered id
    executor: str = "sequential"
    queue_size: int = 8
    default_deadline: float | None = None
    breaker_threshold: int = 3
    breaker_cooldown: int = 2
    wal_rotate_bytes: int = 4 << 20
    journal_rotate_bytes: int = 256 << 10
    compact_every: int = 8
    fsync: str = "interval"
    metrics: bool = True  # False: no registry/ring (the overhead bench baseline)
    metrics_rotate_bytes: int = 64 << 10
    #: The ``--loop`` refresh cadence, recorded into status.json so the
    #: out-of-process probe can spot a wedged service by mtime age.
    status_interval: float | None = None

    @property
    def window_seconds(self) -> float:
        return self.months * 30.0 * 86400.0

    def experiment_ids(self) -> list[str]:
        if self.experiments is None:
            return sorted(EXPERIMENTS)
        unknown = [e for e in self.experiments if e not in EXPERIMENTS]
        if unknown:
            raise KeyError(f"unknown experiments {unknown}; known: {sorted(EXPERIMENTS)}")
        return sorted(self.experiments)


@dataclass(frozen=True)
class RefreshResult:
    """Outcome of one :meth:`StudyService.refresh` call."""

    ran: bool
    reason: str  # refreshed | clean | waiting_for_data | read_only | draining | quarantined
    seconds: float = 0.0
    report: RunReport | None = None
    failed: tuple[str, ...] = ()
    excluded: tuple[str, ...] = ()
    pinned: tuple[str, ...] = ()

    @property
    def degraded(self) -> bool:
        return bool(self.failed or self.excluded or self.pinned)


@dataclass
class _ArtifactMeta:
    cycle: int
    chunks: dict[str, str] = field(default_factory=dict)


class StudyService:
    """The resident study server (see module docstring)."""

    def __init__(
        self,
        root: str | Path,
        config: ServeConfig | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.root = Path(root)
        self.config = config or ServeConfig()
        self.config.experiment_ids()  # validate early
        self.wal_dir = self.root / "wal"
        self.cache_dir = self.root / "cache"
        self.journal_dir = self.root / "journals"
        self.state_path = self.root / "state.json"
        self.status_path = self.root / "status.json"
        self.root.mkdir(parents=True, exist_ok=True)
        self.journal_dir.mkdir(parents=True, exist_ok=True)

        self._clock = clock
        self._started_at = clock()
        self._lock = threading.RLock()
        self.tracer = Tracer()
        self.admission = AdmissionController(self.config.queue_size)
        #: The SLO-facing observability plane: per-request latency
        #: histogram + shed/degraded counters in a mergeable registry,
        #: persisted through the size-rotated ``metrics/`` ring every
        #: status write. ``config.metrics=False`` disables the whole
        #: plane (the differential-overhead bench baseline).
        self.registry: MetricsRegistry | None = (
            MetricsRegistry() if self.config.metrics else None
        )
        self._ring: MetricsRing | None = (
            MetricsRing(
                self.root / "metrics",
                rotate_bytes=self.config.metrics_rotate_bytes,
            )
            if self.config.metrics
            else None
        )
        self.breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            cooldown=self.config.breaker_cooldown,
        )
        #: Chaos seam: installed as :attr:`RunJournal.chaos` on every
        #: journal a refresh opens (the kill-mid-recompute coordinates).
        self.journal_chaos: Callable[..., bool] | None = None
        self.read_only = False
        self.read_only_reason = ""
        self.draining = False
        self.last_report: RunReport | None = None
        self.last_refresh_seconds: float | None = None
        self._last_refresh_at: float | None = None
        self._artifacts: dict[str, Any] = {}
        self._artifact_meta: dict[str, _ArtifactMeta] = {}
        self._committed: dict[str, str] = {}
        self._cycle = 0

        # WAL first: replaying it IS crash recovery for the ingest side.
        self.wal = IngestWAL(
            self.wal_dir, rotate_bytes=self.config.wal_rotate_bytes
        )
        if self.wal.unavailable:
            self._enter_read_only(f"wal: {self.wal.error}")
        self.cache = ArtifactCache(self.cache_dir)
        self._load_state()
        self._write_status()

    # -- durable state ---------------------------------------------------------

    def _load_state(self) -> None:
        try:
            raw = json.loads(self.state_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return  # fresh root, or torn state: everything recomputes from WAL
        if not isinstance(raw, dict):
            return
        committed = raw.get("committed")
        if isinstance(committed, dict):
            self._committed = {
                str(k): str(v) for k, v in committed.items() if k in KINDS
            }
        self._cycle = int(raw.get("cycle", 0))
        self.breaker.load(raw.get("breaker", {}))

    def _save_state(self) -> None:
        payload = {
            "version": STATE_VERSION,
            "committed": dict(self._committed),
            "cycle": self._cycle,
            "breaker": self.breaker.to_dict(),
        }
        self._atomic_write(self.state_path, json.dumps(payload, sort_keys=True) + "\n")

    @staticmethod
    def _atomic_write(path: Path, text: str) -> bool:
        """tmp + fsync + replace; False (never raises) on I/O failure —
        losing a probe/state snapshot must not kill the service."""
        tmp = path.with_name(path.name + ".tmp")
        try:
            fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
            try:
                os.write(fd, text.encode("utf-8"))
                os.fsync(fd)
            finally:
                os.close(fd)
            os.replace(tmp, path)
            return True
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return False

    # -- degradation -----------------------------------------------------------

    def _enter_read_only(self, reason: str) -> None:
        if self.read_only:
            return
        self.read_only = True
        self.read_only_reason = reason
        self.tracer.instant("serve.read_only", "serve", reason=reason)

    # -- ingestion -------------------------------------------------------------

    def ingest(
        self, kind: str, lines: list[str] | tuple[str, ...], batch: str | None = None
    ) -> IngestReceipt:
        """Durably accept rows for one feed (WAL-append + fsync = ack).

        ``sacct`` feeds may include the export header; it is stripped, not
        stored (the parser re-adds it). Raises :class:`ServiceDraining` /
        :class:`ServiceReadOnly` when rows cannot be accepted — the rows
        are then *not* acked and the client should retry elsewhere/later
        (re-sending with the same ``batch`` id is always safe).
        """
        with self._lock:
            if self.draining:
                raise ServiceDraining("service is draining; rows not accepted")
            if self.read_only:
                raise ServiceReadOnly(
                    f"service is read-only ({self.read_only_reason}); rows not accepted"
                )
            if kind == "sacct":
                lines = [l for l in lines if l.rstrip("\r\n") != SACCT_HEADER]
            try:
                receipt = self.wal.append(kind, list(lines), batch=batch)
            except WALUnavailable as exc:
                # The ENOSPC/torn-write ladder: ingestion dies, serving
                # survives. Requests keep answering STALE from last-good.
                self._enter_read_only(f"wal: {exc}")
                self._write_status()
                raise ServiceReadOnly(str(exc)) from exc
            self.tracer.instant(
                "serve.ingest",
                "serve",
                kind=kind,
                accepted=receipt.accepted,
                deduped=receipt.deduped,
            )
            self._write_status()
            return receipt

    def ingest_responses(
        self, lines: list[str] | tuple[str, ...], batch: str | None = None
    ) -> IngestReceipt:
        return self.ingest("responses", lines, batch=batch)

    def ingest_sacct(
        self, lines: list[str] | tuple[str, ...], batch: str | None = None
    ) -> IngestReceipt:
        return self.ingest("sacct", lines, batch=batch)

    # -- dirtiness -------------------------------------------------------------

    def _target_chunks(self, cycle: int) -> tuple[dict[str, str], tuple[str, ...]]:
        """The chunk frontier this cycle should build against.

        Quarantined feeds are *pinned* to their last committed chunk —
        stale-but-sane input — so a poisoned feed cannot stop the other
        feed's updates from flowing into the study.
        """
        chunks: dict[str, str] = {}
        pinned: list[str] = []
        for step, kind in INGEST_STEPS.items():
            current = self.wal.chunk(kind)
            if self.breaker.quarantined(step, cycle) and kind in self._committed:
                chunks[kind] = self._committed[kind]
                pinned.append(step)
            else:
                chunks[kind] = current
        return chunks, tuple(pinned)

    def _behind(self, eid: str) -> int:
        """WAL rows accepted after ``eid``'s artifact snapshot (staleness)."""
        meta = self._artifact_meta.get(eid)
        if meta is None:
            return 0
        behind = 0
        for kind in KINDS:
            chunk = meta.chunks.get(kind)
            if chunk is None:
                continue
            built, _ = parse_chunk(chunk)
            behind += max(self.wal.count(kind) - built, 0)
        return behind

    @property
    def dirty(self) -> bool:
        """Whether a refresh would do work (frontier moved, or holes)."""
        with self._lock:
            chunks, _ = self._target_chunks(self._cycle)
            if chunks != self._committed:
                return True
            cycle = self._cycle
            for eid in self.config.experiment_ids():
                if eid in self._artifacts:
                    continue
                if not self.breaker.quarantined(f"exp:{eid}", cycle):
                    return True
            return False

    # -- the refresh cycle -----------------------------------------------------

    def refresh(self, force: bool = False, fault_plan: Any = None) -> RefreshResult:
        """Run one incremental recompute cycle (see module docstring).

        ``fault_plan`` is the chaos seam — forwarded to ``Pipeline.run``
        so tests can fail chosen subtrees deterministically.

        Skipped cycles (clean, waiting for data, read-only, quarantined)
        still persist the status snapshot: a resident but *idle* service
        must keep looking alive to out-of-process probes, whose
        uptime/staleness fields would otherwise freeze at the last real
        refresh. Draining is the one exception — :meth:`drain` wrote the
        final snapshot and the WAL is already closed.
        """
        with self._lock:
            if self.draining:
                return RefreshResult(ran=False, reason="draining")
            if self.read_only:
                # Read-only means *serving only*: recompute would race the
                # failing disk (cache puts, journal writes). Serve last-good.
                self._write_status()
                return RefreshResult(ran=False, reason="read_only")
            if any(self.wal.count(kind) == 0 for kind in KINDS):
                self._write_status()
                return RefreshResult(ran=False, reason="waiting_for_data")
            cycle = self._cycle
            if self.breaker.quarantined("study", cycle) and not force:
                self._write_status()
                return RefreshResult(
                    ran=False, reason="quarantined", excluded=("study",)
                )
            chunks, pinned = self._target_chunks(cycle)
            ids = self.config.experiment_ids()
            excluded = tuple(
                f"exp:{eid}"
                for eid in ids
                if self.breaker.quarantined(f"exp:{eid}", cycle)
            )
            missing = [
                eid
                for eid in ids
                if eid not in self._artifacts and f"exp:{eid}" not in excluded
            ]
            if not force and chunks == self._committed and not missing:
                self._write_status()
                return RefreshResult(ran=False, reason="clean")

            self._cycle = cycle = cycle + 1
            t0 = time.perf_counter()
            pipeline = serve_pipeline(
                self.wal_dir,
                chunks,
                window_seconds=self.config.window_seconds,
                experiment_ids=ids,
                exclude=excluded,
                cache=self.cache,
            )
            resume = None
            try:
                prior = latest_resume_state(self.journal_dir)
                if prior is not None and prior.interrupted:
                    resume = prior  # key-mismatched entries are ignored by run()
            except JournalError:
                resume = None  # unreadable journal: the cache still dedupes
            journal = RunJournal.open(
                self.journal_dir,
                fsync=self.config.fsync,
                rotate_bytes=self.config.journal_rotate_bytes,
            )
            journal.chaos = self.journal_chaos
            try:
                results = pipeline.run(
                    force=force,
                    executor=self.config.executor,
                    on_error="keep_going",
                    journal=journal,
                    resume=resume,
                    trace=self.tracer,
                    fault_plan=fault_plan,
                )
            finally:
                journal.close()
            seconds = time.perf_counter() - t0
            report = pipeline.last_report
            self.last_report = report
            self.last_refresh_seconds = seconds
            self._last_refresh_at = self._clock()

            failed: list[str] = []
            succeeded: set[str] = set()
            if report is not None:
                for outcome in report.outcomes:
                    if outcome.succeeded:
                        succeeded.add(outcome.name)
                        self.breaker.record_success(outcome.name)
                    elif outcome.status in ("failed", "timeout"):
                        failed.append(outcome.name)
                        opened = self.breaker.record_failure(
                            outcome.name, cycle, error=outcome.error
                        )
                        if opened:
                            self.tracer.instant(
                                "serve.quarantine", "serve", step=outcome.name
                            )
                    # skipped_upstream: neither success nor the step's own fault

            for step, kind in INGEST_STEPS.items():
                if step in succeeded:
                    self._committed[kind] = chunks[kind]
            for eid in ids:
                name = f"exp:{eid}"
                if name in results:
                    self._artifacts[eid] = results[name]
                    self._artifact_meta[eid] = _ArtifactMeta(
                        cycle=cycle, chunks=dict(chunks)
                    )

            self._save_state()
            if self.config.compact_every and cycle % self.config.compact_every == 0:
                # No journal is open here, so compaction is safe; it keeps
                # exactly the latest run's records (the only resumable one).
                journal_compact(self.journal_dir)
            self.tracer.instant(
                "serve.refresh",
                "serve",
                cycle=cycle,
                failed=len(failed),
                excluded=len(excluded),
            )
            self._write_status()
            return RefreshResult(
                ran=True,
                reason="refreshed",
                seconds=seconds,
                report=report,
                failed=tuple(failed),
                excluded=excluded,
                pinned=pinned,
            )

    # -- the request path ------------------------------------------------------

    def _serve_from_memory(self, eid: str, reason: str) -> ServeResult:
        artifact = self._artifacts.get(eid)
        if artifact is None:
            result = ServeResult(
                eid, "unavailable", None, reason=reason or "never_built"
            )
        else:
            behind = self._behind(eid)
            meta = self._artifact_meta.get(eid)
            status = "fresh" if behind == 0 and not reason else "stale"
            result = ServeResult(
                eid,
                status,
                artifact,
                reason=reason if status == "stale" else "",
                refresh_seq=meta.cycle if meta is not None else -1,
                behind=behind,
            )
        self.admission.record_result(result)
        if result.status != "fresh":
            self.tracer.instant(
                "serve.stale" if result.status == "stale" else "serve.unavailable",
                "serve",
                experiment=eid,
                reason=result.reason,
            )
        return result

    def request(self, experiment_id: str, deadline: float | None = None) -> ServeResult:
        """Answer one artifact request under admission control.

        ``deadline`` is the client's patience in seconds (defaults to
        ``config.default_deadline``; None = wait for any recompute). The
        answer is always the best available artifact — FRESH when it
        matches the WAL frontier, STALE (with a reason) when load
        shedding, quarantine, or degradation got in the way, UNAVAILABLE
        only when nothing has ever been built.

        Every request is observed end to end (admission decision through
        answer) into ``repro_request_seconds``; sheds and degraded
        answers are counted by reason. That is the data the SLO policy
        judges, so instrumentation wraps the *whole* path, including the
        recompute a FRESH answer may have waited for.
        """
        t0 = time.perf_counter()
        result = self._request(experiment_id, deadline)
        if self.registry is not None:
            self.registry.inc("repro_requests_total")
            self.registry.observe("repro_request_seconds", time.perf_counter() - t0)
            if result.reason in ("queue_full", "deadline"):
                self.registry.inc("repro_shed_total", reason=result.reason)
            elif result.status != "fresh":
                self.registry.inc(
                    "repro_degraded_total", reason=result.reason or result.status
                )
        return result

    def _request(
        self, experiment_id: str, deadline: float | None = None
    ) -> ServeResult:
        if experiment_id not in EXPERIMENTS:
            raise KeyError(
                f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
            )
        if deadline is None:
            deadline = self.config.default_deadline
        self.admission.count("requests")
        with self._lock:
            eid = experiment_id
            name = f"exp:{eid}"
            fresh_ok = eid in self._artifacts and self._behind(eid) == 0
            if fresh_ok and not self.dirty:
                return self._serve_from_memory(eid, "")
            if self.draining:
                return self._serve_from_memory(eid, "draining")
            if self.read_only:
                return self._serve_from_memory(eid, "read_only")
            if self.breaker.quarantined(name, self._cycle) or self.breaker.quarantined(
                "study", self._cycle
            ):
                return self._serve_from_memory(eid, "quarantined")
            # Deadline-aware shedding: don't start a recompute the client
            # won't wait out. The estimate is the last cycle's cost.
            estimate = self.last_refresh_seconds
            if (
                deadline is not None
                and estimate is not None
                and estimate > deadline
            ):
                self.tracer.instant(
                    "serve.shed", "serve", experiment=eid, reason="deadline"
                )
                return self._serve_from_memory(eid, "deadline")
            try:
                slot = self.admission.admit()
            except QueueFull:
                self.tracer.instant(
                    "serve.shed", "serve", experiment=eid, reason="queue_full"
                )
                return self._serve_from_memory(eid, "queue_full")
            with slot:
                outcome = self.refresh()
            if eid in self._artifacts and self._behind(eid) == 0:
                return self._serve_from_memory(eid, "")
            reason = "refresh_failed"
            if not outcome.ran:
                reason = outcome.reason  # read_only / draining / waiting_for_data / ...
            elif f"exp:{eid}" in outcome.excluded:
                reason = "quarantined"
            elif outcome.pinned:
                reason = "pinned_feed"
            return self._serve_from_memory(eid, reason)

    # -- probes ----------------------------------------------------------------

    @property
    def mode(self) -> str:
        if self.draining:
            return "draining"
        if self.read_only:
            return "read_only"
        if not self._artifacts:
            return "empty"
        return "serving"

    def status(self) -> dict[str, Any]:
        """The health/readiness snapshot (also persisted to status.json).

        ``ready`` is the readiness-probe bit: at least one artifact is
        warm, so requests can be answered (possibly STALE). ``mode``
        distinguishes liveness flavors; counters come straight off the
        trace bus and the admission controller.
        """
        with self._lock:
            events: dict[str, int] = {}
            skipped: dict[str, int] = {}
            for i in self.tracer.instants:
                events[i.name] = events.get(i.name, 0) + 1
                if i.name == "ingest.skipped_rows":
                    reader = str(i.args.get("reader", "unknown"))
                    skipped[reader] = skipped.get(reader, 0) + int(
                        i.args.get("count", 0) or 0
                    )
            now = self._clock()
            staleness = (
                max(now - self._last_refresh_at, 0.0)
                if self._last_refresh_at is not None
                else None
            )
            chunks, pinned = self._target_chunks(self._cycle)
            payload = {
                "mode": self.mode,
                "ready": bool(self._artifacts),
                "read_only_reason": self.read_only_reason,
                "pid": os.getpid(),
                "uptime_seconds": round(max(now - self._started_at, 0.0), 3),
                "cycle": self._cycle,
                "dirty": self.dirty,
                "chunks": chunks,
                "committed": dict(self._committed),
                "pinned_feeds": list(pinned),
                "quarantined": self.breaker.open_steps(self._cycle),
                "breaker": {
                    step: dict(state.to_dict(), phase=state.phase(self._cycle))
                    for step, state in self.breaker.items()
                },
                "artifacts": {
                    eid: {"cycle": meta.cycle, "behind": self._behind(eid)}
                    for eid, meta in sorted(self._artifact_meta.items())
                },
                "last_refresh_seconds": self.last_refresh_seconds,
                "staleness_seconds": staleness,
                "wal": self.wal.stats(),
                "admission": self.admission.stats(),
                "events": events,
                "skipped_rows": skipped,
                "refresh_interval_seconds": self.config.status_interval,
                "slo": None,
            }
            if self.registry is not None:
                behind = max(
                    (int(m["behind"]) for m in payload["artifacts"].values()),
                    default=0,
                )
                self.registry.set_gauge("repro_staleness_rows_behind", behind)
                self.registry.set_gauge(
                    "repro_queue_depth", payload["admission"]["waiting"]
                )
                # Reloaded on every probe so a redeclared slo.json takes
                # effect without a restart (it's one tiny file).
                policy = load_slo(self.root)
                if policy is not None:
                    verdict = evaluate_slo(policy, self.registry)
                    payload["slo"] = "ok" if verdict["ok"] else "breached"
                    payload["slo_detail"] = verdict["checks"]
            return payload

    def publish_status(self) -> dict[str, Any]:
        """Persist the current probe snapshot + metrics ring; return it.

        The CLI's one-shot path ends here rather than at :meth:`status`
        so that the printed status, the on-disk ``status.json``, and the
        metrics ring all agree — including requests answered *after* the
        last refresh (refresh persists mid-cycle, so without this final
        publish the SLO verdict would never see one-shot request
        latencies).
        """
        return self._write_status()

    def _write_status(self) -> dict[str, Any]:
        payload = self.status()
        self._atomic_write(
            self.status_path, json.dumps(payload, sort_keys=True) + "\n"
        )
        if self.registry is not None and self._ring is not None:
            self._ring.publish(self.registry.snapshot(), self.registry.to_text())
        return payload

    # -- shutdown --------------------------------------------------------------

    def drain(self) -> None:
        """Graceful SIGTERM path: flush everything, refuse new rows.

        Idempotent. After drain the service still answers :meth:`request`
        (STALE) and :meth:`status`; the owning process is expected to
        exit 0 once its in-flight work is done.
        """
        with self._lock:
            if self.draining:
                return
            self.draining = True
            self.wal.flush()
            self.wal.close()
            self._save_state()
            self.tracer.instant("serve.drain", "serve")
            self._write_status()

    def close(self) -> None:
        """Release file handles without draining semantics (tests)."""
        with self._lock:
            self.wal.close()


def read_status(root: str | Path) -> dict[str, Any] | None:
    """Read a service root's probe snapshot (None when absent/torn).

    This is the out-of-process probe used by ``repro serve --status``: it
    never touches the WAL or cache, so probing cannot interfere with a
    live (or crashed) service.
    """
    try:
        raw = json.loads(
            (Path(root) / "status.json").read_text(encoding="utf-8")
        )
    except (OSError, json.JSONDecodeError):
        return None
    return raw if isinstance(raw, dict) else None
