"""Admission control for the serve request loop.

The request path must be protected from its own recompute: a refresh
takes seconds while requests arrive in milliseconds, so unbounded
queueing would let latency grow without limit and a single slow subtree
take the whole service down. Two controls, both resolving to the same
degraded answer (the last-good artifact, tagged STALE) rather than an
error:

* a **bounded queue** — at most ``queue_size`` requests may be waiting on
  a recompute at once; request ``queue_size + 1`` is shed immediately;
* **deadline-aware load shedding** — a request carrying a deadline
  shorter than the service's current refresh-cost estimate is shed
  *before* queueing (queueing past the deadline would burn a slot to
  produce an answer the client has already given up on).

Shedding is not failure: staleness is bounded (the WAL still accepted the
rows; the next uncontended refresh catches up) and every decision is
counted here for the status probe.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

__all__ = ["QueueFull", "ServeResult", "AdmissionController"]

#: ServeResult.status values. ``fresh`` = computed from the current WAL
#: frontier; ``stale`` = last-good artifact (shed, quarantined, or
#: read-only degraded); ``unavailable`` = no artifact has ever been built.
STATUSES = ("fresh", "stale", "unavailable")


class QueueFull(RuntimeError):
    """Internal signal: the admission queue is at capacity."""


@dataclass(frozen=True)
class ServeResult:
    """One answered artifact request.

    ``reason`` explains any non-fresh status (``"deadline"``,
    ``"queue_full"``, ``"quarantined"``, ``"read_only"``,
    ``"refresh_failed"``, ``"never_built"``). ``behind`` counts WAL rows
    accepted after the served artifact's snapshot — the staleness bound,
    in data terms rather than wall-clock.
    """

    experiment_id: str
    status: str
    artifact: Any = None
    reason: str = ""
    refresh_seq: int = -1
    behind: int = 0

    @property
    def ok(self) -> bool:
        return self.status in ("fresh", "stale")


class AdmissionController:
    """Bounded-queue bookkeeping + shed counters (thread-safe).

    The controller does not run requests — it decides whether a request
    may *wait for a recompute*. ``repro.serve.service`` asks
    :meth:`admit` around the recompute path and reports every final
    disposition through :meth:`count`.
    """

    def __init__(self, queue_size: int = 8) -> None:
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size}")
        self.queue_size = queue_size
        self._lock = threading.Lock()
        self._waiting = 0
        self._peak_waiting = 0
        self._counters: dict[str, int] = {
            "requests": 0,
            "admitted": 0,
            "shed_queue_full": 0,
            "shed_deadline": 0,
            "served_fresh": 0,
            "served_stale": 0,
            "served_unavailable": 0,
        }

    # -- the gate -------------------------------------------------------------

    def admit(self) -> "_Admission":
        """Claim a queue slot for one recompute-waiting request.

        Use as a context manager; raises :class:`QueueFull` when all
        ``queue_size`` slots are taken. The slot is held for the wait's
        duration, so the queue bound is on *concurrent waiters*, exactly
        the resource a slow refresh exhausts.
        """
        with self._lock:
            if self._waiting >= self.queue_size:
                self._counters["shed_queue_full"] += 1
                raise QueueFull(
                    f"{self._waiting} request(s) already waiting "
                    f"(queue_size={self.queue_size})"
                )
            self._waiting += 1
            if self._waiting > self._peak_waiting:
                self._peak_waiting = self._waiting
            self._counters["admitted"] += 1
        return _Admission(self)

    def _release(self) -> None:
        with self._lock:
            self._waiting -= 1

    # -- accounting -----------------------------------------------------------

    def count(self, counter: str) -> None:
        with self._lock:
            if counter not in self._counters:
                self._counters[counter] = 0
            self._counters[counter] += 1

    def record_result(self, result: ServeResult) -> None:
        """Fold a final disposition into the probe counters."""
        self.count(f"served_{result.status}")
        if result.reason == "deadline":
            self.count("shed_deadline")

    @property
    def waiting(self) -> int:
        with self._lock:
            return self._waiting

    def stats(self) -> dict[str, int]:
        with self._lock:
            return dict(
                self._counters,
                waiting=self._waiting,
                peak_waiting=self._peak_waiting,
            )


class _Admission:
    def __init__(self, controller: AdmissionController) -> None:
        self._controller = controller

    def __enter__(self) -> "_Admission":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._controller._release()
